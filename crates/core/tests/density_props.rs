//! Property suite for the high-density resident-state structures.
//!
//! The density work replaced the seed's `BTreeMap`-backed keep-alive books
//! and capability table with arena/index-backed structures (`FlatScoreMap`,
//! the per-PU and per-object indices in `CapTable`). Those are pure
//! representation changes: every observable operation must agree
//! byte-for-byte with the simple ordered-map semantics the seed had. This
//! suite drives both implementations with randomized operation sequences —
//! insert/touch/evict/purge for the keep-alive set, the full
//! register/create/grant/revoke/destroy/remove alphabet for the cap table —
//! and compares against `BTreeMap` reference models after every step,
//! including the eviction-boundary (entries exactly at the keep-alive
//! window's edge) and dead-PU-purge (bulk `forget_many` / `remove_process`
//! sweep) edges.

use std::collections::BTreeMap;

use hetsim::pu::PuId;
use hetsim::time::{SimDuration, SimTime};
use molecule_core::keepalive::{FixedWindow, GreedyDual, KeepAlivePolicy, Lru};
use proptest::prelude::*;
use vsandbox::spec::FuncId;
use xpu_shim::cap::{CapError, CapTable, ObjKind, Perm};
use xpu_shim::id::{ObjId, XpuPid};

// ---------------------------------------------------------------------------
// Keep-alive policies vs an ordered-map reference
// ---------------------------------------------------------------------------

const FUNC_POOL: usize = 24;
const PU_POOL: usize = 4;

/// The keep-alive window used by the `FixedWindow` runs. Deltas are drawn
/// from `0..=60` ms so sequences regularly place a function's last use
/// *exactly* `WINDOW_MS` before a `KeepSet` probe — the boundary the seed's
/// `<=` comparison keeps and an off-by-one would evict.
const WINDOW_MS: u64 = 50;

fn func(i: usize) -> FuncId {
    FuncId::new(format!("fn-{i:02}"))
}

/// Functions are statically assigned to PUs round-robin; a `PurgePu` op
/// models the health checker bulk-forgetting everything a dead PU hosted.
fn funcs_on_pu(pu: usize) -> Vec<FuncId> {
    (0..FUNC_POOL).filter(|i| i % PU_POOL == pu).map(func).collect()
}

#[derive(Debug, Clone)]
enum KaOp {
    /// Advance time by `delta_ms`, then record an invocation.
    Invoke { func: usize, delta_ms: u64, exec_ms: u64, size_q: u8 },
    /// Advance time, then record a shed request (admission-control bounce).
    Shed { func: usize, delta_ms: u64 },
    /// Evict one function.
    Forget { func: usize },
    /// Dead-PU purge: bulk-forget every function assigned to `pu`.
    PurgePu { pu: usize },
    /// Probe the keep set at the current time and compare both sides.
    KeepSet { capacity: usize },
}

fn ka_op() -> impl Strategy<Value = KaOp> {
    prop_oneof![
        4 => (0..FUNC_POOL, 0u64..=60, 1u64..=500, 1u8..=4)
            .prop_map(|(func, delta_ms, exec_ms, size_q)| KaOp::Invoke {
                func,
                delta_ms,
                exec_ms,
                size_q,
            }),
        1 => (0..FUNC_POOL, 0u64..=60).prop_map(|(func, delta_ms)| KaOp::Shed { func, delta_ms }),
        1 => (0..FUNC_POOL).prop_map(|func| KaOp::Forget { func }),
        1 => (0..PU_POOL).prop_map(|pu| KaOp::PurgePu { pu }),
        2 => (0..=FUNC_POOL + 6).prop_map(|capacity| KaOp::KeepSet { capacity }),
    ]
}

/// The seed's representation: one ordered map from function to last-use
/// time, sorted on demand. `window` is `None` for plain LRU.
#[derive(Default)]
struct RefRecency {
    last_used: BTreeMap<FuncId, SimTime>,
}

impl RefRecency {
    fn keep_set(&self, now: SimTime, window: Option<SimDuration>, capacity: usize) -> Vec<FuncId> {
        let mut alive: Vec<(&FuncId, &SimTime)> = self
            .last_used
            .iter()
            .filter(|(_, &t)| window.is_none_or(|w| now.saturating_duration_since(t) <= w))
            .collect();
        alive.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        alive.into_iter().take(capacity).map(|(f, _)| f.clone()).collect()
    }
}

/// Drives `policy` and the reference through the same sequence, comparing
/// at every `KeepSet` probe and once more exhaustively at the end.
fn check_recency_policy(
    policy: &mut dyn KeepAlivePolicy,
    window: Option<SimDuration>,
    ops: &[KaOp],
) -> Result<(), TestCaseError> {
    let mut reference = RefRecency::default();
    let mut now = SimTime::ZERO;
    for op in ops {
        match op {
            KaOp::Invoke { func: i, delta_ms, exec_ms, size_q } => {
                now += SimDuration::from_millis(*delta_ms);
                let f = func(*i);
                policy.on_invoke(&f, now, SimDuration::from_millis(*exec_ms), f64::from(*size_q));
                reference.last_used.insert(f, now);
            }
            KaOp::Shed { func: i, delta_ms } => {
                now += SimDuration::from_millis(*delta_ms);
                let f = func(*i);
                policy.on_shed(&f, now);
                // Seed semantics: a shed only refreshes *tracked* functions.
                if let Some(t) = reference.last_used.get_mut(&f) {
                    *t = now;
                }
            }
            KaOp::Forget { func: i } => {
                let f = func(*i);
                policy.forget(&f);
                reference.last_used.remove(&f);
            }
            KaOp::PurgePu { pu } => {
                let dead = funcs_on_pu(*pu);
                policy.forget_many(&dead);
                for f in &dead {
                    reference.last_used.remove(f);
                }
            }
            KaOp::KeepSet { capacity } => {
                prop_assert_eq!(
                    policy.keep_set(now, *capacity),
                    reference.keep_set(now, window, *capacity),
                    "keep_set diverged at now={:?} capacity={}",
                    now,
                    capacity
                );
            }
        }
    }
    for capacity in [0, 1, FUNC_POOL / 2, FUNC_POOL, FUNC_POOL + 9] {
        prop_assert_eq!(
            policy.keep_set(now, capacity),
            reference.keep_set(now, window, capacity),
            "final keep_set diverged at capacity={}",
            capacity
        );
    }
    Ok(())
}

/// Greedy-Dual reference: priority map plus the aging clock, advanced on
/// eviction exactly as the policy does (same float op order → same bits).
#[derive(Default)]
struct RefGreedyDual {
    clock: f64,
    priority: BTreeMap<FuncId, f64>,
}

impl RefGreedyDual {
    fn keep_set(&self, capacity: usize) -> Vec<FuncId> {
        let mut all: Vec<(&FuncId, &f64)> = self.priority.iter().collect();
        all.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap().then_with(|| a.0.cmp(b.0)));
        all.into_iter().take(capacity).map(|(f, _)| f.clone()).collect()
    }
}

proptest! {
    /// `Lru` over the flat arena == ordered-map sort-and-truncate, for any
    /// op sequence including bulk dead-PU purges.
    #[test]
    fn lru_matches_btreemap_reference(ops in proptest::collection::vec(ka_op(), 1..140)) {
        check_recency_policy(&mut Lru::new(), None, &ops)?;
    }

    /// `FixedWindow` agrees with the reference including entries lying
    /// exactly on the eviction boundary (`elapsed == window` is kept).
    #[test]
    fn fixed_window_matches_btreemap_reference(
        ops in proptest::collection::vec(ka_op(), 1..140),
    ) {
        let window = SimDuration::from_millis(WINDOW_MS);
        check_recency_policy(&mut FixedWindow::new(window), Some(window), &ops)?;
    }

    /// Greedy-Dual priorities, clock aging on eviction included, agree
    /// bit-for-bit with the ordered-map reference.
    #[test]
    fn greedy_dual_matches_btreemap_reference(
        ops in proptest::collection::vec(ka_op(), 1..140),
    ) {
        let mut policy = GreedyDual::new();
        let mut reference = RefGreedyDual::default();
        let mut now = SimTime::ZERO;
        for op in &ops {
            match op {
                KaOp::Invoke { func: i, delta_ms, exec_ms, size_q } => {
                    now += SimDuration::from_millis(*delta_ms);
                    let f = func(*i);
                    let exec = SimDuration::from_millis(*exec_ms);
                    let size = f64::from(*size_q);
                    policy.on_invoke(&f, now, exec, size);
                    let p = reference.clock + exec.as_millis_f64() / size.max(1e-9);
                    reference.priority.insert(f, p);
                }
                KaOp::Shed { func: i, delta_ms } => {
                    now += SimDuration::from_millis(*delta_ms);
                    policy.on_shed(&func(*i), now); // ignored by Greedy-Dual
                }
                KaOp::Forget { func: i } => {
                    let f = func(*i);
                    policy.forget(&f);
                    if let Some(p) = reference.priority.remove(&f) {
                        reference.clock = reference.clock.max(p);
                    }
                }
                KaOp::PurgePu { pu } => {
                    let dead = funcs_on_pu(*pu);
                    policy.forget_many(&dead);
                    for f in &dead {
                        if let Some(p) = reference.priority.remove(f) {
                            reference.clock = reference.clock.max(p);
                        }
                    }
                }
                KaOp::KeepSet { capacity } => {
                    prop_assert_eq!(
                        policy.keep_set(now, *capacity),
                        reference.keep_set(*capacity),
                        "keep_set diverged at capacity={}",
                        capacity
                    );
                }
            }
        }
        for capacity in [0, 1, FUNC_POOL, FUNC_POOL + 9] {
            prop_assert_eq!(policy.keep_set(now, capacity), reference.keep_set(capacity));
        }
    }
}

// ---------------------------------------------------------------------------
// CapTable vs an ordered-map reference
// ---------------------------------------------------------------------------

const CAP_PUS: u16 = 3;
const CAP_LOCALS: u32 = 3;

fn cap_pid(i: usize) -> XpuPid {
    let i = i % (CAP_PUS as usize * CAP_LOCALS as usize);
    XpuPid { pu: PuId((i as u16) % CAP_PUS), local: (i as u32) / u32::from(CAP_PUS) }
}

fn perm_bits(bits: u8) -> Perm {
    let mut p = Perm::NONE;
    if bits & 1 != 0 {
        p |= Perm::READ;
    }
    if bits & 2 != 0 {
        p |= Perm::WRITE;
    }
    if bits & 4 != 0 {
        p |= Perm::OWNER;
    }
    p
}

#[derive(Debug, Clone)]
enum CapOp {
    Register {
        pid: usize,
    },
    Remove {
        pid: usize,
    },
    Create {
        owner: usize,
    },
    /// Destroy the `obj`-th object ever created (mod live count).
    Destroy {
        obj: usize,
    },
    Grant {
        actor: usize,
        to: usize,
        obj: usize,
        bits: u8,
    },
    Revoke {
        actor: usize,
        from: usize,
        obj: usize,
        bits: u8,
    },
    /// Dead-PU purge: remove every process registered on `pu`.
    PurgePu {
        pu: u16,
    },
}

fn cap_op() -> impl Strategy<Value = CapOp> {
    let pids = CAP_PUS as usize * CAP_LOCALS as usize;
    prop_oneof![
        3 => (0..pids).prop_map(|pid| CapOp::Register { pid }),
        1 => (0..pids).prop_map(|pid| CapOp::Remove { pid }),
        3 => (0..pids).prop_map(|owner| CapOp::Create { owner }),
        1 => (0..32usize).prop_map(|obj| CapOp::Destroy { obj }),
        4 => (0..pids, 0..pids, 0..32usize, 1u8..=7)
            .prop_map(|(actor, to, obj, bits)| CapOp::Grant { actor, to, obj, bits }),
        2 => (0..pids, 0..pids, 0..32usize, 1u8..=7)
            .prop_map(|(actor, from, obj, bits)| CapOp::Revoke { actor, from, obj, bits }),
        1 => (0..CAP_PUS).prop_map(|pu| CapOp::PurgePu { pu }),
    ]
}

/// The seed's cap-table shape: per-process ordered cap maps and an object
/// registry, with `destroy`/`pids_on`/`holders_of` answered by full scans.
#[derive(Default)]
struct RefCaps {
    groups: BTreeMap<XpuPid, BTreeMap<ObjId, Perm>>,
    objects: BTreeMap<ObjId, ObjKind>,
}

impl RefCaps {
    fn check(&self, pid: XpuPid, obj: ObjId, required: Perm) -> Result<(), CapError> {
        if !self.objects.contains_key(&obj) {
            return Err(CapError::UnknownObject(obj));
        }
        let group = self.groups.get(&pid).ok_or(CapError::UnknownProcess(pid))?;
        let held = group.get(&obj).copied().unwrap_or(Perm::NONE);
        if held.contains(required) {
            Ok(())
        } else {
            Err(CapError::PermissionDenied { actor: pid, obj, required })
        }
    }

    fn grant(&mut self, actor: XpuPid, to: XpuPid, obj: ObjId, perm: Perm) -> Result<(), CapError> {
        self.check(actor, obj, Perm::OWNER)?;
        if !self.groups.contains_key(&to) {
            return Err(CapError::UnknownProcess(to));
        }
        let entry = self.groups.get_mut(&to).unwrap().entry(obj).or_insert(Perm::NONE);
        *entry |= perm;
        Ok(())
    }

    fn revoke(
        &mut self,
        actor: XpuPid,
        from: XpuPid,
        obj: ObjId,
        perm: Perm,
    ) -> Result<(), CapError> {
        self.check(actor, obj, Perm::OWNER)?;
        let group = self.groups.get_mut(&from).ok_or(CapError::UnknownProcess(from))?;
        if let Some(entry) = group.get_mut(&obj) {
            *entry = entry.without(perm);
            if entry.is_empty() {
                group.remove(&obj);
            }
        }
        Ok(())
    }

    fn destroy(&mut self, obj: ObjId) -> Result<(), CapError> {
        self.objects.remove(&obj).ok_or(CapError::UnknownObject(obj))?;
        for group in self.groups.values_mut() {
            group.remove(&obj);
        }
        Ok(())
    }

    fn entries(&self) -> Vec<(XpuPid, ObjId, Perm)> {
        self.groups
            .iter()
            .flat_map(|(pid, group)| group.iter().map(|(obj, perm)| (*pid, *obj, *perm)))
            .collect()
    }

    fn pids_on(&self, pu: PuId) -> Vec<XpuPid> {
        self.groups.keys().copied().filter(|pid| pid.pu == pu).collect()
    }

    fn holders_of(&self, obj: ObjId) -> Vec<XpuPid> {
        self.groups.iter().filter(|(_, g)| g.contains_key(&obj)).map(|(pid, _)| *pid).collect()
    }
}

proptest! {
    /// Every observable of the indexed `CapTable` — flattened entries, the
    /// per-PU pid index, the reverse holders index, object/process id
    /// listings, and each operation's `Result` — agrees with the full-scan
    /// `BTreeMap` reference for any op sequence, dead-PU purges included.
    #[test]
    fn cap_table_matches_btreemap_reference(
        ops in proptest::collection::vec(cap_op(), 1..120),
    ) {
        let mut table = CapTable::new();
        let mut reference = RefCaps::default();
        // Objects the *table* allocated, in creation order; `Destroy`/
        // `Grant`/`Revoke` pick from this list so ids always agree.
        let mut created: Vec<ObjId> = Vec::new();
        let pick = |created: &[ObjId], i: usize| -> Option<ObjId> {
            if created.is_empty() { None } else { Some(created[i % created.len()]) }
        };
        for op in &ops {
            match op {
                CapOp::Register { pid } => {
                    let p = cap_pid(*pid);
                    table.register_process(p);
                    reference.groups.entry(p).or_default();
                }
                CapOp::Remove { pid } => {
                    let p = cap_pid(*pid);
                    table.remove_process(p);
                    reference.groups.remove(&p);
                }
                CapOp::Create { owner } => {
                    let p = cap_pid(*owner);
                    let kind = if owner % 2 == 0 { ObjKind::Ipc } else { ObjKind::Region };
                    match table.create_object(p, kind) {
                        Ok(obj) => {
                            prop_assert!(reference.groups.contains_key(&p));
                            reference.objects.insert(obj, kind);
                            reference.groups.get_mut(&p).unwrap().insert(obj, Perm::ALL);
                            created.push(obj);
                        }
                        Err(e) => {
                            prop_assert_eq!(e, CapError::UnknownProcess(p));
                            prop_assert!(!reference.groups.contains_key(&p));
                        }
                    }
                }
                CapOp::Destroy { obj } => {
                    if let Some(obj) = pick(&created, *obj) {
                        prop_assert_eq!(table.destroy_object(obj), reference.destroy(obj));
                    }
                }
                CapOp::Grant { actor, to, obj, bits } => {
                    if let Some(obj) = pick(&created, *obj) {
                        let (a, t) = (cap_pid(*actor), cap_pid(*to));
                        let perm = perm_bits(*bits);
                        prop_assert_eq!(
                            table.grant(a, t, obj, perm),
                            reference.grant(a, t, obj, perm)
                        );
                    }
                }
                CapOp::Revoke { actor, from, obj, bits } => {
                    if let Some(obj) = pick(&created, *obj) {
                        let (a, f) = (cap_pid(*actor), cap_pid(*from));
                        let perm = perm_bits(*bits);
                        prop_assert_eq!(
                            table.revoke(a, f, obj, perm),
                            reference.revoke(a, f, obj, perm)
                        );
                    }
                }
                CapOp::PurgePu { pu } => {
                    // The crash sweep: enumerate the dead PU's pids from the
                    // index, then drop each process.
                    let dead = PuId(*pu);
                    let swept = table.pids_on(dead);
                    prop_assert_eq!(&swept, &reference.pids_on(dead));
                    for pid in swept {
                        table.remove_process(pid);
                        reference.groups.remove(&pid);
                    }
                    prop_assert!(table.pids_on(dead).is_empty());
                }
            }
            // Byte-for-byte agreement on every flattened observable.
            prop_assert_eq!(table.entries(), reference.entries());
            prop_assert_eq!(
                table.object_ids(),
                reference.objects.keys().copied().collect::<Vec<_>>()
            );
            prop_assert_eq!(
                table.process_ids(),
                reference.groups.keys().copied().collect::<Vec<_>>()
            );
            for pu in 0..CAP_PUS {
                prop_assert_eq!(table.pids_on(PuId(pu)), reference.pids_on(PuId(pu)));
            }
            for &obj in &created {
                prop_assert_eq!(table.holders_of(obj), reference.holders_of(obj));
            }
        }
    }
}
