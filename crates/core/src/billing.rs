//! Pay-as-you-go metering (paper §1, §4.1).
//!
//! Serverless bills at 1 ms granularity. Molecule's resource model is
//! PU-aware: users pick PU kinds by price — "DPU has the lowest prices and
//! FPGA has the highest prices" (§4.1).

use std::collections::HashMap;
use std::fmt;

use hetsim::pu::PuKind;
use hetsim::time::SimDuration;

/// Price per compute-millisecond per MiB of reserved memory, in abstract
/// micro-credits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceTable {
    /// Host CPU price.
    pub cpu: f64,
    /// DPU price (cheapest — slow, efficient ARM cores).
    pub dpu: f64,
    /// FPGA price (most expensive).
    pub fpga: f64,
    /// GPU price.
    pub gpu: f64,
    /// SmartNIC price.
    pub smartnic: f64,
}

impl Default for PriceTable {
    /// Prices ordered as §4.1 describes: DPU < CPU < GPU < FPGA.
    fn default() -> Self {
        PriceTable { cpu: 1.0, dpu: 0.4, fpga: 4.0, gpu: 2.5, smartnic: 0.5 }
    }
}

impl PriceTable {
    /// The price for a PU kind.
    pub fn price(&self, kind: PuKind) -> f64 {
        match kind {
            PuKind::Cpu => self.cpu,
            PuKind::Dpu => self.dpu,
            PuKind::Fpga => self.fpga,
            PuKind::Gpu => self.gpu,
            PuKind::SmartNic => self.smartnic,
        }
    }
}

/// The billing granularity: 1 ms, as AWS Lambda bills since 2021 (§1).
pub const BILLING_GRANULARITY: SimDuration = SimDuration::from_millis(1);

/// Accumulates charges per PU kind.
#[derive(Debug, Default, Clone)]
pub struct Meter {
    prices: PriceTable,
    charged: HashMap<PuKind, f64>,
    invocations: u64,
}

impl Meter {
    /// Creates a meter with the given price table.
    pub fn new(prices: PriceTable) -> Meter {
        Meter { prices, ..Meter::default() }
    }

    /// Bills one invocation of `duration` on a PU of `kind` with
    /// `memory_mib` reserved. Durations round *up* to the billing
    /// granularity.
    ///
    /// Returns the charge in micro-credits.
    pub fn charge(&mut self, kind: PuKind, duration: SimDuration, memory_mib: u64) -> f64 {
        let gran = BILLING_GRANULARITY.as_nanos();
        let billed_ms = duration.as_nanos().div_ceil(gran).max(1);
        let cost = billed_ms as f64 * self.prices.price(kind) * memory_mib as f64 / 128.0;
        *self.charged.entry(kind).or_insert(0.0) += cost;
        self.invocations += 1;
        cost
    }

    /// Total charged for a PU kind.
    pub fn total_for(&self, kind: PuKind) -> f64 {
        self.charged.get(&kind).copied().unwrap_or(0.0)
    }

    /// Total charged across all PU kinds.
    pub fn total(&self) -> f64 {
        self.charged.values().sum()
    }

    /// Number of invocations billed.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }
}

impl fmt::Display for Meter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "meter: {} invocations, {:.2} credits total", self.invocations, self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_millisecond_rounds_up_to_one() {
        let mut m = Meter::new(PriceTable::default());
        let c = m.charge(PuKind::Cpu, SimDuration::from_micros(250), 128);
        assert_eq!(c, 1.0);
        // exactly 1 ms is still 1 unit, 1 ms + 1 ns is 2.
        assert_eq!(m.charge(PuKind::Cpu, SimDuration::from_millis(1), 128), 1.0);
        assert_eq!(m.charge(PuKind::Cpu, SimDuration::from_nanos(1_000_001), 128), 2.0);
    }

    #[test]
    fn dpu_is_cheaper_cpu_fpga_pricier() {
        let mut m = Meter::new(PriceTable::default());
        let d = SimDuration::from_millis(10);
        let cpu = m.charge(PuKind::Cpu, d, 128);
        let dpu = m.charge(PuKind::Dpu, d, 128);
        let fpga = m.charge(PuKind::Fpga, d, 128);
        assert!(dpu < cpu, "§4.1: DPU has the lowest prices");
        assert!(fpga > cpu, "§4.1: FPGA has the highest prices");
        assert_eq!(m.total(), cpu + dpu + fpga);
        assert_eq!(m.invocations(), 3);
    }

    #[test]
    fn memory_scales_the_charge() {
        let mut m = Meter::new(PriceTable::default());
        let small = m.charge(PuKind::Cpu, SimDuration::from_millis(5), 128);
        let big = m.charge(PuKind::Cpu, SimDuration::from_millis(5), 256);
        assert_eq!(big, small * 2.0);
        assert_eq!(m.total_for(PuKind::Dpu), 0.0);
    }
}
