//! Error type for the Molecule runtime.

use core::fmt;

use hetsim::pu::PuId;
use vsandbox::spec::FuncId;

/// Errors surfaced by the Molecule runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum MoleculeError {
    /// A sandbox runtime operation failed.
    Sandbox(vsandbox::oci::SandboxError),
    /// An XPU-Shim operation failed.
    Shim(xpu_shim::error::ShimError),
    /// The function is not registered.
    UnknownFunction(FuncId),
    /// The referenced instance does not exist.
    UnknownInstance(u64),
    /// The function has no profile runnable on this PU.
    UnsupportedPu {
        /// The function.
        func: FuncId,
        /// The PU it was asked to run on.
        pu: PuId,
    },
    /// No PU had capacity for the placement.
    NoCapacity(FuncId),
    /// The PU is crashed or circuit-broken: requests must fail over.
    PuUnavailable(PuId),
    /// No warm instance was available for a warm-only invocation.
    NoWarmInstance {
        /// The function.
        func: FuncId,
        /// The PU queried.
        pu: PuId,
    },
    /// Internal scheduling or wiring error.
    Internal(String),
}

impl fmt::Display for MoleculeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoleculeError::Sandbox(e) => write!(f, "sandbox error: {e}"),
            MoleculeError::Shim(e) => write!(f, "shim error: {e}"),
            MoleculeError::UnknownFunction(id) => write!(f, "unknown function: {id}"),
            MoleculeError::UnknownInstance(id) => write!(f, "unknown instance: {id}"),
            MoleculeError::UnsupportedPu { func, pu } => {
                write!(f, "function {func} has no profile for {pu}")
            }
            MoleculeError::NoCapacity(func) => write!(f, "no capacity to place {func}"),
            MoleculeError::PuUnavailable(pu) => {
                write!(f, "{pu} is unavailable (crashed or circuit-open)")
            }
            MoleculeError::NoWarmInstance { func, pu } => {
                write!(f, "no warm instance of {func} on {pu}")
            }
            MoleculeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for MoleculeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MoleculeError::Sandbox(e) => Some(e),
            MoleculeError::Shim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vsandbox::oci::SandboxError> for MoleculeError {
    fn from(e: vsandbox::oci::SandboxError) -> Self {
        MoleculeError::Sandbox(e)
    }
}

impl From<xpu_shim::error::ShimError> for MoleculeError {
    fn from(e: xpu_shim::error::ShimError) -> Self {
        MoleculeError::Shim(e)
    }
}
