//! Placement: profile selection, chain co-location and density packing
//! (paper §4.1, §5 "Profile selections", Fig. 2a).

use hetsim::pu::{PuId, PuKind};
use hetsim::topology::Machine;
use vsandbox::spec::FuncId;

use crate::error::MoleculeError;
use crate::function::FunctionDef;

/// The placement policy in effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Locate functions of one chain on the same PU where possible (§5:
    /// "Molecule uses a policy that considers function-chain by locating
    /// functions in one chain to the same PU").
    #[default]
    ChainColocate,
    /// First allowed PU with capacity, in PU order.
    FirstFit,
}

/// The scheduler: maps functions to PUs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scheduler {
    policy: PlacementPolicy,
}

impl Scheduler {
    /// Creates a scheduler with the given policy.
    pub fn new(policy: PlacementPolicy) -> Scheduler {
        Scheduler { policy }
    }

    /// The policy in effect.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Whether `pu` can take one more instance of `def`.
    ///
    /// General-purpose PUs check memory headroom against the function's
    /// reservation. Accelerators are **not** infinite: an FPGA admits a new
    /// kernel only while the wrapper has image slots (12 on F1, Table 4) and
    /// fabric resources left for it — a kernel already resident always fits;
    /// a GPU admits instances only while MPS kernel slots remain. Without
    /// these checks placement could overcommit a fabric that `runf`/`runG`
    /// would then reject at start time.
    pub fn pu_has_capacity(machine: &Machine, pu: PuId, def: &FunctionDef) -> bool {
        let Some(spec) = machine.pu(pu) else { return false };
        match spec.kind {
            PuKind::Fpga => {
                let (Some(dev), Some(profile)) = (machine.fpga(pu), def.fpga.as_ref()) else {
                    return false;
                };
                if dev.is_resident(&profile.kernel.name) {
                    return true;
                }
                dev.resident_kernel_count() < hetsim::fpga::FpgaDevice::MAX_KERNELS_PER_IMAGE
                    && profile.kernel.resources.fits_in(&dev.spare_resources())
            }
            PuKind::Gpu => {
                let Some(dev) = machine.gpu(pu) else { return false };
                def.gpu.is_some() && dev.free_kernel_slots() > 0
            }
            _ => match machine.os(pu) {
                Some(os) => os.usable_mib().saturating_sub(os.reserved_mib()) >= def.memory_mib,
                None => false,
            },
        }
    }

    /// Picks a PU for `def`. With [`PlacementPolicy::ChainColocate`], the
    /// previous stage's PU wins if the function supports it and it has
    /// capacity.
    ///
    /// # Errors
    ///
    /// [`MoleculeError::NoCapacity`] when no allowed PU fits the function.
    pub fn place(
        &self,
        machine: &Machine,
        def: &FunctionDef,
        prev_stage: Option<PuId>,
    ) -> Result<PuId, MoleculeError> {
        self.place_avoiding(machine, def, prev_stage, &[])
    }

    /// [`place`](Self::place), excluding the PUs in `avoid` — the failover
    /// path: the health checker feeds in crashed and circuit-open PUs so new
    /// work lands on survivors. A function whose preferred kind is entirely
    /// avoided degrades to a later profile (typically the CPU cost table).
    ///
    /// # Errors
    ///
    /// [`MoleculeError::NoCapacity`] when every allowed PU is avoided or
    /// full.
    pub fn place_avoiding(
        &self,
        machine: &Machine,
        def: &FunctionDef,
        prev_stage: Option<PuId>,
        avoid: &[PuId],
    ) -> Result<PuId, MoleculeError> {
        if self.policy == PlacementPolicy::ChainColocate {
            if let Some(prev) = prev_stage {
                if let Some(spec) = machine.pu(prev) {
                    if !avoid.contains(&prev)
                        && def.supports(spec.kind)
                        && Self::pu_has_capacity(machine, prev, def)
                    {
                        return Ok(prev);
                    }
                }
            }
        }
        for kind in &def.profiles {
            for pu in machine.pus_of_kind(*kind) {
                if !avoid.contains(&pu) && Self::pu_has_capacity(machine, pu, def) {
                    return Ok(pu);
                }
            }
        }
        Err(MoleculeError::NoCapacity(def.id.clone()))
    }

    /// Places a whole chain, co-locating stages per policy. Returns the PU
    /// of each stage (no reservations are made — this is the planning step).
    ///
    /// # Errors
    ///
    /// [`MoleculeError::NoCapacity`] if any stage cannot be placed.
    pub fn place_chain(
        &self,
        machine: &Machine,
        defs: &[&FunctionDef],
    ) -> Result<Vec<PuId>, MoleculeError> {
        let mut out = Vec::with_capacity(defs.len());
        let mut prev = None;
        for def in defs {
            let pu = self.place(machine, def, prev)?;
            out.push(pu);
            prev = Some(pu);
        }
        Ok(out)
    }

    /// Cost-aware profile selection (§4.1: users pick PU kinds by price;
    /// DPUs are cheapest): among the PUs that can serve `def` within
    /// `latency_budget` for `input_bytes` of input, pick the one whose
    /// billed cost (execution time × PU price) is lowest.
    ///
    /// # Errors
    ///
    /// [`MoleculeError::NoCapacity`] if no allowed PU meets the budget.
    pub fn place_cost_aware(
        &self,
        machine: &Machine,
        def: &FunctionDef,
        input_bytes: u64,
        latency_budget: hetsim::time::SimDuration,
        prices: &crate::billing::PriceTable,
    ) -> Result<PuId, MoleculeError> {
        let mut best: Option<(f64, PuId)> = None;
        for kind in &def.profiles {
            for pu in machine.pus_of_kind(*kind) {
                if !Self::pu_has_capacity(machine, pu, def) {
                    continue;
                }
                let Some(spec) = machine.pu(pu) else { continue };
                let exec = match spec.kind {
                    PuKind::Fpga => match &def.fpga {
                        Some(p) => p.exec.host_time(input_bytes),
                        None => continue,
                    },
                    _ => def.exec.time_on(spec, input_bytes),
                };
                if exec > latency_budget {
                    continue;
                }
                let cost = exec.as_millis_f64() * prices.price(spec.kind);
                if best.is_none_or(|(c, _)| cost < c) {
                    best = Some((cost, pu));
                }
            }
        }
        best.map(|(_, pu)| pu).ok_or_else(|| MoleculeError::NoCapacity(def.id.clone()))
    }

    /// Density packing (Fig. 2a): reserves instance slots of `func` on the
    /// given PUs until every PU is full, returning how many fit. Each PU
    /// kind uses its calibrated per-instance reservation (users size DPU
    /// deployments explicitly, §4.1). Reservations are held — call
    /// [`release_packed`](Self::release_packed) to undo.
    pub fn pack_until_full(&self, machine: &Machine, func: &FuncId, pus: &[PuId]) -> u64 {
        let _ = func;
        let density = machine.calibration().density;
        let mut placed = 0;
        for &pu in pus {
            let Some(os) = machine.os(pu) else { continue };
            let Some(spec) = machine.pu(pu) else { continue };
            let mib = match spec.kind {
                PuKind::Cpu => density.cpu_instance_mib,
                _ => density.dpu_instance_mib,
            };
            while os.try_reserve_mib(mib).is_ok() {
                placed += 1;
            }
        }
        placed
    }

    /// Releases every reservation on the given PUs (undo of
    /// [`pack_until_full`](Self::pack_until_full)).
    pub fn release_packed(&self, machine: &Machine, pus: &[PuId]) {
        for &pu in pus {
            if let Some(os) = machine.os(pu) {
                let held = os.reserved_mib();
                os.release_mib(held);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionDef;
    use vsandbox::spec::LangRuntime;

    fn cpu_dpu_fn(name: &str) -> FunctionDef {
        FunctionDef::builder(name, LangRuntime::Python)
            .profiles(&[PuKind::Cpu, PuKind::Dpu])
            .build()
    }

    #[test]
    fn chain_colocate_prefers_previous_stage() {
        let machine = Machine::paper_cpu_dpu_server();
        let sched = Scheduler::new(PlacementPolicy::ChainColocate);
        let def = cpu_dpu_fn("f");
        assert_eq!(sched.place(&machine, &def, Some(PuId(1))).unwrap(), PuId(1));
        assert_eq!(sched.place(&machine, &def, None).unwrap(), PuId(0));
    }

    #[test]
    fn first_fit_ignores_chain_context() {
        let machine = Machine::paper_cpu_dpu_server();
        let sched = Scheduler::new(PlacementPolicy::FirstFit);
        let def = cpu_dpu_fn("f");
        assert_eq!(sched.place(&machine, &def, Some(PuId(1))).unwrap(), PuId(0));
    }

    #[test]
    fn place_avoiding_fails_over_to_surviving_pus() {
        let machine = Machine::paper_cpu_dpu_server();
        let sched = Scheduler::default();
        let dpu_first = FunctionDef::builder("d", LangRuntime::Python)
            .profiles(&[PuKind::Dpu, PuKind::Cpu])
            .build();
        // Healthy: the preferred DPU wins.
        assert_eq!(sched.place_avoiding(&machine, &dpu_first, None, &[]).unwrap(), PuId(1));
        // First DPU dead: the second DPU takes over.
        assert_eq!(sched.place_avoiding(&machine, &dpu_first, None, &[PuId(1)]).unwrap(), PuId(2));
        // Both DPUs dead: degrade to the CPU cost table.
        let degraded =
            sched.place_avoiding(&machine, &dpu_first, None, &[PuId(1), PuId(2)]).unwrap();
        assert_eq!(machine.pu(degraded).unwrap().kind, PuKind::Cpu);
        // Chain affinity never routes to an avoided PU.
        assert_ne!(
            sched.place_avoiding(&machine, &dpu_first, Some(PuId(1)), &[PuId(1)]).unwrap(),
            PuId(1)
        );
        // Everything avoided: a clean error, not a panic.
        assert!(matches!(
            sched.place_avoiding(&machine, &dpu_first, None, &[PuId(0), PuId(1), PuId(2)]),
            Err(MoleculeError::NoCapacity(_))
        ));
    }

    #[test]
    fn placement_respects_profiles() {
        let machine = Machine::paper_cpu_dpu_server();
        let sched = Scheduler::default();
        let dpu_only =
            FunctionDef::builder("d", LangRuntime::Python).profiles(&[PuKind::Dpu]).build();
        assert_eq!(sched.place(&machine, &dpu_only, None).unwrap(), PuId(1));
        let fpga_only = FunctionDef::builder("g", LangRuntime::OpenCl)
            .profiles(&[PuKind::Gpu])
            .gpu(crate::function::ExecModel::Fixed(hetsim::time::SimDuration::from_micros(100)))
            .build();
        assert!(matches!(
            sched.place(&machine, &fpga_only, None),
            Err(MoleculeError::NoCapacity(_))
        ));
    }

    #[test]
    fn full_pu_overflows_to_the_next() {
        let machine = Machine::paper_cpu_dpu_server();
        let sched = Scheduler::default();
        let def = cpu_dpu_fn("f");
        // Fill the CPU completely.
        let cpu_os = machine.os(PuId(0)).unwrap();
        let free = cpu_os.usable_mib();
        cpu_os.try_reserve_mib(free).unwrap();
        assert_eq!(sched.place(&machine, &def, None).unwrap(), PuId(1));
        cpu_os.release_mib(free);
    }

    #[test]
    fn place_chain_colocates_all_stages() {
        let machine = Machine::paper_cpu_dpu_server();
        let sched = Scheduler::default();
        let defs: Vec<FunctionDef> = (0..5).map(|i| cpu_dpu_fn(&format!("f{i}"))).collect();
        let refs: Vec<&FunctionDef> = defs.iter().collect();
        let placement = sched.place_chain(&machine, &refs).unwrap();
        assert!(placement.iter().all(|pu| *pu == placement[0]));
    }

    #[test]
    fn cost_aware_prefers_the_dpu_when_the_budget_allows() {
        use crate::billing::PriceTable;
        use hetsim::time::SimDuration;
        let machine = Machine::paper_cpu_dpu_server();
        let sched = Scheduler::default();
        let prices = PriceTable::default();
        let def = FunctionDef::builder("f", LangRuntime::Python)
            .profiles(&[PuKind::Cpu, PuKind::Dpu])
            .exec_ms(10.0)
            .build();
        // Loose budget: the DPU (10ms * 6.2 = 62ms exec) is cheaper
        // (62 * 0.4 = 24.8 < 10 * 1.0)? No: 24.8 > 10 — the CPU wins on
        // cost for this function...
        let loose = sched
            .place_cost_aware(&machine, &def, 0, SimDuration::from_millis(100), &prices)
            .unwrap();
        assert_eq!(machine.pu(loose).unwrap().kind, PuKind::Cpu);
        // ...but for a function whose DPU slowdown is amortized by price
        // (cheap DPU, short run), make DPUs attractive by raising CPU price.
        let skewed = PriceTable { cpu: 10.0, ..PriceTable::default() };
        let dpu_win = sched
            .place_cost_aware(&machine, &def, 0, SimDuration::from_millis(100), &skewed)
            .unwrap();
        assert_eq!(machine.pu(dpu_win).unwrap().kind, PuKind::Dpu);
        // Tight budget: only the CPU meets 20ms.
        let tight = sched
            .place_cost_aware(&machine, &def, 0, SimDuration::from_millis(20), &skewed)
            .unwrap();
        assert_eq!(machine.pu(tight).unwrap().kind, PuKind::Cpu);
        // Impossible budget: error.
        assert!(matches!(
            sched.place_cost_aware(&machine, &def, 0, SimDuration::from_millis(1), &prices),
            Err(MoleculeError::NoCapacity(_))
        ));
    }

    #[test]
    fn fpga_capacity_is_finite_for_placement() {
        use hetsim::fpga::{FpgaDevice, FpgaResources, KernelSpec};
        // One fabric only, so filling it exhausts the whole machine's FPGA
        // capacity and place() has nowhere else to go.
        let machine = Machine::builder().host_cpu().fpgas(1).build();
        let fpga = machine.pus_of_kind(PuKind::Fpga)[0];
        let small = |name: &str| KernelSpec {
            name: name.to_owned(),
            resources: FpgaResources { luts: 5_000, regs: 8_000, brams: 20, dsps: 36 },
        };
        let fpga_fn = |name: &str, kernel: KernelSpec| {
            FunctionDef::builder(name, LangRuntime::OpenCl)
                .profiles(&[PuKind::Fpga])
                .fpga(
                    kernel,
                    crate::function::ExecModel::Fixed(hetsim::time::SimDuration::from_micros(100)),
                )
                .build()
        };
        // A reasonable kernel fits on an empty fabric.
        assert!(Scheduler::pu_has_capacity(&machine, fpga, &fpga_fn("ok", small("ok"))));
        // A kernel larger than the whole device never fits.
        let giant = KernelSpec {
            name: "giant".to_owned(),
            resources: FpgaResources { luts: u64::MAX, regs: 0, brams: 0, dsps: 0 },
        };
        assert!(!Scheduler::pu_has_capacity(&machine, fpga, &fpga_fn("giant", giant)));
        // Fill every wrapper slot: the 13th distinct kernel is refused, but
        // a resident kernel still "fits" (warm reuse).
        let dev = machine.fpga(fpga).unwrap();
        let image = {
            let mut b = hetsim::fpga::ImageBuilder::new(hetsim::fpga::ImageId(99))
                .wrapper(FpgaResources::WRAPPER_BASE);
            for i in 0..FpgaDevice::MAX_KERNELS_PER_IMAGE {
                b = b.kernel(small(&format!("k{i}")));
            }
            b.build(&dev.capacity()).unwrap()
        };
        let mut sim = hetsim::engine::Simulation::new();
        let d = dev.clone();
        sim.spawn("flash", move |ctx| d.load_image(ctx, &image).unwrap());
        sim.run().unwrap();
        assert!(!Scheduler::pu_has_capacity(&machine, fpga, &fpga_fn("new", small("new"))));
        assert!(Scheduler::pu_has_capacity(&machine, fpga, &fpga_fn("k0", small("k0"))));
        // And place() surfaces the refusal as NoCapacity, not an overcommit.
        assert!(matches!(
            Scheduler::default().place(&machine, &fpga_fn("new", small("new")), None),
            Err(MoleculeError::NoCapacity(_))
        ));
    }

    #[test]
    fn gpu_capacity_is_bounded_by_mps_slots() {
        use hetsim::gpu::GpuDevice;
        let machine = Machine::full_heterogeneous();
        let gpus = machine.pus_of_kind(PuKind::Gpu);
        assert!(!gpus.is_empty(), "full machine has a GPU");
        let gpu = gpus[0];
        let def = FunctionDef::builder("g", LangRuntime::Cuda)
            .profiles(&[PuKind::Gpu])
            .gpu(crate::function::ExecModel::Fixed(hetsim::time::SimDuration::from_micros(50)))
            .build();
        assert!(Scheduler::pu_has_capacity(&machine, gpu, &def));
        // Exhaust the MPS kernel slots.
        let dev = machine.gpu(gpu).unwrap().clone();
        let mut sim = hetsim::engine::Simulation::new();
        let d = dev.clone();
        sim.spawn("fill", move |ctx| {
            let c = d.create_context(ctx);
            for i in 0..GpuDevice::MPS_KERNEL_SLOTS {
                d.load_kernel(ctx, c, &format!("k{i}")).unwrap();
            }
        });
        sim.run().unwrap();
        assert_eq!(dev.free_kernel_slots(), 0);
        assert!(!Scheduler::pu_has_capacity(&machine, gpu, &def));
        assert!(matches!(
            Scheduler::default().place(&machine, &def, None),
            Err(MoleculeError::NoCapacity(_))
        ));
    }

    #[test]
    fn density_packing_reproduces_fig2a_counts() {
        let machine = Machine::paper_cpu_dpu_server();
        let sched = Scheduler::default();
        let func = FuncId::new("image-process");
        let cpu_only = sched.pack_until_full(&machine, &func, &[PuId(0)]);
        sched.release_packed(&machine, &[PuId(0)]);
        let with_one = sched.pack_until_full(&machine, &func, &[PuId(0), PuId(1)]);
        sched.release_packed(&machine, &[PuId(0), PuId(1)]);
        let with_two = sched.pack_until_full(&machine, &func, &[PuId(0), PuId(1), PuId(2)]);
        sched.release_packed(&machine, &[PuId(0), PuId(1), PuId(2)]);
        assert_eq!(cpu_only, 1000);
        assert_eq!(with_one, 1256);
        assert_eq!(with_two, 1512);
    }
}
