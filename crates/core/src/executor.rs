//! Live executors (paper Fig. 6 / §4.1).
//!
//! "Molecule will launch executors on other PUs through xSpawn, which are
//! responsible for managing local function instances using the vectorized
//! sandbox abstraction. The executor receives commands from Molecule
//! (through nIPC), executes the commands on the local OS, and returns the
//! results."
//!
//! This module implements that loop for real: each executor is a simulated
//! process on its PU, blocked on its command XPU-FIFO; the manager writes
//! length-prefixed [`ExecutorCommand`] frames over nIPC and reads
//! [`ExecutorReply`] frames back. Every byte of control traffic therefore
//! pays the measured nIPC costs — no modelled shortcut.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hetsim::engine::ProcCtx;
use hetsim::pu::PuId;
use hetsim::time::SimDuration;
use telemetry::SpanContext;
use vsandbox::spec::FuncId;
use xpu_shim::cap::Perm;
use xpu_shim::fifo::XpuFifoWriter;
use xpu_shim::id::GlobalUuid;

use crate::error::MoleculeError;
use crate::runtime::{InstanceId, Molecule, StartupKind};

/// A command the manager sends to an executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutorCommand {
    /// Liveness probe.
    Ping,
    /// cfork an instance of `func` from the PU-local template.
    Cfork {
        /// The function to instantiate.
        func: FuncId,
    },
    /// Cold-boot an instance of `func` (the baseline path).
    ColdStart {
        /// The function to instantiate.
        func: FuncId,
    },
    /// Retire a previously started instance.
    Retire {
        /// The instance to retire.
        instance: u64,
    },
    /// Stop the executor loop.
    Shutdown,
}

/// A reply an executor sends back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutorReply {
    /// `Ping` answered.
    Pong,
    /// An instance was started.
    Started {
        /// The new instance id.
        instance: u64,
        /// Startup latency on the executor's side, nanoseconds.
        startup_ns: u64,
    },
    /// An instance was retired.
    Retired,
    /// The command failed.
    Failed {
        /// Human-readable reason.
        reason: String,
    },
    /// The executor acknowledged shutdown.
    ShuttingDown,
}

/// Frame tag marking a reply that echoes its command's idempotency key.
/// Distinct from every plain [`ExecutorReply::encode`] variant tag.
const KEYED_REPLY_TAG: u8 = 0xFF;

/// Frame tag marking a vectorized frame: several command frames packed into
/// one nIPC message, sharing a single doorbell. Distinct from every command
/// frame tag (0..=4) and from [`KEYED_REPLY_TAG`].
const BATCH_FRAME_TAG: u8 = 0xFE;

/// Packs several already-encoded command frames into one vectorized frame.
/// The whole batch travels as a single `xfifo_write` — one XPUcall, one
/// doorbell — and the executor unpacks and serves each sub-frame in order.
pub fn encode_batch(frames: &[Bytes]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u8(BATCH_FRAME_TAG);
    buf.put_u32_le(frames.len() as u32);
    for frame in frames {
        buf.put_u32_le(frame.len() as u32);
        buf.put_slice(frame);
    }
    buf.freeze()
}

/// Unpacks a frame produced by [`encode_batch`]. Returns `None` for anything
/// that is not a well-formed batch frame (the caller then treats the bytes
/// as a single command frame).
pub fn decode_batch(bytes: &Bytes) -> Option<Vec<Bytes>> {
    let mut buf = bytes.clone();
    if buf.remaining() < 5 || buf.get_u8() != BATCH_FRAME_TAG {
        return None;
    }
    let count = buf.get_u32_le() as usize;
    let mut frames = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 4 {
            return None;
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return None;
        }
        frames.push(buf.split_to(len));
    }
    Some(frames)
}

/// Fixed-capacity served-reply cache with O(1) lookup and insert: a hash
/// index for the dedup hit path plus an insertion-order ring for eviction.
/// Eviction is oldest-inserted-first — the same policy the previous
/// `BTreeMap::pop_first` pruning gave (idempotency keys are handed out
/// monotonically), without the per-insert tree rebalance.
#[derive(Debug)]
pub struct ReplyCache {
    cap: usize,
    ring: std::collections::VecDeque<u64>,
    map: std::collections::HashMap<u64, Bytes>,
}

impl ReplyCache {
    /// Creates a cache holding at most `cap` replies (minimum 1).
    pub fn new(cap: usize) -> ReplyCache {
        let cap = cap.max(1);
        ReplyCache {
            cap,
            ring: std::collections::VecDeque::with_capacity(cap + 1),
            map: std::collections::HashMap::with_capacity(cap + 1),
        }
    }

    /// The cached reply for `key`, if it has not been evicted.
    pub fn get(&self, key: u64) -> Option<&Bytes> {
        self.map.get(&key)
    }

    /// Caches `reply` under `key`, evicting the oldest entry when full.
    /// Re-inserting an existing key refreshes the reply without growing the
    /// ring.
    pub fn insert(&mut self, key: u64, reply: Bytes) {
        if self.map.insert(key, reply).is_none() {
            self.ring.push_back(key);
            if self.ring.len() > self.cap {
                if let Some(oldest) = self.ring.pop_front() {
                    self.map.remove(&oldest);
                }
            }
        }
    }

    /// Number of cached replies.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Option<String> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return None;
    }
    let bytes = buf.split_to(len);
    String::from_utf8(bytes.to_vec()).ok()
}

impl ExecutorCommand {
    /// Encodes the command to its wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            ExecutorCommand::Ping => buf.put_u8(0),
            ExecutorCommand::Cfork { func } => {
                buf.put_u8(1);
                put_str(&mut buf, func.as_str());
            }
            ExecutorCommand::ColdStart { func } => {
                buf.put_u8(2);
                put_str(&mut buf, func.as_str());
            }
            ExecutorCommand::Retire { instance } => {
                buf.put_u8(3);
                buf.put_u64_le(*instance);
            }
            ExecutorCommand::Shutdown => buf.put_u8(4),
        }
        buf.freeze()
    }

    /// Decodes a command from its wire format.
    pub fn decode(mut bytes: Bytes) -> Option<ExecutorCommand> {
        if bytes.remaining() < 1 {
            return None;
        }
        match bytes.get_u8() {
            0 => Some(ExecutorCommand::Ping),
            1 => Some(ExecutorCommand::Cfork { func: FuncId::new(get_str(&mut bytes)?) }),
            2 => Some(ExecutorCommand::ColdStart { func: FuncId::new(get_str(&mut bytes)?) }),
            3 => {
                if bytes.remaining() < 8 {
                    return None;
                }
                Some(ExecutorCommand::Retire { instance: bytes.get_u64_le() })
            }
            4 => Some(ExecutorCommand::Shutdown),
            _ => None,
        }
    }

    /// Encodes the command with `span` carried *inside the frame* (a tag
    /// byte, then an optional 16-byte context, then the command): the
    /// executor wire protocol embeds the trace context so a
    /// manager→executor command continues the manager's trace on the remote
    /// PU, even over transports that don't piggyback contexts themselves.
    pub fn encode_traced(&self, span: Option<SpanContext>) -> Bytes {
        let mut buf = BytesMut::new();
        match span {
            Some(s) => {
                buf.put_u8(1);
                buf.put_slice(&s.to_wire());
            }
            None => buf.put_u8(0),
        }
        buf.put_slice(&self.encode());
        buf.freeze()
    }

    /// Decodes a frame produced by [`encode_traced`](Self::encode_traced).
    pub fn decode_traced(bytes: Bytes) -> Option<(ExecutorCommand, Option<SpanContext>)> {
        let (command, span, _key) = ExecutorCommand::decode_framed(bytes)?;
        Some((command, span))
    }

    /// Encodes the command like [`encode_traced`](Self::encode_traced) but
    /// additionally carries an idempotency `key`, so the executor can
    /// recognise a duplicated or re-sent command and serve it exactly once.
    pub fn encode_keyed(&self, key: u64, span: Option<SpanContext>) -> Bytes {
        let mut buf = BytesMut::new();
        match span {
            Some(s) => {
                buf.put_u8(3);
                buf.put_u64_le(key);
                buf.put_slice(&s.to_wire());
            }
            None => {
                buf.put_u8(2);
                buf.put_u64_le(key);
            }
        }
        buf.put_slice(&self.encode());
        buf.freeze()
    }

    /// Decodes any command frame: [`encode_traced`](Self::encode_traced)
    /// (tags 0/1) or [`encode_keyed`](Self::encode_keyed) (tags 2/3).
    pub fn decode_framed(
        mut bytes: Bytes,
    ) -> Option<(ExecutorCommand, Option<SpanContext>, Option<u64>)> {
        if bytes.remaining() < 1 {
            return None;
        }
        let tag = bytes.get_u8();
        let key = match tag {
            0 | 1 => None,
            2 | 3 => {
                if bytes.remaining() < 8 {
                    return None;
                }
                Some(bytes.get_u64_le())
            }
            _ => return None,
        };
        let span = match tag {
            0 | 2 => None,
            _ => {
                if bytes.remaining() < 16 {
                    return None;
                }
                let raw = bytes.split_to(16);
                SpanContext::from_wire(&raw)
            }
        };
        Some((ExecutorCommand::decode(bytes)?, span, key))
    }
}

impl ExecutorReply {
    /// Encodes the reply to its wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            ExecutorReply::Pong => buf.put_u8(0),
            ExecutorReply::Started { instance, startup_ns } => {
                buf.put_u8(1);
                buf.put_u64_le(*instance);
                buf.put_u64_le(*startup_ns);
            }
            ExecutorReply::Retired => buf.put_u8(2),
            ExecutorReply::Failed { reason } => {
                buf.put_u8(3);
                put_str(&mut buf, reason);
            }
            ExecutorReply::ShuttingDown => buf.put_u8(4),
        }
        buf.freeze()
    }

    /// Encodes the reply with the command's idempotency `key` echoed in
    /// front (a sentinel tag byte, then the key, then the reply), so the
    /// manager can match a reply to the exact command it answers and discard
    /// stragglers from earlier timed-out calls.
    pub fn encode_keyed(&self, key: u64) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u8(KEYED_REPLY_TAG);
        buf.put_u64_le(key);
        buf.put_slice(&self.encode());
        buf.freeze()
    }

    /// Decodes either a plain [`encode`](Self::encode) frame or a keyed
    /// [`encode_keyed`](Self::encode_keyed) frame, returning the echoed key
    /// when present.
    pub fn decode_framed(mut bytes: Bytes) -> Option<(ExecutorReply, Option<u64>)> {
        if bytes.remaining() >= 9 && bytes[0] == KEYED_REPLY_TAG {
            bytes.advance(1);
            let key = bytes.get_u64_le();
            return Some((ExecutorReply::decode(bytes)?, Some(key)));
        }
        Some((ExecutorReply::decode(bytes)?, None))
    }

    /// Decodes a reply from its wire format.
    pub fn decode(mut bytes: Bytes) -> Option<ExecutorReply> {
        if bytes.remaining() < 1 {
            return None;
        }
        match bytes.get_u8() {
            0 => Some(ExecutorReply::Pong),
            1 => {
                if bytes.remaining() < 16 {
                    return None;
                }
                Some(ExecutorReply::Started {
                    instance: bytes.get_u64_le(),
                    startup_ns: bytes.get_u64_le(),
                })
            }
            2 => Some(ExecutorReply::Retired),
            3 => Some(ExecutorReply::Failed { reason: get_str(&mut bytes)? }),
            4 => Some(ExecutorReply::ShuttingDown),
            _ => None,
        }
    }
}

/// A manager-side handle to a live executor on a neighbour PU.
#[derive(Debug)]
pub struct ExecutorHandle {
    /// The PU the executor runs on.
    pub pu: PuId,
    cluster: xpu_shim::cluster::ShimCluster,
    command_writer: XpuFifoWriter,
    reply_fifo: xpu_shim::fifo::XpuFifoReader,
}

impl ExecutorHandle {
    /// Sends one command and waits for the matching reply.
    ///
    /// # Errors
    ///
    /// Shim failures, or [`MoleculeError::Internal`] on protocol errors and
    /// executor-reported failures.
    pub fn call(
        &self,
        ctx: &mut ProcCtx,
        command: ExecutorCommand,
    ) -> Result<ExecutorReply, MoleculeError> {
        let t0 = ctx.now();
        self.command_writer.write(ctx, command.encode_traced(ctx.trace_ctx()))?;
        let raw = loop {
            let raw = self.reply_fifo.read(ctx)?;
            // A keyed frame answers some earlier call_ft command, not this
            // un-keyed one — a straggler delayed past its caller's timeout.
            match raw.first() {
                Some(&KEYED_REPLY_TAG) => {
                    telemetry::with(|r| r.metrics().counter_add("executor.stale_replies", 1));
                }
                _ => break raw,
            }
        };
        telemetry::with(|r| {
            r.complete_span(
                ctx.lane(),
                t0.as_nanos(),
                ctx.now().as_nanos(),
                &format!("executor:call pu{}", self.pu.0),
                ctx.trace_ctx(),
            );
            r.metrics().counter_add("executor.calls", 1);
            r.metrics().observe_ns("executor.call_ns", (ctx.now() - t0).as_nanos());
        });
        let reply = ExecutorReply::decode(raw)
            .ok_or_else(|| MoleculeError::Internal("malformed executor reply".to_owned()))?;
        if let ExecutorReply::Failed { reason } = &reply {
            return Err(MoleculeError::Internal(format!("executor failed: {reason}")));
        }
        Ok(reply)
    }

    /// Fault-tolerant [`call`](Self::call): the command carries an
    /// idempotency key, the reply wait is bounded by `timeout`, and a lost
    /// command or reply triggers a bounded re-send under the cluster's retry
    /// policy. The key makes re-sends exactly-once on the executor side (so
    /// a re-issued `Cfork` never starts a second instance), and the executor
    /// echoes it in the reply, so a straggling reply from an earlier
    /// timed-out call is discarded rather than mistaken for this one's.
    ///
    /// # Errors
    ///
    /// [`MoleculeError::PuUnavailable`] when the executor's PU is dead or
    /// stays unresponsive past every retry; other shim/protocol errors as
    /// [`call`](Self::call).
    pub fn call_ft(
        &self,
        ctx: &mut ProcCtx,
        command: ExecutorCommand,
        timeout: SimDuration,
    ) -> Result<ExecutorReply, MoleculeError> {
        use xpu_shim::error::ShimError;
        // Drop replies orphaned by earlier timeouts or duplicated delivery;
        // the key match below catches any straggler still in flight.
        while self.reply_fifo.try_read(ctx).is_ok() {}
        let key = self.cluster.fresh_idempotency_key();
        let frame = command.encode_keyed(key, ctx.trace_ctx());
        let attempts = self.cluster.config().retry.max_attempts.max(1);
        let t0 = ctx.now();
        for attempt in 0..attempts {
            match self.command_writer.write_with_retry(ctx, frame.clone()) {
                Ok(()) => {}
                Err(ShimError::PeerDead(pu)) => return Err(MoleculeError::PuUnavailable(pu)),
                Err(e) if e.is_retryable() && attempt + 1 < attempts => continue,
                Err(e) => return Err(e.into()),
            }
            let deadline = ctx.now() + timeout;
            // Wait out this attempt's window, discarding replies whose key
            // does not echo this command's (stragglers from timed-out calls
            // or duplicated deliveries).
            loop {
                if ctx.now() >= deadline {
                    telemetry::with(|r| r.metrics().counter_add("executor.call_retries", 1));
                    break;
                }
                match self.reply_fifo.read_timeout(ctx, deadline - ctx.now()) {
                    Ok(raw) => {
                        let (reply, rkey) = ExecutorReply::decode_framed(raw).ok_or_else(|| {
                            MoleculeError::Internal("malformed executor reply".to_owned())
                        })?;
                        if rkey != Some(key) {
                            telemetry::with(|r| {
                                r.metrics().counter_add("executor.stale_replies", 1);
                            });
                            continue;
                        }
                        telemetry::with(|r| {
                            r.metrics().counter_add("executor.calls", 1);
                            r.metrics().observe_ns("executor.call_ns", (ctx.now() - t0).as_nanos());
                        });
                        if let ExecutorReply::Failed { reason } = &reply {
                            return Err(MoleculeError::Internal(format!(
                                "executor failed: {reason}"
                            )));
                        }
                        return Ok(reply);
                    }
                    Err(ShimError::FifoTimeout) => {
                        telemetry::with(|r| r.metrics().counter_add("executor.call_retries", 1));
                        break;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
        Err(MoleculeError::PuUnavailable(self.pu))
    }

    /// Sends several commands as **one** vectorized nIPC frame — a single
    /// `xfifo_write`, so the whole batch shares one XPUcall/doorbell — and
    /// waits for every reply. Each command carries its own idempotency key;
    /// the executor unpacks the frame and serves each sub-command through
    /// the same dedup path as a lone [`call_ft`](Self::call_ft), so
    /// exactly-once semantics survive batching, re-sends and duplicated
    /// delivery. Unanswered commands are re-sent (only the missing subset,
    /// re-packed as a fresh batch) under the cluster's retry policy.
    ///
    /// Replies come back in command order. Per-command failures surface as
    /// [`ExecutorReply::Failed`] entries rather than failing the batch.
    ///
    /// # Errors
    ///
    /// [`MoleculeError::PuUnavailable`] when the executor's PU is dead or
    /// some command stays unanswered past every retry; shim/protocol errors
    /// as [`call`](Self::call).
    pub fn call_batch(
        &self,
        ctx: &mut ProcCtx,
        commands: &[ExecutorCommand],
        timeout: SimDuration,
    ) -> Result<Vec<ExecutorReply>, MoleculeError> {
        use xpu_shim::error::ShimError;
        if commands.is_empty() {
            return Ok(Vec::new());
        }
        // Drop replies orphaned by earlier timeouts or duplicated delivery.
        while self.reply_fifo.try_read(ctx).is_ok() {}
        let keys: Vec<u64> =
            commands.iter().map(|_| self.cluster.fresh_idempotency_key()).collect();
        let frames: Vec<Bytes> =
            commands.iter().zip(&keys).map(|(c, &k)| c.encode_keyed(k, ctx.trace_ctx())).collect();
        let attempts = self.cluster.config().retry.max_attempts.max(1);
        let mut replies: std::collections::HashMap<u64, ExecutorReply> =
            std::collections::HashMap::new();
        let t0 = ctx.now();
        for attempt in 0..attempts {
            // Re-send only what is still unanswered, re-packed as one frame.
            let missing: Vec<Bytes> = keys
                .iter()
                .zip(&frames)
                .filter(|(k, _)| !replies.contains_key(k))
                .map(|(_, f)| f.clone())
                .collect();
            match self.command_writer.write_with_retry(ctx, encode_batch(&missing)) {
                Ok(()) => {}
                Err(ShimError::PeerDead(pu)) => return Err(MoleculeError::PuUnavailable(pu)),
                Err(e) if e.is_retryable() && attempt + 1 < attempts => continue,
                Err(e) => return Err(e.into()),
            }
            let deadline = ctx.now() + timeout;
            while replies.len() < commands.len() && ctx.now() < deadline {
                match self.reply_fifo.read_timeout(ctx, deadline - ctx.now()) {
                    Ok(raw) => {
                        let (reply, rkey) = ExecutorReply::decode_framed(raw).ok_or_else(|| {
                            MoleculeError::Internal("malformed executor reply".to_owned())
                        })?;
                        match rkey {
                            Some(k) if keys.contains(&k) => {
                                replies.insert(k, reply);
                            }
                            _ => telemetry::with(|r| {
                                r.metrics().counter_add("executor.stale_replies", 1);
                            }),
                        }
                    }
                    Err(ShimError::FifoTimeout) => break,
                    Err(e) => return Err(e.into()),
                }
            }
            if replies.len() == commands.len() {
                break;
            }
            telemetry::with(|r| r.metrics().counter_add("executor.call_retries", 1));
        }
        if replies.len() < commands.len() {
            return Err(MoleculeError::PuUnavailable(self.pu));
        }
        telemetry::with(|r| {
            r.complete_span(
                ctx.lane(),
                t0.as_nanos(),
                ctx.now().as_nanos(),
                &format!("executor:call_batch pu{} n={}", self.pu.0, commands.len()),
                ctx.trace_ctx(),
            );
            r.metrics().counter_add("executor.calls", commands.len() as u64);
            r.metrics().counter_add("executor.batched_calls", commands.len() as u64);
            r.metrics().observe_ns("executor.call_ns", (ctx.now() - t0).as_nanos());
        });
        let mut out = Vec::with_capacity(commands.len());
        for k in &keys {
            out.push(replies.remove(k).expect("every key answered"));
        }
        Ok(out)
    }

    /// Liveness probe with a deadline: true iff the executor answered the
    /// ping within `timeout`.
    pub fn ping(&self, ctx: &mut ProcCtx, timeout: SimDuration) -> bool {
        matches!(self.call_ft(ctx, ExecutorCommand::Ping, timeout), Ok(ExecutorReply::Pong))
    }

    /// Convenience: cfork `func` on the executor's PU and return the
    /// instance with its remote startup latency.
    ///
    /// # Errors
    ///
    /// Same as [`call`](Self::call).
    pub fn cfork(
        &self,
        ctx: &mut ProcCtx,
        func: &FuncId,
    ) -> Result<(InstanceId, SimDuration), MoleculeError> {
        match self.call(ctx, ExecutorCommand::Cfork { func: func.clone() })? {
            ExecutorReply::Started { instance, startup_ns } => {
                Ok((InstanceId(instance), SimDuration::from_nanos(startup_ns)))
            }
            other => Err(MoleculeError::Internal(format!("unexpected reply {other:?}"))),
        }
    }

    /// Stops the executor loop.
    ///
    /// # Errors
    ///
    /// Same as [`call`](Self::call).
    pub fn shutdown(&self, ctx: &mut ProcCtx) -> Result<(), MoleculeError> {
        match self.call(ctx, ExecutorCommand::Shutdown)? {
            ExecutorReply::ShuttingDown => Ok(()),
            other => Err(MoleculeError::Internal(format!("unexpected reply {other:?}"))),
        }
    }
}

/// Whether the serve loop keeps going after handling one command frame.
enum Served {
    Continue,
    Stop,
}

/// Serves one command frame: decode, dedup against the served-reply cache,
/// execute, reply. Shared by the single-frame path and the vectorized-batch
/// path, so exactly-once semantics are identical under batching.
fn serve_one(
    molecule: &Molecule,
    ectx: &mut ProcCtx,
    pu: PuId,
    reply_writer: &XpuFifoWriter,
    served: &mut ReplyCache,
    raw: Bytes,
) -> Served {
    let Some((command, span, key)) = ExecutorCommand::decode_framed(raw) else {
        let _ = reply_writer
            .write(ectx, ExecutorReply::Failed { reason: "malformed command".to_owned() }.encode());
        return Served::Continue;
    };
    if let Some(k) = key {
        if let Some(cached) = served.get(k) {
            telemetry::with(|r| r.metrics().counter_add("executor.dup_commands", 1));
            return match reply_writer.write(ectx, cached.clone()) {
                Ok(()) => Served::Continue,
                Err(_) => Served::Stop,
            };
        }
    }
    // Adopt the manager's frame-embedded context: commands served here show
    // up under the manager's request trace.
    if span.is_some() {
        ectx.set_trace_ctx(span);
    }
    let reply = match command {
        ExecutorCommand::Ping => ExecutorReply::Pong,
        ExecutorCommand::Shutdown => {
            let ack = match key {
                Some(k) => ExecutorReply::ShuttingDown.encode_keyed(k),
                None => ExecutorReply::ShuttingDown.encode(),
            };
            let _ = reply_writer.write(ectx, ack);
            return Served::Stop;
        }
        ExecutorCommand::Cfork { func } => {
            // Executors run the *local* startup path; the manager already
            // paid the nIPC hop to reach us.
            start_and_report(molecule, ectx, &func, pu, StartupKind::CforkLocal)
        }
        ExecutorCommand::ColdStart { func } => {
            start_and_report(molecule, ectx, &func, pu, StartupKind::ColdBaseline)
        }
        ExecutorCommand::Retire { instance } => {
            match molecule.retire_instance(ectx, InstanceId(instance)) {
                Ok(()) => ExecutorReply::Retired,
                Err(e) => ExecutorReply::Failed { reason: e.to_string() },
            }
        }
    };
    let encoded = match key {
        Some(k) => reply.encode_keyed(k),
        None => reply.encode(),
    };
    if let Some(k) = key {
        served.insert(k, encoded.clone());
    }
    match reply_writer.write(ectx, encoded) {
        Ok(()) => Served::Continue,
        Err(_) => Served::Stop,
    }
}

/// Starts an instance on the executor's PU and packages the outcome as a
/// wire reply.
fn start_and_report(
    molecule: &Molecule,
    ectx: &mut ProcCtx,
    func: &FuncId,
    pu: PuId,
    how: StartupKind,
) -> ExecutorReply {
    let t0 = ectx.now();
    match molecule.start_instance(ectx, func, pu, how) {
        Ok(report) => ExecutorReply::Started {
            instance: report.instance.0,
            startup_ns: (ectx.now() - t0).as_nanos(),
        },
        Err(e) => ExecutorReply::Failed { reason: e.to_string() },
    }
}

/// Launches a *live* executor on `pu`: xSpawns the executor process, wires
/// command/reply XPU-FIFOs with exactly the needed capabilities, and returns
/// the manager-side handle.
///
/// The executor serves commands using the local `runc` until told to shut
/// down. All control traffic flows over nIPC and pays its measured costs.
///
/// # Errors
///
/// Shim failures (unknown PU, capability errors).
pub fn launch_executor(
    molecule: &Molecule,
    ctx: &mut ProcCtx,
    pu: PuId,
) -> Result<ExecutorHandle, MoleculeError> {
    let cluster = molecule.cluster().clone();
    let host = molecule.machine().host_cpu();
    let manager_shim = cluster.shim_on(host)?;
    let manager = manager_shim.attach_process();

    // The manager owns the reply FIFO; the executor owns the command FIFO.
    let reply_fifo = manager_shim.xfifo_init(ctx, manager, format!("exec-reply-{}", pu.raw()))?;
    let reply_uuid = reply_fifo.uuid().clone();
    let reply_obj = reply_fifo.obj();

    let exec_shim = cluster.shim_on(pu)?;
    let exec_pid = exec_shim.attach_process();
    let command_fifo = exec_shim.xfifo_init(ctx, exec_pid, format!("exec-cmd-{}", pu.raw()))?;
    let command_uuid = command_fifo.uuid().clone();
    manager_shim.grant_cap(ctx, manager, exec_pid, reply_obj, Perm::WRITE)?;
    exec_shim.grant_cap(ctx, exec_pid, manager, command_fifo.obj(), Perm::WRITE)?;

    let molecule_for_exec = molecule.clone();
    let cluster_for_exec = cluster.clone();
    let reply_uuid_for_exec: GlobalUuid = reply_uuid;
    manager_shim.xspawn(ctx, manager, pu, "molecule-executor", &[], move |ectx, _pid| {
        let shim = cluster_for_exec.shim_on(pu).expect("executor PU exists");
        let reply_writer =
            shim.xfifo_connect(ectx, exec_pid, &reply_uuid_for_exec).expect("reply fifo granted");
        // Keyed commands already served, with their replies: a duplicated or
        // re-sent command replays the cached reply instead of re-executing
        // (exactly-once under at-least-once delivery). Bounded: keys are
        // handed out monotonically and call_ft drains stragglers, so entries
        // far behind the newest key can never be replayed again.
        const SERVED_CACHE_CAP: usize = 128;
        let mut served = ReplyCache::new(SERVED_CACHE_CAP);
        loop {
            let Ok(raw) = command_fifo.read(ectx) else { return };
            // Command backlog still buffered behind the one just taken: the
            // executor-side view of queueing pressure on this PU.
            telemetry::with(|r| {
                r.metrics().gauge_set(
                    &format!("executor.pu{}.cmd_backlog", pu.0),
                    command_fifo.pending() as i64,
                );
            });
            // A vectorized frame carries several commands behind one
            // doorbell; each sub-frame goes through the same dedup/reply
            // path as a lone command.
            let frames = match decode_batch(&raw) {
                Some(frames) => {
                    telemetry::with(|r| r.metrics().counter_add("executor.batch_frames", 1));
                    frames
                }
                None => vec![raw],
            };
            for frame in frames {
                match serve_one(&molecule_for_exec, ectx, pu, &reply_writer, &mut served, frame) {
                    Served::Continue => {}
                    Served::Stop => return,
                }
            }
        }
    })?;

    let command_writer = manager_shim.xfifo_connect(ctx, manager, &command_uuid)?;
    Ok(ExecutorHandle { pu, cluster, command_writer, reply_fifo })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionDef;
    use crate::runtime::MoleculeConfig;
    use hetsim::engine::Simulation;
    use hetsim::pu::PuKind;
    use hetsim::topology::Machine;
    use vsandbox::spec::LangRuntime;

    #[test]
    fn command_and_reply_codecs_roundtrip() {
        let commands = [
            ExecutorCommand::Ping,
            ExecutorCommand::Cfork { func: FuncId::new("image-resize") },
            ExecutorCommand::ColdStart { func: FuncId::new("x") },
            ExecutorCommand::Retire { instance: 42 },
            ExecutorCommand::Shutdown,
        ];
        for c in commands {
            assert_eq!(ExecutorCommand::decode(c.encode()), Some(c));
        }
        let replies = [
            ExecutorReply::Pong,
            ExecutorReply::Started { instance: 7, startup_ns: 6_400_000 },
            ExecutorReply::Retired,
            ExecutorReply::Failed { reason: "no template".to_owned() },
            ExecutorReply::ShuttingDown,
        ];
        for r in replies {
            assert_eq!(ExecutorReply::decode(r.encode()), Some(r));
        }
    }

    #[test]
    fn keyed_frames_roundtrip_and_interop_with_traced() {
        let cmd = ExecutorCommand::Cfork { func: FuncId::new("img") };
        let keyed = cmd.encode_keyed(0xDEAD_BEEF, None);
        assert_eq!(
            ExecutorCommand::decode_framed(keyed),
            Some((cmd.clone(), None, Some(0xDEAD_BEEF)))
        );
        // Un-keyed traced frames still decode through the same path.
        let traced = cmd.encode_traced(None);
        assert_eq!(ExecutorCommand::decode_framed(traced.clone()), Some((cmd.clone(), None, None)));
        assert_eq!(ExecutorCommand::decode_traced(traced), Some((cmd, None)));
    }

    #[test]
    fn keyed_replies_echo_the_command_key() {
        let reply = ExecutorReply::Started { instance: 7, startup_ns: 1 };
        let keyed = reply.encode_keyed(0xABCD);
        assert_eq!(ExecutorReply::decode_framed(keyed), Some((reply.clone(), Some(0xABCD))));
        // Plain frames decode through the same path, key-less.
        assert_eq!(ExecutorReply::decode_framed(reply.encode()), Some((reply, None)));
        // A truncated keyed frame is malformed, not misread as plain.
        let cut = ExecutorReply::Pong.encode_keyed(9).slice(0..5);
        assert_eq!(ExecutorReply::decode_framed(cut), None);
    }

    #[test]
    fn reply_cache_dedups_exactly_at_the_eviction_boundary() {
        // Regression for the fixed-capacity ring: with capacity N, a key
        // must stay cached through the next N-1 inserts and be gone after
        // the Nth — off-by-one here would either break dedup (evict too
        // early) or let the cache grow unbounded.
        let cap = 128;
        let mut cache = ReplyCache::new(cap);
        cache.insert(1, Bytes::from_static(b"first"));
        for k in 2..(cap as u64 + 1) {
            cache.insert(k, Bytes::from_static(b"filler"));
            assert!(cache.get(1).is_some(), "key 1 evicted early at insert {k}");
        }
        assert_eq!(cache.len(), cap);
        // The (N+1)th distinct key pushes the oldest out — and only it.
        cache.insert(cap as u64 + 1, Bytes::from_static(b"overflow"));
        assert!(cache.get(1).is_none(), "oldest key must be evicted");
        assert!(cache.get(2).is_some(), "second-oldest must survive");
        assert_eq!(cache.len(), cap);
        // Refreshing an existing key must not evict anything.
        cache.insert(2, Bytes::from_static(b"refreshed"));
        assert_eq!(cache.len(), cap);
        assert_eq!(cache.get(2).map(|b| &b[..]), Some(&b"refreshed"[..]));
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn batch_frames_roundtrip_and_reject_garbage() {
        let frames = vec![
            ExecutorCommand::Ping.encode_keyed(1, None),
            ExecutorCommand::Cfork { func: FuncId::new("img") }.encode_keyed(2, None),
            ExecutorCommand::Retire { instance: 9 }.encode_keyed(3, None),
        ];
        let packed = encode_batch(&frames);
        assert_eq!(decode_batch(&packed), Some(frames.clone()));
        // A lone command frame is not a batch.
        assert_eq!(decode_batch(&frames[0]), None);
        // Truncated batches are malformed, never partially decoded.
        for cut in 1..packed.len() {
            assert_eq!(decode_batch(&packed.slice(0..cut)), None, "truncated at {cut}");
        }
        assert_eq!(decode_batch(&encode_batch(&[])), Some(Vec::new()));
    }

    #[test]
    fn truncated_frames_decode_to_none() {
        let frame = ExecutorCommand::Cfork { func: FuncId::new("abcdef") }.encode();
        for cut in 1..frame.len() {
            assert_eq!(ExecutorCommand::decode(frame.slice(0..cut)), None, "truncated at {cut}");
        }
        assert_eq!(ExecutorCommand::decode(Bytes::from_static(&[99])), None);
        assert_eq!(ExecutorReply::decode(Bytes::new()), None);
    }

    fn molecule() -> Molecule {
        let m = Molecule::launch(Machine::paper_cpu_dpu_server(), MoleculeConfig::default());
        m.register_function(
            FunctionDef::builder("img", LangRuntime::Python)
                .profiles(&[PuKind::Cpu, PuKind::Dpu])
                .exec_ms(5.0)
                .build(),
        );
        m
    }

    #[test]
    fn live_executor_serves_cfork_over_nipc() {
        let m = molecule();
        let mut sim = Simulation::new();
        let m2 = m.clone();
        let out = sim.spawn("manager", move |ctx| {
            m2.bootstrap(ctx).unwrap(); // pre-initializes function containers
            m2.prepare_template(ctx, PuId(1), LangRuntime::Python).unwrap();
            let exec = launch_executor(&m2, ctx, PuId(1)).unwrap();
            assert_eq!(exec.call(ctx, ExecutorCommand::Ping).unwrap(), ExecutorReply::Pong);
            let t0 = ctx.now();
            let (instance, remote_startup) = exec.cfork(ctx, &"img".into()).unwrap();
            let end_to_end = ctx.now() - t0;
            exec.shutdown(ctx).unwrap();
            (instance, remote_startup, end_to_end)
        });
        sim.run().unwrap();
        let (instance, remote_startup, end_to_end) = out.take_result().unwrap();
        assert_eq!(m.instance_pu(instance), Some(PuId(1)));
        // The remote (executor-side) startup is the BF-1 cfork (~40ms); the
        // manager additionally pays two nIPC hops.
        assert!((35.0..=45.0).contains(&remote_startup.as_millis_f64()));
        assert!(end_to_end > remote_startup);
        let overhead = (end_to_end - remote_startup).as_micros_f64();
        assert!((10.0..=500.0).contains(&overhead), "nIPC command+reply overhead was {overhead}us");
    }

    #[test]
    fn cold_start_command_uses_the_baseline_path() {
        let m = molecule();
        let mut sim = Simulation::new();
        let out = sim.spawn("manager", move |ctx| {
            m.prepare_template(ctx, PuId(1), LangRuntime::Python).unwrap();
            let exec = launch_executor(&m, ctx, PuId(1)).unwrap();
            let cold = match exec
                .call(ctx, ExecutorCommand::ColdStart { func: FuncId::new("img") })
                .unwrap()
            {
                ExecutorReply::Started { startup_ns, .. } => startup_ns,
                other => panic!("unexpected {other:?}"),
            };
            let (_, cfork) = exec.cfork(ctx, &"img".into()).unwrap();
            exec.shutdown(ctx).unwrap();
            (cold, cfork.as_nanos())
        });
        sim.run().unwrap();
        let (cold, cfork) = out.take_result().unwrap();
        // BF-1 baseline boot (~1.1s) dwarfs the cfork (~40-280ms without a
        // warm preinit pool).
        assert!(cold > 1_000_000_000, "cold start {cold}ns");
        assert!(cfork < cold / 3, "cfork {cfork}ns vs cold {cold}ns");
    }

    #[test]
    fn executor_reports_failures_without_dying() {
        let m = molecule();
        let mut sim = Simulation::new();
        let out = sim.spawn("manager", move |ctx| {
            // No template prepared: the cfork must fail but the executor
            // must keep serving.
            let exec = launch_executor(&m, ctx, PuId(1)).unwrap();
            let err = exec.cfork(ctx, &"img".into()).unwrap_err();
            let pong = exec.call(ctx, ExecutorCommand::Ping).unwrap();
            exec.shutdown(ctx).unwrap();
            (err, pong)
        });
        sim.run().unwrap();
        let (err, pong) = out.take_result().unwrap();
        assert!(matches!(err, MoleculeError::Internal(_)));
        assert_eq!(pong, ExecutorReply::Pong);
    }

    #[test]
    fn call_ft_resends_after_a_dropped_command() {
        let m = molecule();
        let mut sim = Simulation::new();
        let m2 = m.clone();
        sim.spawn("manager", move |ctx| {
            let exec = launch_executor(&m2, ctx, PuId(1)).unwrap();
            let machine = m2.machine().clone();
            // Every host->DPU frame vanishes on the wire (the shim still
            // reports a successful fire-and-forget send) until the healer
            // clears the fault mid-call.
            machine.fault_plane().set_fifo_loss(ctx.now(), PuId(0), PuId(1), 1.0);
            let plane_machine = machine.clone();
            ctx.spawn("healer", move |hctx| {
                hctx.sleep(SimDuration::from_micros(500));
                plane_machine.fault_plane().set_fifo_loss(hctx.now(), PuId(0), PuId(1), 0.0);
            });
            let reply =
                exec.call_ft(ctx, ExecutorCommand::Ping, SimDuration::from_millis(1)).unwrap();
            assert_eq!(reply, ExecutorReply::Pong, "the re-sent command reached the executor");
            exec.shutdown(ctx).unwrap();
        });
        sim.run().unwrap();
        assert!(m.cluster().stats().dropped_messages >= 1, "the first attempt was dropped");
    }

    #[test]
    fn call_ft_discards_stale_replies_by_key() {
        let m = molecule();
        let mut sim = Simulation::new();
        let m2 = m.clone();
        sim.spawn("manager", move |ctx| {
            m2.bootstrap(ctx).unwrap();
            m2.prepare_template(ctx, PuId(1), LangRuntime::Python).unwrap();
            let exec = launch_executor(&m2, ctx, PuId(1)).unwrap();
            // A timeout shorter than the nIPC round trip: every attempt's
            // Pong is still in flight when the call gives up, leaving
            // stragglers the next call must not mistake for its own reply.
            let err =
                exec.call_ft(ctx, ExecutorCommand::Ping, SimDuration::from_nanos(1)).unwrap_err();
            assert!(matches!(err, MoleculeError::PuUnavailable(_)), "got {err:?}");
            let reply = exec
                .call_ft(
                    ctx,
                    ExecutorCommand::Cfork { func: FuncId::new("img") },
                    SimDuration::from_millis(100),
                )
                .unwrap();
            assert!(
                matches!(reply, ExecutorReply::Started { .. }),
                "stale Pong accepted as the Cfork reply: {reply:?}"
            );
            exec.shutdown(ctx).unwrap();
        });
        sim.run().unwrap();
    }

    #[test]
    fn call_batch_serves_every_command_in_order_over_one_frame() {
        let m = molecule();
        let mut sim = Simulation::new();
        let m2 = m.clone();
        sim.spawn("manager", move |ctx| {
            m2.bootstrap(ctx).unwrap();
            m2.prepare_template(ctx, PuId(1), LangRuntime::Python).unwrap();
            let exec = launch_executor(&m2, ctx, PuId(1)).unwrap();
            let before = m2.cluster().stats().xpucalls;
            let replies = exec
                .call_batch(
                    ctx,
                    &[
                        ExecutorCommand::Ping,
                        ExecutorCommand::Cfork { func: FuncId::new("img") },
                        ExecutorCommand::Ping,
                    ],
                    SimDuration::from_millis(500),
                )
                .unwrap();
            let writer_xcalls = m2.cluster().stats().xpucalls - before;
            assert_eq!(replies.len(), 3);
            assert_eq!(replies[0], ExecutorReply::Pong);
            assert!(matches!(replies[1], ExecutorReply::Started { .. }), "{:?}", replies[1]);
            assert_eq!(replies[2], ExecutorReply::Pong);
            // One vectorized frame = one command-side xfifo_write = one
            // XPUcall, instead of three command writes (replies still pay
            // their own writes on the executor side).
            assert!(
                writer_xcalls <= 4,
                "batch should collapse command xcalls, saw {writer_xcalls}"
            );
            exec.shutdown(ctx).unwrap();
        });
        sim.run().unwrap();
        assert_eq!(m.instance_count(), 1);
    }

    #[test]
    fn exactly_once_survives_batching_under_duplicated_delivery() {
        let m = molecule();
        let mut sim = Simulation::new();
        let m2 = m.clone();
        sim.spawn("manager", move |ctx| {
            m2.bootstrap(ctx).unwrap();
            m2.prepare_template(ctx, PuId(1), LangRuntime::Python).unwrap();
            let exec = launch_executor(&m2, ctx, PuId(1)).unwrap();
            // Every host->DPU frame is delivered twice: the executor sees the
            // whole batch again and must replay cached replies, not re-run.
            m2.machine().fault_plane().set_fifo_dup(ctx.now(), PuId(0), PuId(1), 1.0);
            let replies = exec
                .call_batch(
                    ctx,
                    &[ExecutorCommand::Cfork { func: FuncId::new("img") }, ExecutorCommand::Ping],
                    SimDuration::from_millis(500),
                )
                .unwrap();
            assert!(matches!(replies[0], ExecutorReply::Started { .. }));
            m2.machine().fault_plane().set_fifo_dup(ctx.now(), PuId(0), PuId(1), 0.0);
            exec.shutdown(ctx).unwrap();
        });
        sim.run().unwrap();
        assert_eq!(m.instance_count(), 1, "the duplicated Cfork must not start a second instance");
        assert!(m.cluster().stats().duplicated_messages >= 1, "the fault actually fired");
    }

    #[test]
    fn retire_round_trips_through_the_executor() {
        let m = molecule();
        let mut sim = Simulation::new();
        let m2 = m.clone();
        sim.spawn("manager", move |ctx| {
            m2.prepare_template(ctx, PuId(1), LangRuntime::Python).unwrap();
            let exec = launch_executor(&m2, ctx, PuId(1)).unwrap();
            let (instance, _) = exec.cfork(ctx, &"img".into()).unwrap();
            assert_eq!(m2.instance_count(), 1);
            let reply = exec.call(ctx, ExecutorCommand::Retire { instance: instance.0 }).unwrap();
            assert_eq!(reply, ExecutorReply::Retired);
            assert_eq!(m2.instance_count(), 0);
            exec.shutdown(ctx).unwrap();
        });
        sim.run().unwrap();
    }
}
