//! Baseline systems (paper §6, "Compared systems").
//!
//! * **Molecule-homo** — the homogeneous version of Molecule: no XPU-Shim
//!   (single-PU only), no cfork (cold container boots), Express/Flask HTTP
//!   for DAG communication. In this codebase Molecule-homo is not a separate
//!   runtime but the combination of
//!   [`StartupKind::ColdBaseline`](crate::runtime::StartupKind) and
//!   [`CommMethod::HttpGateway`](crate::dag::CommMethod) — it shares every
//!   other code path with Molecule, so each figure isolates exactly the
//!   mechanism the paper ablates.
//! * **AWS Lambda / OpenWhisk** — commercial systems, represented by their
//!   published Fig. 9 bar heights in the calibration table.

use hetsim::calib::Calibration;
use hetsim::time::SimDuration;

/// Fig. 9 comparison: startup and communication latency of the four systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommercialComparison {
    /// AWS Lambda cold start (helloworld).
    pub aws_startup: SimDuration,
    /// OpenWhisk cold start.
    pub openwhisk_startup: SimDuration,
    /// Molecule-homo cold start.
    pub homo_startup: SimDuration,
    /// Molecule cold start (cfork, incl. the cross-PU path).
    pub molecule_startup: SimDuration,
    /// AWS Step Functions hop.
    pub aws_comm: SimDuration,
    /// OpenWhisk hop.
    pub openwhisk_comm: SimDuration,
    /// Molecule-homo hop (Express).
    pub homo_comm: SimDuration,
    /// Molecule hop (IPC/nIPC).
    pub molecule_comm: SimDuration,
}

impl CommercialComparison {
    /// Builds the comparison from the calibration's commercial constants and
    /// measured Molecule/homo values.
    pub fn new(
        calib: &Calibration,
        homo_startup: SimDuration,
        molecule_startup: SimDuration,
        homo_comm: SimDuration,
        molecule_comm: SimDuration,
    ) -> CommercialComparison {
        CommercialComparison {
            aws_startup: calib.commercial.aws_lambda_startup,
            openwhisk_startup: calib.commercial.openwhisk_startup,
            homo_startup,
            molecule_startup,
            aws_comm: calib.commercial.aws_lambda_comm,
            openwhisk_comm: calib.commercial.openwhisk_comm,
            homo_comm,
            molecule_comm,
        }
    }

    /// Molecule's startup improvement over (AWS, OpenWhisk) — the paper
    /// reports 37-46x.
    pub fn molecule_startup_speedup(&self) -> (f64, f64) {
        (
            self.aws_startup.ratio(self.molecule_startup),
            self.openwhisk_startup.ratio(self.molecule_startup),
        )
    }

    /// Molecule-homo's startup improvement over (AWS, OpenWhisk) — the paper
    /// reports 5-6x.
    pub fn homo_startup_speedup(&self) -> (f64, f64) {
        (self.aws_startup.ratio(self.homo_startup), self.openwhisk_startup.ratio(self.homo_startup))
    }

    /// Molecule's communication improvement over (AWS, OpenWhisk) — the
    /// paper reports 68-300x.
    pub fn molecule_comm_speedup(&self) -> (f64, f64) {
        (self.aws_comm.ratio(self.molecule_comm), self.openwhisk_comm.ratio(self.molecule_comm))
    }

    /// Molecule-homo's communication improvement over (AWS, OpenWhisk) —
    /// the paper reports 4-19x.
    pub fn homo_comm_speedup(&self) -> (f64, f64) {
        (self.aws_comm.ratio(self.homo_comm), self.openwhisk_comm.ratio(self.homo_comm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comparison() -> CommercialComparison {
        // Measured values representative of the model: homo = container
        // create + node boot for helloworld; molecule = cfork + XPU path.
        CommercialComparison::new(
            &Calibration::paper_server(),
            SimDuration::from_millis_f64(85.55),
            SimDuration::from_millis_f64(10.4),
            SimDuration::from_millis_f64(3.8),
            SimDuration::from_micros(230),
        )
    }

    #[test]
    fn startup_speedups_land_in_paper_bands() {
        let c = comparison();
        let (aws, ow) = c.molecule_startup_speedup();
        assert!((35.0..=48.0).contains(&aws), "AWS speedup {aws}");
        assert!((35.0..=48.0).contains(&ow), "OpenWhisk speedup {ow}");
        let (h_aws, h_ow) = c.homo_startup_speedup();
        assert!((4.0..=7.0).contains(&h_aws), "homo AWS speedup {h_aws}");
        assert!((4.0..=7.0).contains(&h_ow), "homo OpenWhisk speedup {h_ow}");
    }

    #[test]
    fn comm_speedups_land_in_paper_bands() {
        let c = comparison();
        let (aws, ow) = c.molecule_comm_speedup();
        assert!((68.0..=320.0).contains(&aws), "AWS comm speedup {aws}");
        assert!((60.0..=90.0).contains(&ow), "OpenWhisk comm speedup {ow}");
        let (h_aws, h_ow) = c.homo_comm_speedup();
        assert!((4.0..=19.0).contains(&h_ow), "homo OpenWhisk comm speedup {h_ow}");
        assert!(h_aws > h_ow);
    }

    #[test]
    fn ordering_matches_fig9() {
        let c = comparison();
        assert!(c.molecule_startup < c.homo_startup);
        assert!(c.homo_startup < c.aws_startup);
        assert!(c.molecule_comm < c.homo_comm);
        assert!(c.homo_comm < c.openwhisk_comm);
        assert!(c.openwhisk_comm < c.aws_comm);
    }
}
