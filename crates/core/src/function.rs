//! Function definitions, execution models and the function registry.
//!
//! Molecule's programming model (paper §4.1): developers upload a function
//! per language runtime; users explicitly pick resources and the *kinds* of
//! PU the function may run on (its profiles), and the platform schedules
//! among them. An FPGA profile additionally carries the synthesized kernel
//! and its device-side execution time.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use hetsim::fpga::KernelSpec;
use hetsim::pu::{PuKind, PuSpec};
use hetsim::time::SimDuration;
use molecule_tenancy::SloClass;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use vsandbox::spec::{FuncId, LangRuntime};

/// How long a function's handler runs for a given input, on the host CPU.
/// Actual PUs scale this by their
/// [`compute_factor`](hetsim::pu::PuSpec::compute_factor).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExecModel {
    /// Input-independent execution time.
    Fixed(SimDuration),
    /// Affine in the input size: `base + ns_per_byte * input_bytes`.
    PerByte {
        /// Fixed component.
        base: SimDuration,
        /// Per-input-byte component, nanoseconds.
        ns_per_byte: f64,
    },
}

impl ExecModel {
    /// Host-CPU execution time for `input_bytes` of input.
    pub fn host_time(&self, input_bytes: u64) -> SimDuration {
        match *self {
            ExecModel::Fixed(d) => d,
            ExecModel::PerByte { base, ns_per_byte } => {
                base + SimDuration::from_nanos((ns_per_byte * input_bytes as f64) as u64)
            }
        }
    }

    /// Execution time on a concrete PU.
    pub fn time_on(&self, pu: &PuSpec, input_bytes: u64) -> SimDuration {
        pu.scale_compute(self.host_time(input_bytes))
    }
}

/// An FPGA deployment of a function: the synthesized kernel plus its
/// device-side execution model (FPGA kernels do not follow CPU frequency
/// scaling, so they carry their own timing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaProfile {
    /// The synthesized kernel.
    pub kernel: KernelSpec,
    /// Device-side execution model.
    pub exec: ExecModel,
}

/// A deployable serverless function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionDef {
    /// Unique function id.
    pub id: FuncId,
    /// Language runtime (Python/Node.js for CPU/DPU; OpenCL/CUDA for
    /// accelerators).
    pub lang: LangRuntime,
    /// Explicit memory reservation, MiB (§4.1: users assign resources).
    pub memory_mib: u64,
    /// PU kinds this function may run on, in user preference order.
    pub profiles: Vec<PuKind>,
    /// Handler execution model (host-CPU timescale).
    pub exec: ExecModel,
    /// One-time initialization on a cold start (imports, model loading).
    pub init: SimDuration,
    /// Extra first-invocation cost after a cfork (copy-on-write faults and
    /// cold caches; §6.6 notes cfork "will lead to more page faults").
    pub cfork_first_run: SimDuration,
    /// FPGA deployment, when an Fpga profile exists.
    pub fpga: Option<FpgaProfile>,
    /// GPU execution model, when a Gpu profile exists (§6.8: a CUDA kernel
    /// behind the runG wrapper).
    pub gpu: Option<ExecModel>,
    /// Bytes this function emits to the next function in a chain.
    pub output_bytes: u64,
    /// Named shared-state regions (`molecule-state`) the function reads or
    /// writes. Placement prefers PUs already hosting these regions' pages
    /// (the state-locality term), and stateful workloads attach them before
    /// the handler runs.
    #[serde(default)]
    pub regions: Vec<String>,
    /// Declared service-level objective. `Latency(target)` steers the
    /// placer away from cold FPGAs and deep queues and sets a default
    /// deadline; `Batch` absorbs them and is shed first under overload.
    /// `None` behaves like pre-SLO code: no placement bias, no default
    /// deadline.
    #[serde(default)]
    pub slo: Option<SloClass>,
}

impl FunctionDef {
    /// Starts building a function definition.
    pub fn builder(id: impl Into<FuncId>, lang: LangRuntime) -> FunctionBuilder {
        FunctionBuilder {
            def: FunctionDef {
                id: id.into(),
                lang,
                memory_mib: 128,
                profiles: vec![PuKind::Cpu],
                exec: ExecModel::Fixed(SimDuration::from_millis(1)),
                init: SimDuration::ZERO,
                cfork_first_run: SimDuration::ZERO,
                fpga: None,
                gpu: None,
                output_bytes: 1024,
                regions: Vec::new(),
                slo: None,
            },
        }
    }

    /// True if the function may run on PUs of `kind`.
    pub fn supports(&self, kind: PuKind) -> bool {
        self.profiles.contains(&kind)
    }
}

/// Builder for [`FunctionDef`].
#[derive(Debug)]
pub struct FunctionBuilder {
    def: FunctionDef,
}

impl FunctionBuilder {
    /// Sets the memory reservation in MiB.
    pub fn memory_mib(mut self, mib: u64) -> FunctionBuilder {
        self.def.memory_mib = mib;
        self
    }

    /// Sets the allowed PU kinds (user profile selection, §4.1).
    pub fn profiles(mut self, kinds: &[PuKind]) -> FunctionBuilder {
        self.def.profiles = kinds.to_vec();
        self
    }

    /// Sets the handler execution model.
    pub fn exec(mut self, exec: ExecModel) -> FunctionBuilder {
        self.def.exec = exec;
        self
    }

    /// Sets a fixed handler execution time.
    pub fn exec_ms(mut self, ms: f64) -> FunctionBuilder {
        self.def.exec = ExecModel::Fixed(SimDuration::from_millis_f64(ms));
        self
    }

    /// Sets the one-time cold-start initialization cost.
    pub fn init_ms(mut self, ms: f64) -> FunctionBuilder {
        self.def.init = SimDuration::from_millis_f64(ms);
        self
    }

    /// Sets the extra first-run cost after a cfork.
    pub fn cfork_first_run_ms(mut self, ms: f64) -> FunctionBuilder {
        self.def.cfork_first_run = SimDuration::from_millis_f64(ms);
        self
    }

    /// Adds an FPGA profile.
    pub fn fpga(mut self, kernel: KernelSpec, exec: ExecModel) -> FunctionBuilder {
        self.def.fpga = Some(FpgaProfile { kernel, exec });
        if !self.def.profiles.contains(&PuKind::Fpga) {
            self.def.profiles.push(PuKind::Fpga);
        }
        self
    }

    /// Adds a GPU profile (a CUDA kernel with its device-side timing).
    pub fn gpu(mut self, exec: ExecModel) -> FunctionBuilder {
        self.def.gpu = Some(exec);
        if !self.def.profiles.contains(&PuKind::Gpu) {
            self.def.profiles.push(PuKind::Gpu);
        }
        self
    }

    /// Sets the bytes emitted to the next function in a chain.
    pub fn output_bytes(mut self, bytes: u64) -> FunctionBuilder {
        self.def.output_bytes = bytes;
        self
    }

    /// Declares a shared-state region the function uses. Repeatable; the
    /// scheduler's state-locality term prefers PUs already hosting a
    /// replica of any declared region.
    pub fn region(mut self, name: impl Into<String>) -> FunctionBuilder {
        let name = name.into();
        if !self.def.regions.contains(&name) {
            self.def.regions.push(name);
        }
        self
    }

    /// Declares the function latency-sensitive with a p-target of `ms`.
    /// Submissions without an explicit deadline default to this budget and
    /// the placer penalizes cold starts and queueing for it.
    pub fn slo_latency_ms(mut self, ms: f64) -> FunctionBuilder {
        self.def.slo = Some(SloClass::Latency(SimDuration::from_millis_f64(ms)));
        self
    }

    /// Declares the function a batch job: happy to eat cold starts and
    /// queueing, and the first to be shed when a PU is overloaded.
    pub fn slo_batch(mut self) -> FunctionBuilder {
        self.def.slo = Some(SloClass::Batch);
        self
    }

    /// Finalizes the definition.
    ///
    /// # Panics
    ///
    /// Panics if an Fpga profile is listed without FPGA deployment data.
    pub fn build(self) -> FunctionDef {
        if self.def.profiles.contains(&PuKind::Fpga) {
            assert!(
                self.def.fpga.is_some(),
                "function {} lists an FPGA profile but has no kernel",
                self.def.id
            );
        }
        if self.def.profiles.contains(&PuKind::Gpu) {
            assert!(
                self.def.gpu.is_some(),
                "function {} lists a GPU profile but has no kernel timing",
                self.def.id
            );
        }
        self.def
    }
}

/// The platform's function registry (what the API gateway deploys from).
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    inner: Arc<Mutex<HashMap<FuncId, FunctionDef>>>,
}

impl fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionRegistry").field("functions", &self.inner.lock().len()).finish()
    }
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> FunctionRegistry {
        FunctionRegistry::default()
    }

    /// Registers (or replaces) a function.
    pub fn register(&self, def: FunctionDef) {
        self.inner.lock().insert(def.id.clone(), def);
    }

    /// Looks up a function.
    pub fn get(&self, id: &FuncId) -> Option<FunctionDef> {
        self.inner.lock().get(id).cloned()
    }

    /// All registered function ids, sorted.
    pub fn ids(&self) -> Vec<FuncId> {
        let mut v: Vec<FuncId> = self.inner.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::pu::PuId;

    #[test]
    fn exec_model_scales_with_pu() {
        let exec = ExecModel::Fixed(SimDuration::from_millis(100));
        let cpu = PuSpec::xeon_host(PuId(0));
        let dpu = PuSpec::bluefield1(PuId(1));
        assert_eq!(exec.time_on(&cpu, 0), SimDuration::from_millis(100));
        assert_eq!(exec.time_on(&dpu, 0), SimDuration::from_millis(620));
    }

    #[test]
    fn per_byte_model_grows_with_input() {
        let exec = ExecModel::PerByte { base: SimDuration::from_micros(10), ns_per_byte: 2.0 };
        assert_eq!(exec.host_time(0), SimDuration::from_micros(10));
        assert_eq!(exec.host_time(1000), SimDuration::from_micros(12));
    }

    #[test]
    fn builder_produces_consistent_defs() {
        let def = FunctionDef::builder("img", LangRuntime::Python)
            .memory_mib(256)
            .profiles(&[PuKind::Cpu, PuKind::Dpu])
            .exec_ms(14.1)
            .init_ms(6.3)
            .output_bytes(2048)
            .build();
        assert_eq!(def.memory_mib, 256);
        assert!(def.supports(PuKind::Dpu));
        assert!(!def.supports(PuKind::Fpga));
        assert_eq!(def.exec.host_time(0), SimDuration::from_micros(14_100));
    }

    #[test]
    fn slo_classes_ride_the_builder_and_default_to_none() {
        let plain = FunctionDef::builder("plain", LangRuntime::Python).build();
        assert_eq!(plain.slo, None);
        let lat = FunctionDef::builder("lat", LangRuntime::Python).slo_latency_ms(250.0).build();
        assert_eq!(lat.slo.and_then(|s| s.latency_target()), Some(SimDuration::from_millis(250)));
        let batch = FunctionDef::builder("bulk", LangRuntime::Python).slo_batch().build();
        assert!(batch.slo.is_some_and(|s| s.is_batch()));
    }

    #[test]
    #[should_panic(expected = "no kernel")]
    fn fpga_profile_without_kernel_panics() {
        let _ = FunctionDef::builder("bad", LangRuntime::OpenCl).profiles(&[PuKind::Fpga]).build();
    }

    #[test]
    fn registry_roundtrip() {
        let reg = FunctionRegistry::new();
        assert!(reg.is_empty());
        let def = FunctionDef::builder("a", LangRuntime::Python).build();
        reg.register(def.clone());
        reg.register(FunctionDef::builder("b", LangRuntime::NodeJs).build());
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(&"a".into()), Some(def));
        assert_eq!(reg.ids(), vec![FuncId::new("a"), FuncId::new("b")]);
        assert_eq!(reg.get(&"zzz".into()), None);
    }
}
