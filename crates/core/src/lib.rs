#![warn(missing_docs)]

//! `molecule-core` — the Molecule serverless runtime for heterogeneous
//! computers (reproduction of *Serverless Computing on Heterogeneous
//! Computers*, ASPLOS '22).
//!
//! Molecule is the paper's primary contribution: a serverless runtime that
//! manages functions across CPU, DPU, FPGA and GPU PUs through two
//! abstractions — XPU-Shim (the [`xpu_shim`] crate) and the vectorized
//! sandbox (the [`vsandbox`] crate) — and layers the serverless
//! optimizations on top:
//!
//! * [`executor`] — live per-PU executors serving cfork/retire commands
//!   over nIPC with a real wire protocol;
//! * [`runtime`] — the worker runtime: executors via `xSpawn`, template
//!   containers, the **cfork** startup paths (local and cross-PU) and FPGA
//!   instance caching;
//! * [`dag`] — function-chain communication: direct-connect XPU-FIFOs
//!   (local IPC / nIPC), the HTTP-gateway baseline, and zero-copy FPGA
//!   chains via DRAM data retention;
//! * [`schedule`] — profile selection, chain co-location and density
//!   packing;
//! * [`health`] — executor health checking, circuit breaking and
//!   crashed-PU recovery (reclamation, purge, failover, degradation);
//! * [`keepalive`] — Fixed-window / LRU / Greedy-Dual keep-alive policies
//!   with chain affinity;
//! * [`billing`] — 1 ms-granularity, PU-priced metering;
//! * [`baseline`] — Molecule-homo and the AWS Lambda / OpenWhisk models of
//!   Fig. 9;
//! * [`regions`] — the gateway's directory of shared-state region hosts,
//!   feeding the scheduler's state-locality placement term;
//! * [`metrics`] — the latency recorder with the artifact's percentile
//!   output format;
//! * [`trace`] — phase-level request tracing over virtual time.

pub mod baseline;
pub mod billing;
pub mod dag;
pub mod error;
pub mod executor;
pub mod fpga_cache;
pub mod function;
pub mod gateway;
pub mod health;
pub mod keepalive;
pub mod metrics;
pub mod proxy;
pub mod regions;
pub mod runtime;
pub mod schedule;
pub mod trace;

pub use error::MoleculeError;
pub use function::{ExecModel, FunctionDef, FunctionRegistry};
pub use gateway::{ApiGateway, GatewayConfig, GatewayStats, RequestReport};
pub use health::{CircuitState, HealthChecker, HealthPolicy, PuStatus, RecoveryReport};
pub use proxy::{ProxyClient, ProxyError, ProxyPool, ProxyPoolConfig, ProxyReply, ProxyStats};
pub use regions::RegionDirectory;
pub use runtime::{
    InstanceId, InvokeReport, Molecule, MoleculeConfig, PurgeReport, StartupKind, StartupReport,
};
