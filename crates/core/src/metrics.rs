//! Latency recording and the percentile summaries the artifact prints.

use std::fmt;

use hetsim::time::SimDuration;

/// Collects latency samples and summarizes them the way the Molecule
/// artifact's scripts do (`avg 50% 75% 90% 95% 99%`).
///
/// # Examples
///
/// ```
/// use molecule_core::metrics::LatencyRecorder;
/// use hetsim::time::SimDuration;
///
/// let mut rec = LatencyRecorder::new("fork-startup");
/// for ms in [5, 8, 9, 9, 9] {
///     rec.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(rec.summary().p50.as_millis_f64(), 9.0);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    name: String,
    samples: Vec<SimDuration>,
}

/// Percentile summary of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub avg: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 75th percentile.
    pub p75: SimDuration,
    /// 90th percentile.
    pub p90: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// Number of samples.
    pub count: usize,
}

impl LatencyRecorder {
    /// Creates an empty recorder labelled `name`.
    pub fn new(name: impl Into<String>) -> LatencyRecorder {
        LatencyRecorder { name: name.into(), samples: Vec::new() }
    }

    /// The recorder's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a sample.
    ///
    /// The sample is also forwarded to the global [`telemetry`] metrics
    /// registry (histogram `latency.<name>`) when a recorder is installed,
    /// so bench summaries and Chrome exports see the same distributions.
    /// Percentile summaries here stay exact (sorted samples), while the
    /// telemetry histogram is log2-bucketed and mergeable.
    pub fn record(&mut self, sample: SimDuration) {
        telemetry::with(|r| {
            r.metrics().observe_ns(&format!("latency.{}", self.name), sample.as_nanos());
        });
        self.samples.push(sample);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Percentile summary of the samples so far.
    ///
    /// # Panics
    ///
    /// Panics if no samples were recorded.
    pub fn summary(&self) -> LatencySummary {
        assert!(!self.samples.is_empty(), "summary of an empty recorder");
        let mut sorted = self.samples.clone();
        sorted.sort();
        let pct = |p: f64| {
            let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        let total: SimDuration = sorted.iter().copied().sum();
        LatencySummary {
            avg: total / sorted.len() as u64,
            p50: pct(0.50),
            p75: pct(0.75),
            p90: pct(0.90),
            p95: pct(0.95),
            p99: pct(0.99),
            count: sorted.len(),
        }
    }
}

impl fmt::Display for LatencyRecorder {
    /// Formats like the artifact's output block.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.summary();
        writeln!(f, "=============== {} result ==============", self.name)?;
        writeln!(f, "latency (ms):")?;
        writeln!(f, "  avg     50%     75%     90%     95%     99%")?;
        write!(
            f,
            "  {:<7.2} {:<7.2} {:<7.2} {:<7.2} {:<7.2} {:<7.2}",
            s.avg.as_millis_f64(),
            s.p50.as_millis_f64(),
            s.p75.as_millis_f64(),
            s.p90.as_millis_f64(),
            s.p95.as_millis_f64(),
            s.p99.as_millis_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_distribution() {
        let mut rec = LatencyRecorder::new("t");
        for i in 1..=100u64 {
            rec.record(SimDuration::from_millis(i));
        }
        let s = rec.summary();
        assert_eq!(s.p50, SimDuration::from_millis(50));
        assert_eq!(s.p75, SimDuration::from_millis(75));
        assert_eq!(s.p90, SimDuration::from_millis(90));
        assert_eq!(s.p99, SimDuration::from_millis(99));
        assert_eq!(s.avg, SimDuration::from_micros(50_500));
        assert_eq!(s.count, 100);
    }

    #[test]
    fn single_sample_summary() {
        let mut rec = LatencyRecorder::new("one");
        rec.record(SimDuration::from_millis(7));
        let s = rec.summary();
        assert_eq!(s.p50, SimDuration::from_millis(7));
        assert_eq!(s.p99, SimDuration::from_millis(7));
        assert_eq!(s.avg, SimDuration::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "empty recorder")]
    fn empty_summary_panics() {
        LatencyRecorder::new("empty").summary();
    }

    #[test]
    fn display_matches_artifact_format() {
        let mut rec = LatencyRecorder::new("fork-startup");
        rec.record(SimDuration::from_millis(5));
        let text = rec.to_string();
        assert!(text.contains("fork-startup result"));
        assert!(text.contains("latency (ms):"));
        assert!(text.contains("avg"));
    }
}
