//! The Molecule serverless runtime (paper §4).
//!
//! [`Molecule`] is the worker-machine runtime: it deploys an XPU-Shim
//! cluster over the heterogeneous computer, drives one sandbox runtime per
//! PU (`runc` on CPU/DPU, `runf` on FPGAs, `runG` on GPUs), manages
//! template containers, and exposes the startup paths the paper evaluates:
//!
//! * **cold baseline** — fresh container + language-runtime boot (what
//!   Molecule-homo does);
//! * **cfork** — fork from a per-(PU, language) template container, locally
//!   or issued from a neighbouring PU over XPU-Shim ("cfork-XPU");
//! * **FPGA paths** — vectorized image caching with warm-image /
//!   warm-sandbox states.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use hetsim::engine::ProcCtx;
use hetsim::pu::{PuId, PuKind};
use hetsim::time::SimDuration;
use hetsim::topology::Machine;
use parking_lot::Mutex;
use vsandbox::oci::{OciRuntime, VectorizedRuntime};
use vsandbox::runc::{CforkOpts, RuncRuntime};
use vsandbox::runf::RunfRuntime;
use vsandbox::rung::RungRuntime;
use vsandbox::spec::{FuncId, LangRuntime, SandboxConfig, SandboxId};
use xpu_shim::cluster::{ShimCluster, ShimConfig};
use xpu_shim::id::XpuPid;

use crate::billing::{Meter, PriceTable};
use crate::error::MoleculeError;
use crate::function::{FunctionDef, FunctionRegistry};

/// How an instance is (cold-)started — the axes of Fig. 10 and Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartupKind {
    /// Fresh container + language runtime boot (the Molecule-homo baseline).
    ColdBaseline,
    /// Container fork from the local template.
    CforkLocal,
    /// Container fork requested from a neighbouring PU through XPU-Shim
    /// ("cfork-XPU": adds the nIPC command + remote coordination cost).
    CforkXpu {
        /// The PU the command is issued from.
        issued_from: PuId,
    },
    /// Restore from a pre-captured snapshot (the Replayable/Firecracker
    /// design point of Fig. 15, for ablation against cfork).
    Snapshot,
}

/// Configuration of a Molecule deployment.
#[derive(Debug, Clone)]
pub struct MoleculeConfig {
    /// XPU-Shim cluster configuration.
    pub shim: ShimConfig,
    /// Function containers pre-initialized per general-purpose PU
    /// (the "FuncContainer" optimization; 0 disables it).
    pub preinit_containers_per_pu: usize,
    /// Apply the cpuset lock kernel patch ("Cpuset opt").
    pub cpuset_patch: bool,
    /// Templates are *dedicated* (function code + dependencies preloaded),
    /// as Molecule does for hot functions (§4.2). When false, templates are
    /// generic per language and cforked children still pay the function's
    /// init cost.
    pub dedicated_templates: bool,
    /// Price table for metering.
    pub prices: PriceTable,
    /// cfork children with the dense memory profile (small private working
    /// set, most of the template kept COW-shared) — the 10k-sandboxes-per-PU
    /// configuration.
    pub dense_sandboxes: bool,
}

impl Default for MoleculeConfig {
    fn default() -> Self {
        MoleculeConfig {
            shim: ShimConfig::default(),
            preinit_containers_per_pu: 8,
            cpuset_patch: true,
            dedicated_templates: true,
            prices: PriceTable::default(),
            dense_sandboxes: false,
        }
    }
}

/// Identifier of a live function instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Instance {
    func: FunctionDef,
    pu: PuId,
    kind: PuKind,
    sandbox: SandboxId,
    /// One-time cost still owed at the first invocation (cfork page faults
    /// or deferred init).
    pending_first_run: SimDuration,
    invocations: u64,
}

/// Report of one instance start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartupReport {
    /// The started instance.
    pub instance: InstanceId,
    /// Virtual time the start took.
    pub latency: SimDuration,
}

/// What [`Molecule::purge_pu`] dropped when a PU was declared dead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PurgeReport {
    /// The purged PU.
    pub pu: PuId,
    /// Instances that lived on the PU (sorted; their sandboxes died with
    /// it).
    pub instances: Vec<InstanceId>,
    /// Template containers lost with the PU.
    pub templates: usize,
    /// Whether the PU's executor registration was dropped.
    pub executor_dropped: bool,
    /// Sandboxes the PU's `runc` book-keeping marked `Stopped`.
    pub sandboxes_reconciled: usize,
}

/// Report of one invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvokeReport {
    /// Virtual time from request hand-off to completion.
    pub latency: SimDuration,
    /// Credits billed.
    pub billed: f64,
}

struct RtState {
    templates: HashMap<(PuId, LangRuntime), SandboxId>,
    instances: HashMap<InstanceId, Instance>,
    warm: HashMap<(FuncId, PuId), Vec<InstanceId>>,
    executors: HashMap<PuId, XpuPid>,
    next_instance: u64,
    next_sandbox: u64,
    meter: Meter,
    manager: Option<XpuPid>,
}

struct MoleculeInner {
    machine: Machine,
    cluster: ShimCluster,
    config: MoleculeConfig,
    registry: FunctionRegistry,
    runcs: HashMap<PuId, RuncRuntime>,
    runfs: HashMap<PuId, RunfRuntime>,
    rungs: HashMap<PuId, RungRuntime>,
    state: Mutex<RtState>,
}

/// The Molecule runtime for one worker machine. Cheap to clone.
#[derive(Clone)]
pub struct Molecule {
    inner: Arc<MoleculeInner>,
}

impl fmt::Debug for Molecule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("Molecule")
            .field("pus", &self.inner.machine.pus().len())
            .field("functions", &self.inner.registry.len())
            .field("instances", &st.instances.len())
            .finish()
    }
}

impl Molecule {
    /// Deploys Molecule on `machine`: XPU-Shim on every general-purpose PU,
    /// `runc`/`runf`/`runG` per device. (Executors are launched by
    /// [`bootstrap`](Self::bootstrap), which needs simulation context.)
    pub fn launch(machine: Machine, config: MoleculeConfig) -> Molecule {
        let cluster = ShimCluster::deploy(machine.clone(), config.shim);
        let calib = machine.calibration().clone();
        let mut runcs = HashMap::new();
        let mut runfs = HashMap::new();
        let mut rungs = HashMap::new();
        for pu in machine.pus() {
            match pu.kind {
                PuKind::Cpu | PuKind::Dpu | PuKind::SmartNic => {
                    let os = machine.os(pu.id).expect("gp PU has an OS").clone();
                    if config.cpuset_patch {
                        os.set_cpuset_lock_mode(hetsim::os::CpusetLockMode::Mutex);
                    }
                    runcs.insert(pu.id, RuncRuntime::new(os, &calib));
                }
                PuKind::Fpga => {
                    let dev = machine.fpga(pu.id).expect("fpga device").clone();
                    runfs.insert(pu.id, RunfRuntime::new(dev));
                }
                PuKind::Gpu => {
                    let dev = machine.gpu(pu.id).expect("gpu device").clone();
                    rungs.insert(pu.id, RungRuntime::new(dev));
                }
            }
        }
        Molecule {
            inner: Arc::new(MoleculeInner {
                machine,
                cluster,
                config: config.clone(),
                registry: FunctionRegistry::new(),
                runcs,
                runfs,
                rungs,
                state: Mutex::new(RtState {
                    templates: HashMap::new(),
                    instances: HashMap::new(),
                    warm: HashMap::new(),
                    executors: HashMap::new(),
                    next_instance: 0,
                    next_sandbox: 0,
                    meter: Meter::new(config.prices),
                    manager: None,
                }),
            }),
        }
    }

    /// The machine Molecule manages.
    pub fn machine(&self) -> &Machine {
        &self.inner.machine
    }

    /// The XPU-Shim cluster.
    pub fn cluster(&self) -> &ShimCluster {
        &self.inner.cluster
    }

    /// The function registry.
    pub fn registry(&self) -> &FunctionRegistry {
        &self.inner.registry
    }

    /// The deployment configuration.
    pub fn config(&self) -> &MoleculeConfig {
        &self.inner.config
    }

    /// The `runc` runtime on a general-purpose PU.
    pub fn runc(&self, pu: PuId) -> Option<&RuncRuntime> {
        self.inner.runcs.get(&pu)
    }

    /// The `runf` runtime on an FPGA PU.
    pub fn runf(&self, pu: PuId) -> Option<&RunfRuntime> {
        self.inner.runfs.get(&pu)
    }

    /// The `runG` runtime on a GPU PU.
    pub fn rung(&self, pu: PuId) -> Option<&RungRuntime> {
        self.inner.rungs.get(&pu)
    }

    /// Registers a function with the platform.
    pub fn register_function(&self, def: FunctionDef) {
        self.inner.registry.register(def);
    }

    /// Boots the control plane: attaches the global manager on the host CPU
    /// and xSpawns one executor per neighbour general-purpose PU (paper
    /// Fig. 6), then pre-initializes function containers.
    ///
    /// # Errors
    ///
    /// Propagates shim errors from the executor spawns.
    pub fn bootstrap(&self, ctx: &mut ProcCtx) -> Result<(), MoleculeError> {
        // Shard the engine's pending-event structure per node, with calendar
        // buckets sized to the interconnect's conservative lookahead. Purely
        // a throughput tune: dispatch order is byte-identical either way.
        let (pu_lanes, lookahead) = self.inner.machine.event_lane_plan();
        ctx.tune_event_lanes(&pu_lanes, lookahead);
        telemetry::with(|r| {
            // Name one trace lane per PU so exports read "cpu0"/"dpu1"
            // instead of bare lane numbers.
            for pu in self.inner.machine.pus() {
                r.set_lane_name(pu.id.0, format!("{} (pu{})", pu.kind, pu.id.0));
            }
            r.instant(ctx.lane(), ctx.now().as_nanos(), "molecule-bootstrap", ctx.trace_ctx());
        });
        let host = self.inner.machine.host_cpu();
        let shim = self.inner.cluster.shim_on(host)?;
        let manager = shim.attach_process();
        self.inner.state.lock().manager = Some(manager);
        for pu in self.inner.machine.pus() {
            if pu.kind.is_general_purpose() && pu.id != host {
                let exec = shim.xspawn_inert(ctx, manager, pu.id, "molecule-executor", &[])?;
                self.inner.state.lock().executors.insert(pu.id, exec);
            }
        }
        if self.inner.config.preinit_containers_per_pu > 0 {
            for runc in self.inner.runcs.values() {
                runc.preinit_function_containers(ctx, self.inner.config.preinit_containers_per_pu);
            }
        }
        Ok(())
    }

    /// Prepares a template container for `lang` on `pu` (off the request
    /// critical path).
    ///
    /// # Errors
    ///
    /// Sandbox errors from the underlying `runc`.
    pub fn prepare_template(
        &self,
        ctx: &mut ProcCtx,
        pu: PuId,
        lang: LangRuntime,
    ) -> Result<(), MoleculeError> {
        let runc = self
            .inner
            .runcs
            .get(&pu)
            .ok_or_else(|| MoleculeError::Internal(format!("no runc on {pu}")))?;
        let id = runc.prepare_template(ctx, lang, 256)?;
        self.inner.state.lock().templates.insert((pu, lang), id);
        Ok(())
    }

    fn lookup_function(&self, func: &FuncId) -> Result<FunctionDef, MoleculeError> {
        self.inner.registry.get(func).ok_or_else(|| MoleculeError::UnknownFunction(func.clone()))
    }

    fn fresh_sandbox_id(&self, func: &FuncId) -> SandboxId {
        let mut st = self.inner.state.lock();
        st.next_sandbox += 1;
        SandboxId::new(format!("{func}-{}", st.next_sandbox))
    }

    fn register_instance(&self, inst: Instance) -> InstanceId {
        let mut st = self.inner.state.lock();
        st.next_instance += 1;
        let id = InstanceId(st.next_instance);
        st.warm.entry((inst.func.id.clone(), inst.pu)).or_default().push(id);
        st.instances.insert(id, inst);
        id
    }

    /// Starts an instance of `func` on a general-purpose PU via the given
    /// startup path, returning the instance and its startup latency.
    ///
    /// # Errors
    ///
    /// [`MoleculeError::UnsupportedPu`] if the function has no profile for
    /// the PU's kind; sandbox errors otherwise.
    pub fn start_instance(
        &self,
        ctx: &mut ProcCtx,
        func: &FuncId,
        pu: PuId,
        how: StartupKind,
    ) -> Result<StartupReport, MoleculeError> {
        let t0 = ctx.now();
        let out = self.do_start_instance(ctx, func, pu, how);
        telemetry::with(|r| {
            let kind = match how {
                StartupKind::ColdBaseline => "cold",
                StartupKind::CforkLocal => "cfork",
                StartupKind::CforkXpu { .. } => "cfork_xpu",
                StartupKind::Snapshot => "snapshot",
            };
            r.complete_span(
                ctx.lane(),
                t0.as_nanos(),
                ctx.now().as_nanos(),
                &format!("startup:{kind} {func}->pu{}", pu.0),
                ctx.trace_ctx(),
            );
            match &out {
                Ok(rep) => r
                    .metrics()
                    .observe_ns(&format!("molecule.startup_ns.{kind}"), rep.latency.as_nanos()),
                Err(_) => r.metrics().counter_add("molecule.startup.err", 1),
            }
        });
        out
    }

    fn do_start_instance(
        &self,
        ctx: &mut ProcCtx,
        func: &FuncId,
        pu: PuId,
        how: StartupKind,
    ) -> Result<StartupReport, MoleculeError> {
        let def = self.lookup_function(func)?;
        let spec = self
            .inner
            .machine
            .pu(pu)
            .ok_or_else(|| MoleculeError::Internal(format!("no such pu {pu}")))?
            .clone();
        if !def.supports(spec.kind) {
            return Err(MoleculeError::UnsupportedPu { func: func.clone(), pu });
        }
        // A crashed PU cannot start anything: surface the same fault shape
        // the shim layer uses so callers take their failover path.
        if self.inner.machine.fault_plane().is_dead(pu) {
            return Err(MoleculeError::Shim(xpu_shim::error::ShimError::PeerDead(pu)));
        }
        if spec.kind == PuKind::Fpga {
            return self.start_fpga_instance(ctx, &def, pu);
        }
        if spec.kind == PuKind::Gpu {
            return self.start_gpu_instance(ctx, &def, pu);
        }
        let runc = self
            .inner
            .runcs
            .get(&pu)
            .ok_or_else(|| MoleculeError::Internal(format!("no runc on {pu}")))?;
        let sandbox = self.fresh_sandbox_id(func);
        let cfg = SandboxConfig::general(def.id.clone(), def.lang, def.memory_mib);
        let t0 = ctx.now();
        let pending_first_run = match how {
            StartupKind::ColdBaseline => {
                runc.create(ctx, &sandbox, &cfg)?;
                runc.start(ctx, &sandbox)?;
                // The generic container loads function code + dependencies
                // during boot (scaled to the PU's speed).
                ctx.sleep(spec.scale_compute(def.init));
                SimDuration::ZERO
            }
            StartupKind::Snapshot => {
                runc.restore_from_snapshot(ctx, &sandbox, &cfg)?;
                // The snapshot was captured after initialization.
                SimDuration::ZERO
            }
            StartupKind::CforkLocal | StartupKind::CforkXpu { .. } => {
                if let StartupKind::CforkXpu { issued_from } = how {
                    if issued_from != pu {
                        // nIPC command to the remote executor + remote
                        // coordination (Fig. 10: "about 1-3 ms").
                        let route_cost =
                            self.inner.machine.route(issued_from, pu).transfer_time(256);
                        ctx.sleep(route_cost);
                        ctx.sleep(runc.container_costs().cfork_xpu_extra);
                    }
                }
                let template = {
                    let st = self.inner.state.lock();
                    st.templates.get(&(pu, def.lang)).cloned()
                }
                .ok_or_else(|| {
                    MoleculeError::Internal(format!("no {} template on {pu}", def.lang))
                })?;
                let opts = CforkOpts {
                    use_preinit_container: self.inner.config.preinit_containers_per_pu > 0,
                    dense: self.inner.config.dense_sandboxes,
                };
                runc.cfork(ctx, &template, &sandbox, &cfg, opts)?;
                if self.inner.config.dedicated_templates {
                    // Code + deps preloaded in the template: only COW page
                    // faults remain for the first run.
                    spec.scale_compute(def.cfork_first_run)
                } else {
                    // Generic template: the child still loads the function's
                    // code and dependencies, charged on first run.
                    spec.scale_compute(def.init)
                }
            }
        };
        let latency = ctx.now() - t0;
        let instance = self.register_instance(Instance {
            func: def,
            pu,
            kind: spec.kind,
            sandbox,
            pending_first_run,
            invocations: 0,
        });
        Ok(StartupReport { instance, latency })
    }

    fn start_fpga_instance(
        &self,
        ctx: &mut ProcCtx,
        def: &FunctionDef,
        pu: PuId,
    ) -> Result<StartupReport, MoleculeError> {
        let runf = self
            .inner
            .runfs
            .get(&pu)
            .ok_or_else(|| MoleculeError::Internal(format!("no runf on {pu}")))?;
        let profile = def
            .fpga
            .as_ref()
            .ok_or_else(|| MoleculeError::UnsupportedPu { func: def.id.clone(), pu })?;
        let sandbox = SandboxId::new(def.id.as_str());
        let t0 = ctx.now();
        let known = runf.state(ctx, &sandbox).is_ok();
        if !known {
            let cfg = SandboxConfig::fpga(def.id.clone(), profile.kernel.clone());
            runf.create(ctx, &sandbox, &cfg)?;
        }
        match runf.state(ctx, &sandbox) {
            Ok(vsandbox::spec::SandboxState::Running) => {} // warm hit
            _ => runf.start(ctx, &sandbox)?,
        }
        let latency = ctx.now() - t0;
        let instance = self.register_instance(Instance {
            func: def.clone(),
            pu,
            kind: PuKind::Fpga,
            sandbox,
            pending_first_run: SimDuration::ZERO,
            invocations: 0,
        });
        Ok(StartupReport { instance, latency })
    }

    fn start_gpu_instance(
        &self,
        ctx: &mut ProcCtx,
        def: &FunctionDef,
        pu: PuId,
    ) -> Result<StartupReport, MoleculeError> {
        let rung = self
            .inner
            .rungs
            .get(&pu)
            .ok_or_else(|| MoleculeError::Internal(format!("no runG on {pu}")))?;
        if def.gpu.is_none() {
            return Err(MoleculeError::UnsupportedPu { func: def.id.clone(), pu });
        }
        let sandbox = self.fresh_sandbox_id(&def.id);
        let cfg = SandboxConfig {
            func: def.id.clone(),
            lang: LangRuntime::Cuda,
            memory_mib: def.memory_mib,
            fpga_kernel: None,
        };
        let t0 = ctx.now();
        rung.create(ctx, &sandbox, &cfg)?;
        rung.start(ctx, &sandbox)?;
        let latency = ctx.now() - t0;
        let instance = self.register_instance(Instance {
            func: def.clone(),
            pu,
            kind: PuKind::Gpu,
            sandbox,
            pending_first_run: SimDuration::ZERO,
            invocations: 0,
        });
        Ok(StartupReport { instance, latency })
    }

    /// Packs `funcs` into one vectorized FPGA image on `pu` and flashes it —
    /// the instance-caching path of §4.2. All named functions become
    /// `Created` sandboxes resident on the fabric.
    ///
    /// # Errors
    ///
    /// Unknown functions, functions without FPGA profiles, or device
    /// capacity errors.
    pub fn cache_fpga_functions(
        &self,
        ctx: &mut ProcCtx,
        pu: PuId,
        funcs: &[FuncId],
    ) -> Result<(), MoleculeError> {
        let runf = self
            .inner
            .runfs
            .get(&pu)
            .ok_or_else(|| MoleculeError::Internal(format!("no runf on {pu}")))?;
        let mut entries = Vec::with_capacity(funcs.len());
        for func in funcs {
            let def = self.lookup_function(func)?;
            let profile = def
                .fpga
                .as_ref()
                .ok_or_else(|| MoleculeError::UnsupportedPu { func: func.clone(), pu })?;
            entries.push((
                SandboxId::new(func.as_str()),
                SandboxConfig::fpga(func.clone(), profile.kernel.clone()),
            ));
        }
        runf.create_vec(ctx, &entries)?;
        Ok(())
    }

    /// Like [`cache_fpga_functions`](Self::cache_fpga_functions) but
    /// *replaces* existing sandboxes with the same ids — the re-flash path
    /// used by the keep-alive cache manager when the resident set changes.
    ///
    /// # Errors
    ///
    /// Same as [`cache_fpga_functions`](Self::cache_fpga_functions).
    pub fn cache_fpga_functions_replacing(
        &self,
        ctx: &mut ProcCtx,
        pu: PuId,
        funcs: &[FuncId],
    ) -> Result<(), MoleculeError> {
        let runf = self
            .inner
            .runfs
            .get(&pu)
            .ok_or_else(|| MoleculeError::Internal(format!("no runf on {pu}")))?;
        let mut entries = Vec::with_capacity(funcs.len());
        for func in funcs {
            let def = self.lookup_function(func)?;
            let profile = def
                .fpga
                .as_ref()
                .ok_or_else(|| MoleculeError::UnsupportedPu { func: func.clone(), pu })?;
            entries.push((
                SandboxId::new(func.as_str()),
                SandboxConfig::fpga(func.clone(), profile.kernel.clone()),
            ));
        }
        runf.repack_image(ctx, &entries)?;
        Ok(())
    }

    /// Invokes an instance with `input_bytes` of input, charging execution
    /// (scaled to the PU) plus any pending first-run cost, and billing the
    /// meter.
    ///
    /// # Errors
    ///
    /// [`MoleculeError::UnknownInstance`]; FPGA device errors.
    pub fn invoke(
        &self,
        ctx: &mut ProcCtx,
        instance: InstanceId,
        input_bytes: u64,
    ) -> Result<InvokeReport, MoleculeError> {
        let inst = {
            let st = self.inner.state.lock();
            st.instances
                .get(&instance)
                .cloned()
                .ok_or(MoleculeError::UnknownInstance(instance.0))?
        };
        // Invoking on a crashed PU fails like a dead peer would over the
        // shim, so gateways fail over instead of billing phantom work.
        if self.inner.machine.fault_plane().is_dead(inst.pu) {
            return Err(MoleculeError::Shim(xpu_shim::error::ShimError::PeerDead(inst.pu)));
        }
        let t0 = ctx.now();
        match inst.kind {
            PuKind::Fpga => {
                let profile = inst.func.fpga.as_ref().ok_or_else(|| {
                    MoleculeError::Internal("fpga instance without profile".to_owned())
                })?;
                let runf =
                    self.inner.runfs.get(&inst.pu).ok_or_else(|| {
                        MoleculeError::Internal(format!("no runf on {}", inst.pu))
                    })?;
                // Arguments move host -> device over DMA.
                let dma = self
                    .inner
                    .machine
                    .route(self.inner.machine.host_cpu(), inst.pu)
                    .transfer_time(input_bytes);
                ctx.sleep(dma);
                runf.invoke(ctx, &inst.sandbox, profile.exec.host_time(input_bytes))?;
            }
            PuKind::Gpu => {
                let exec = inst.func.gpu.ok_or_else(|| {
                    MoleculeError::Internal("gpu instance without profile".to_owned())
                })?;
                let rung =
                    self.inner.rungs.get(&inst.pu).ok_or_else(|| {
                        MoleculeError::Internal(format!("no runG on {}", inst.pu))
                    })?;
                let dma = self
                    .inner
                    .machine
                    .route(self.inner.machine.host_cpu(), inst.pu)
                    .transfer_time(input_bytes);
                ctx.sleep(dma);
                rung.invoke(ctx, &inst.sandbox, exec.host_time(input_bytes))?;
            }
            _ => {
                let spec = self.inner.machine.pu(inst.pu).expect("instance on known pu").clone();
                if !inst.pending_first_run.is_zero() && inst.invocations == 0 {
                    ctx.sleep(inst.pending_first_run);
                }
                ctx.sleep(inst.func.exec.time_on(&spec, input_bytes));
            }
        }
        let latency = ctx.now() - t0;
        telemetry::with(|r| {
            r.complete_span(
                ctx.lane(),
                t0.as_nanos(),
                ctx.now().as_nanos(),
                &format!("invoke {}", inst.func.id),
                ctx.trace_ctx(),
            );
            r.metrics().observe_ns("molecule.invoke_ns", latency.as_nanos());
        });
        let billed = {
            let mut st = self.inner.state.lock();
            if let Some(i) = st.instances.get_mut(&instance) {
                i.invocations += 1;
            }
            st.meter.charge(inst.kind, latency, inst.func.memory_mib.max(1))
        };
        Ok(InvokeReport { latency, billed })
    }

    /// Finds a warm instance of `func` on `pu`.
    pub fn warm_instance(&self, func: &FuncId, pu: PuId) -> Option<InstanceId> {
        let st = self.inner.state.lock();
        st.warm.get(&(func.clone(), pu)).and_then(|v| v.last().copied())
    }

    /// Stops and removes an instance, releasing its sandbox.
    ///
    /// # Errors
    ///
    /// [`MoleculeError::UnknownInstance`]; sandbox errors from teardown.
    pub fn retire_instance(
        &self,
        ctx: &mut ProcCtx,
        instance: InstanceId,
    ) -> Result<(), MoleculeError> {
        let inst = {
            let mut st = self.inner.state.lock();
            let inst =
                st.instances.remove(&instance).ok_or(MoleculeError::UnknownInstance(instance.0))?;
            if let Some(v) = st.warm.get_mut(&(inst.func.id.clone(), inst.pu)) {
                v.retain(|i| *i != instance);
            }
            inst
        };
        match inst.kind {
            PuKind::Fpga => {
                let runf = self.inner.runfs.get(&inst.pu).expect("runf exists");
                // Lazy delete: free, reclaimed at the next create.
                runf.delete(ctx, &inst.sandbox)?;
            }
            PuKind::Gpu => {
                let rung = self.inner.rungs.get(&inst.pu).expect("runG exists");
                rung.delete(ctx, &inst.sandbox)?;
            }
            _ => {
                let runc = self.inner.runcs.get(&inst.pu).expect("runc exists");
                runc.delete(ctx, &inst.sandbox)?;
            }
        }
        Ok(())
    }

    /// Purges every trace of a crashed PU from the runtime: its instances,
    /// warm pools, templates and executor registration, then reconciles the
    /// PU's `runc` book-keeping (sandboxes that were `Running` there are
    /// marked `Stopped`). No sandbox verbs are charged — the containers died
    /// with the PU; this is the control plane catching up with reality.
    pub fn purge_pu(&self, pu: PuId) -> PurgeReport {
        let (instances, templates, executor_dropped) = {
            let mut st = self.inner.state.lock();
            let mut dead: Vec<InstanceId> =
                st.instances.iter().filter(|(_, i)| i.pu == pu).map(|(id, _)| *id).collect();
            dead.sort();
            for id in &dead {
                st.instances.remove(id);
            }
            st.warm.retain(|(_, p), _| *p != pu);
            let before = st.templates.len();
            st.templates.retain(|(p, _), _| *p != pu);
            let templates = before - st.templates.len();
            let executor_dropped = st.executors.remove(&pu).is_some();
            (dead, templates, executor_dropped)
        };
        let sandboxes_reconciled =
            self.inner.runcs.get(&pu).map_or(0, |runc| runc.reconcile_lost().len());
        telemetry::with(|r| {
            r.metrics().counter_add("molecule.purged_instances", instances.len() as u64);
            r.metrics().counter_add("molecule.purged_pus", 1);
        });
        PurgeReport { pu, instances, templates, executor_dropped, sandboxes_reconciled }
    }

    /// A snapshot of the billing meter.
    pub fn meter(&self) -> Meter {
        self.inner.state.lock().meter.clone()
    }

    /// Number of live instances.
    pub fn instance_count(&self) -> usize {
        self.inner.state.lock().instances.len()
    }

    /// Number of executors launched by [`bootstrap`](Self::bootstrap).
    pub fn executor_count(&self) -> usize {
        self.inner.state.lock().executors.len()
    }

    /// The PU an instance runs on.
    pub fn instance_pu(&self, instance: InstanceId) -> Option<PuId> {
        self.inner.state.lock().instances.get(&instance).map(|i| i.pu)
    }

    /// The sandbox backing an instance (for memory inspection etc.).
    pub fn instance_sandbox(&self, instance: InstanceId) -> Option<SandboxId> {
        self.inner.state.lock().instances.get(&instance).map(|i| i.sandbox.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::ExecModel;
    use hetsim::engine::Simulation;
    use hetsim::fpga::{FpgaResources, KernelSpec};

    fn image_fn() -> FunctionDef {
        FunctionDef::builder("image-resize", LangRuntime::Python)
            .profiles(&[PuKind::Cpu, PuKind::Dpu])
            .exec_ms(14.1)
            .init_ms(6.3)
            .cfork_first_run_ms(1.0)
            .build()
    }

    fn molecule() -> Molecule {
        let m = Molecule::launch(Machine::paper_cpu_dpu_server(), MoleculeConfig::default());
        m.register_function(image_fn());
        m
    }

    #[test]
    fn bootstrap_spawns_executors_on_dpus() {
        let m = molecule();
        let mut sim = Simulation::new();
        let m2 = m.clone();
        sim.spawn("boot", move |ctx| {
            m2.bootstrap(ctx).unwrap();
        });
        sim.run().unwrap();
        assert_eq!(m.executor_count(), 2);
    }

    #[test]
    fn missing_template_is_a_clean_error() {
        let m = molecule();
        let mut sim = Simulation::new();
        let h = sim.spawn("gateway", move |ctx| {
            // No template prepared: cfork must fail without panicking.
            m.start_instance(ctx, &"image-resize".into(), PuId(0), StartupKind::CforkLocal)
                .unwrap_err()
        });
        sim.run().unwrap();
        assert!(matches!(h.take_result().unwrap(), MoleculeError::Internal(_)));
    }

    #[test]
    fn startup_paths_match_fig10a() {
        let m = molecule();
        let mut sim = Simulation::new();
        let m2 = m.clone();
        let h = sim.spawn("gateway", move |ctx| {
            m2.bootstrap(ctx).unwrap();
            m2.prepare_template(ctx, PuId(0), LangRuntime::Python).unwrap();
            m2.prepare_template(ctx, PuId(1), LangRuntime::Python).unwrap();
            let cold = m2
                .start_instance(ctx, &"image-resize".into(), PuId(0), StartupKind::ColdBaseline)
                .unwrap();
            let cfork = m2
                .start_instance(ctx, &"image-resize".into(), PuId(0), StartupKind::CforkLocal)
                .unwrap();
            let cfork_xpu = m2
                .start_instance(
                    ctx,
                    &"image-resize".into(),
                    PuId(1),
                    StartupKind::CforkXpu { issued_from: PuId(0) },
                )
                .unwrap();
            (
                cold.latency.as_millis_f64(),
                cfork.latency.as_millis_f64(),
                cfork_xpu.latency.as_millis_f64(),
            )
        });
        sim.run().unwrap();
        let (cold, cfork, cfork_xpu) = h.take_result().unwrap();
        // Fig. 10a: baseline ≈ 177.6 + init, cfork-local ≈ 6.4 ms.
        assert!((183.0..=185.0).contains(&cold), "baseline {cold}ms");
        assert!((6.3..=6.6).contains(&cfork), "cfork-local {cfork}ms");
        // Fig. 10b: the fork itself runs ~6.2x slower on BF-1 (≈ 40 ms), and
        // issuing it over XPU-Shim adds only the 1-3 ms command overhead.
        assert!((39.0..=46.0).contains(&cfork_xpu), "cfork-XPU on BF-1 {cfork_xpu}ms");
    }

    #[test]
    fn first_invocation_pays_cow_faults_then_warms_up() {
        let m = molecule();
        let mut sim = Simulation::new();
        let m2 = m.clone();
        let h = sim.spawn("gateway", move |ctx| {
            m2.bootstrap(ctx).unwrap();
            m2.prepare_template(ctx, PuId(0), LangRuntime::Python).unwrap();
            let started = m2
                .start_instance(ctx, &"image-resize".into(), PuId(0), StartupKind::CforkLocal)
                .unwrap();
            let first = m2.invoke(ctx, started.instance, 1024).unwrap();
            let second = m2.invoke(ctx, started.instance, 1024).unwrap();
            (first.latency, second.latency)
        });
        sim.run().unwrap();
        let (first, second) = h.take_result().unwrap();
        assert_eq!(first - second, SimDuration::from_millis(1), "COW fault cost");
        assert_eq!(second, SimDuration::from_micros(14_100));
    }

    #[test]
    fn warm_instances_are_tracked_and_retire_releases_them() {
        let m = molecule();
        let mut sim = Simulation::new();
        let m2 = m.clone();
        sim.spawn("gateway", move |ctx| {
            m2.bootstrap(ctx).unwrap();
            m2.prepare_template(ctx, PuId(0), LangRuntime::Python).unwrap();
            let started = m2
                .start_instance(ctx, &"image-resize".into(), PuId(0), StartupKind::CforkLocal)
                .unwrap();
            assert_eq!(m2.warm_instance(&"image-resize".into(), PuId(0)), Some(started.instance));
            assert_eq!(m2.warm_instance(&"image-resize".into(), PuId(1)), None);
            m2.retire_instance(ctx, started.instance).unwrap();
            assert_eq!(m2.warm_instance(&"image-resize".into(), PuId(0)), None);
            assert_eq!(m2.instance_count(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn unsupported_pu_is_rejected() {
        let machine = Machine::full_heterogeneous();
        let fpga = machine.pus_of_kind(PuKind::Fpga)[0];
        let m = Molecule::launch(machine, MoleculeConfig::default());
        m.register_function(image_fn()); // CPU/DPU only
        let mut sim = Simulation::new();
        let h = sim.spawn("gateway", move |ctx| {
            m.start_instance(ctx, &"image-resize".into(), fpga, StartupKind::ColdBaseline)
                .unwrap_err()
        });
        sim.run().unwrap();
        assert!(matches!(h.take_result().unwrap(), MoleculeError::UnsupportedPu { .. }));
    }

    #[test]
    fn fpga_cold_then_warm_startup() {
        let machine = Machine::paper_f1_instance();
        let fpga = machine.pus_of_kind(PuKind::Fpga)[0];
        let m = Molecule::launch(machine, MoleculeConfig::default());
        let kernel = KernelSpec {
            name: "vmult".to_owned(),
            resources: FpgaResources { luts: 5_000, regs: 8_000, brams: 20, dsps: 36 },
        };
        m.register_function(
            FunctionDef::builder("vmult", LangRuntime::OpenCl)
                .profiles(&[PuKind::Fpga])
                .fpga(kernel, ExecModel::Fixed(SimDuration::from_micros(1259)))
                .build(),
        );
        let mut sim = Simulation::new();
        let m2 = m.clone();
        let h = sim.spawn("gateway", move |ctx| {
            let cold =
                m2.start_instance(ctx, &"vmult".into(), fpga, StartupKind::ColdBaseline).unwrap();
            let exec = m2.invoke(ctx, cold.instance, 4096).unwrap();
            // A second start finds the sandbox running: warm hit.
            let warm =
                m2.start_instance(ctx, &"vmult".into(), fpga, StartupKind::ColdBaseline).unwrap();
            (cold.latency.as_secs_f64(), warm.latency, exec.latency)
        });
        sim.run().unwrap();
        let (cold, warm, exec) = h.take_result().unwrap();
        // No-erase cold: load (3.75s + compose) + prep 53ms.
        assert!((3.8..=4.1).contains(&cold), "fpga cold {cold}s");
        assert!(warm < SimDuration::from_millis(1), "warm hit {warm}");
        // DMA (4 KiB ≈ 61 µs) + dispatch 80 µs + kernel 1259 µs.
        assert!((1.3..=1.5).contains(&exec.as_millis_f64()), "fpga invoke {exec}");
    }

    #[test]
    fn vectorized_cache_makes_whole_set_resident() {
        let machine = Machine::paper_f1_instance();
        let fpga = machine.pus_of_kind(PuKind::Fpga)[0];
        let m = Molecule::launch(machine, MoleculeConfig::default());
        let mut funcs = Vec::new();
        for name in ["madd", "mmult", "mscale"] {
            let kernel = KernelSpec {
                name: name.to_owned(),
                resources: FpgaResources { luts: 5_000, regs: 8_000, brams: 20, dsps: 36 },
            };
            m.register_function(
                FunctionDef::builder(name, LangRuntime::OpenCl)
                    .profiles(&[PuKind::Fpga])
                    .fpga(kernel, ExecModel::Fixed(SimDuration::from_micros(100)))
                    .build(),
            );
            funcs.push(FuncId::new(name));
        }
        let mut sim = Simulation::new();
        let m2 = m.clone();
        let funcs2 = funcs.clone();
        let h = sim.spawn("gateway", move |ctx| {
            m2.cache_fpga_functions(ctx, fpga, &funcs2).unwrap();
            // Starting a cached function only needs the 53ms sandbox prep.
            let r =
                m2.start_instance(ctx, &"mmult".into(), fpga, StartupKind::ColdBaseline).unwrap();
            r.latency.as_millis_f64()
        });
        sim.run().unwrap();
        let warm_sandbox = h.take_result().unwrap();
        assert_eq!(warm_sandbox, 53.0, "Fig. 10c warm-sandbox");
    }

    #[test]
    fn billing_accumulates_per_kind() {
        let m = molecule();
        let mut sim = Simulation::new();
        let m2 = m.clone();
        sim.spawn("gateway", move |ctx| {
            m2.bootstrap(ctx).unwrap();
            m2.prepare_template(ctx, PuId(0), LangRuntime::Python).unwrap();
            let r = m2
                .start_instance(ctx, &"image-resize".into(), PuId(0), StartupKind::CforkLocal)
                .unwrap();
            m2.invoke(ctx, r.instance, 0).unwrap();
            m2.invoke(ctx, r.instance, 0).unwrap();
        });
        sim.run().unwrap();
        let meter = m.meter();
        assert_eq!(meter.invocations(), 2);
        assert!(meter.total_for(PuKind::Cpu) > 0.0);
        assert_eq!(meter.total_for(PuKind::Dpu), 0.0);
    }
}
