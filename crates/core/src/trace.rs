//! Request tracing: phase-level spans over virtual time.
//!
//! The figures decompose latency into phases (startup vs init vs execution
//! vs communication); [`RequestTrace`] records those phases for individual
//! requests so applications and tests can assert *where* time went, not
//! just how much passed.

use std::fmt;

use hetsim::engine::ProcCtx;
use hetsim::time::{SimDuration, SimTime};

/// A named phase of a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Phase label (e.g. `"startup"`, `"exec"`, `"comm"`).
    pub label: String,
    /// When the phase began.
    pub start: SimTime,
    /// Phase duration.
    pub duration: SimDuration,
}

/// A trace of one request: ordered, non-overlapping phases.
///
/// # Examples
///
/// ```
/// use hetsim::engine::Simulation;
/// use hetsim::time::SimDuration;
/// use molecule_core::trace::RequestTrace;
///
/// let mut sim = Simulation::new();
/// let h = sim.spawn("req", |ctx| {
///     let mut trace = RequestTrace::begin("req-1", ctx);
///     trace.phase(ctx, "startup", |ctx| ctx.sleep(SimDuration::from_millis(6)));
///     trace.phase(ctx, "exec", |ctx| ctx.sleep(SimDuration::from_millis(14)));
///     trace
/// });
/// sim.run().unwrap();
/// let trace = h.take_result().unwrap();
/// assert_eq!(trace.total().as_millis_f64(), 20.0);
/// assert_eq!(trace.of("exec").unwrap().as_millis_f64(), 14.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    name: String,
    started: SimTime,
    spans: Vec<Span>,
}

impl RequestTrace {
    /// Starts a trace at the current virtual time.
    pub fn begin(name: impl Into<String>, ctx: &ProcCtx) -> RequestTrace {
        RequestTrace { name: name.into(), started: ctx.now(), spans: Vec::new() }
    }

    /// The trace's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs `f` as a labelled phase, recording its virtual-time span.
    ///
    /// When the global [`telemetry`] recorder is installed, the phase is
    /// also emitted as a complete span on the calling process's lane (child
    /// of its ambient trace context), so request phases show up in the
    /// merged Chrome trace alongside shim and sandbox spans.
    pub fn phase<T>(
        &mut self,
        ctx: &mut ProcCtx,
        label: impl Into<String>,
        f: impl FnOnce(&mut ProcCtx) -> T,
    ) -> T {
        let label = label.into();
        let start = ctx.now();
        let out = f(ctx);
        let end = ctx.now();
        telemetry::with(|r| {
            r.complete_span(
                ctx.lane(),
                start.as_nanos(),
                end.as_nanos(),
                &format!("{}:{label}", self.name),
                ctx.trace_ctx(),
            );
        });
        self.spans.push(Span { label, start, duration: end - start });
        out
    }

    /// Records an externally measured span.
    pub fn record(&mut self, label: impl Into<String>, start: SimTime, duration: SimDuration) {
        self.spans.push(Span { label: label.into(), start, duration });
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total duration of a labelled phase across all its spans.
    pub fn of(&self, label: &str) -> Option<SimDuration> {
        let mut total = SimDuration::ZERO;
        let mut found = false;
        for s in &self.spans {
            if s.label == label {
                total += s.duration;
                found = true;
            }
        }
        found.then_some(total)
    }

    /// Sum of every recorded span.
    pub fn total(&self) -> SimDuration {
        self.spans.iter().map(|s| s.duration).sum()
    }

    /// The fraction of the trace spent in `label` (0.0 if absent).
    pub fn fraction(&self, label: &str) -> f64 {
        match self.of(label) {
            Some(d) if !self.total().is_zero() => d.ratio(self.total()),
            _ => 0.0,
        }
    }
}

impl fmt::Display for RequestTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace '{}' ({} total):", self.name, self.total())?;
        for s in &self.spans {
            writeln!(f, "  {:<12} {:>12}  (at {})", s.label, s.duration.to_string(), s.start)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::engine::Simulation;

    #[test]
    fn phases_accumulate_and_fractions_add_up() {
        let mut sim = Simulation::new();
        let h = sim.spawn("req", |ctx| {
            let mut t = RequestTrace::begin("r", ctx);
            t.phase(ctx, "startup", |ctx| ctx.sleep(SimDuration::from_millis(6)));
            t.phase(ctx, "exec", |ctx| ctx.sleep(SimDuration::from_millis(10)));
            t.phase(ctx, "exec", |ctx| ctx.sleep(SimDuration::from_millis(4)));
            t
        });
        sim.run().unwrap();
        let t = h.take_result().unwrap();
        assert_eq!(t.total(), SimDuration::from_millis(20));
        assert_eq!(t.of("exec"), Some(SimDuration::from_millis(14)));
        assert_eq!(t.of("startup"), Some(SimDuration::from_millis(6)));
        assert_eq!(t.of("comm"), None);
        assert!((t.fraction("exec") - 0.7).abs() < 1e-9);
        assert_eq!(t.spans().len(), 3);
    }

    #[test]
    fn phase_returns_the_closure_result() {
        let mut sim = Simulation::new();
        let h = sim.spawn("req", |ctx| {
            let mut t = RequestTrace::begin("r", ctx);
            let v = t.phase(ctx, "compute", |ctx| {
                ctx.sleep(SimDuration::from_micros(1));
                42
            });
            (t, v)
        });
        sim.run().unwrap();
        let (t, v) = h.take_result().unwrap();
        assert_eq!(v, 42);
        assert_eq!(t.total(), SimDuration::from_micros(1));
    }

    #[test]
    fn display_lists_every_span() {
        let mut sim = Simulation::new();
        let h = sim.spawn("req", |ctx| {
            let mut t = RequestTrace::begin("alexa-req", ctx);
            t.phase(ctx, "startup", |ctx| ctx.sleep(SimDuration::from_millis(1)));
            t
        });
        sim.run().unwrap();
        let text = h.take_result().unwrap().to_string();
        assert!(text.contains("alexa-req"));
        assert!(text.contains("startup"));
    }

    #[test]
    fn empty_trace_is_well_behaved() {
        let mut sim = Simulation::new();
        let h = sim.spawn("req", |ctx| RequestTrace::begin("empty", ctx));
        sim.run().unwrap();
        let t = h.take_result().unwrap();
        assert_eq!(t.total(), SimDuration::ZERO);
        assert_eq!(t.fraction("anything"), 0.0);
    }

    #[test]
    fn overlapping_recorded_spans_still_sum_by_label() {
        // `record` trusts the caller; overlapping spans (e.g. a comm span
        // covering part of an exec span measured elsewhere) must not panic
        // or be deduplicated — totals are per-label sums, not wall clock.
        let mut sim = Simulation::new();
        let h = sim.spawn("req", |ctx| {
            let mut t = RequestTrace::begin("overlap", ctx);
            let t0 = ctx.now();
            t.record("exec", t0, SimDuration::from_millis(10));
            t.record("comm", t0 + SimDuration::from_millis(2), SimDuration::from_millis(10));
            t
        });
        sim.run().unwrap();
        let t = h.take_result().unwrap();
        assert_eq!(t.total(), SimDuration::from_millis(20));
        assert_eq!(t.of("exec"), Some(SimDuration::from_millis(10)));
        assert_eq!(t.of("comm"), Some(SimDuration::from_millis(10)));
        assert!((t.fraction("exec") - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_length_phase_is_recorded_but_adds_nothing() {
        let mut sim = Simulation::new();
        let h = sim.spawn("req", |ctx| {
            let mut t = RequestTrace::begin("zero", ctx);
            t.phase(ctx, "noop", |_| {});
            t.phase(ctx, "exec", |ctx| ctx.sleep(SimDuration::from_millis(5)));
            t
        });
        sim.run().unwrap();
        let t = h.take_result().unwrap();
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.of("noop"), Some(SimDuration::ZERO));
        assert_eq!(t.total(), SimDuration::from_millis(5));
        // A present-but-empty phase contributes a 0.0 fraction, same as an
        // absent label — `of` is how the two cases are told apart.
        assert_eq!(t.fraction("noop"), 0.0);
        assert_eq!(t.fraction("exec"), 1.0);
    }

    #[test]
    fn fraction_of_missing_label_is_zero_even_with_time_recorded() {
        let mut sim = Simulation::new();
        let h = sim.spawn("req", |ctx| {
            let mut t = RequestTrace::begin("missing", ctx);
            t.phase(ctx, "exec", |ctx| ctx.sleep(SimDuration::from_millis(3)));
            t
        });
        sim.run().unwrap();
        let t = h.take_result().unwrap();
        assert_eq!(t.of("startup"), None);
        assert_eq!(t.fraction("startup"), 0.0);
    }
}
