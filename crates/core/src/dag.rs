//! Function-chain (serverless DAG) communication (paper §4.3).
//!
//! Most serverless applications are chains of functions, so inter-function
//! latency matters. This module implements the communication designs the
//! paper compares:
//!
//! * [`CommMethod::HttpGateway`] — the baseline: Node.js Express / Python
//!   Flask HTTP hops, as Molecule-homo and OpenWhisk do;
//! * [`CommMethod::DirectIpc`] — Molecule's direct-connect design: every
//!   function owns a `self_fifo` (an XPU-FIFO named by its UUID), Molecule
//!   injects peer UUIDs, and callers write the callee's FIFO directly —
//!   local IPC on the same PU, **nIPC** across PUs;
//! * [`CommMethod::FpgaCopy`] / [`CommMethod::FpgaShm`] — FPGA chains that
//!   copy through host DRAM versus the zero-copy DRAM-retention hand-off
//!   (Fig. 13).
//!
//! Chains are run as real simulated processes wired by FIFOs; every message
//! carries its send timestamp, so per-hop latencies (Fig. 12) fall out of
//! the virtual clock.

use bytes::{BufMut, Bytes, BytesMut};
use hetsim::engine::ProcCtx;
use hetsim::interconnect::Link;
use hetsim::pu::{PuId, PuKind};
use hetsim::time::{SimDuration, SimTime};
use vsandbox::oci::OciRuntime;
use vsandbox::spec::{FuncId, SandboxId};
use xpu_shim::cap::Perm;

use crate::error::MoleculeError;
use crate::runtime::Molecule;

/// How the stages of a chain talk to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommMethod {
    /// Framework HTTP hops through the gateway path (the baseline).
    HttpGateway,
    /// Molecule's direct-connect FIFOs: local IPC on one PU, nIPC across
    /// PUs. Cross-PU hops inherit the shim's adaptive data plane — large
    /// payloads ride shared-segment descriptors instead of being staged
    /// through the XPUcall transport (see `xpu_shim::segment`).
    DirectIpc,
    /// FPGA chain copying through host DRAM (caller copies out, callee
    /// copies back in).
    FpgaCopy,
    /// FPGA chain over retained device DRAM (zero-copy, §4.3).
    FpgaShm,
}

/// One stage of a chain: a function pinned to a PU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainStage {
    /// The function to run.
    pub func: FuncId,
    /// The PU its instance runs on.
    pub pu: PuId,
}

impl ChainStage {
    /// Creates a stage.
    pub fn new(func: impl Into<FuncId>, pu: PuId) -> ChainStage {
        ChainStage { func: func.into(), pu }
    }
}

/// A chain specification.
#[derive(Debug, Clone)]
pub struct ChainSpec {
    /// Diagnostic name (e.g. `"alexa"`).
    pub name: String,
    /// The stages, in invocation order.
    pub stages: Vec<ChainStage>,
    /// The communication method.
    pub comm: CommMethod,
    /// Bytes of the request payload entering stage 0.
    pub input_bytes: u64,
    /// Number of requests to drive through the chain.
    pub rounds: usize,
}

impl ChainSpec {
    /// Creates a single-round chain spec.
    pub fn new(name: impl Into<String>, stages: Vec<ChainStage>, comm: CommMethod) -> ChainSpec {
        ChainSpec { name: name.into(), stages, comm, input_bytes: 1024, rounds: 1 }
    }

    /// Sets the request payload size.
    pub fn input_bytes(mut self, bytes: u64) -> ChainSpec {
        self.input_bytes = bytes;
        self
    }

    /// Sets the number of requests.
    pub fn rounds(mut self, rounds: usize) -> ChainSpec {
        self.rounds = rounds;
        self
    }
}

/// Measured results of a chain run.
#[derive(Debug, Clone)]
pub struct ChainOutcome {
    /// End-to-end latency of each round.
    pub end_to_end: Vec<SimDuration>,
    /// Per-hop communication latencies: `hops[i]` holds every measured
    /// latency of the hop *into* stage `i` (hop 0 is gateway → stage 0).
    pub hops: Vec<Vec<SimDuration>>,
}

impl ChainOutcome {
    /// Mean end-to-end latency.
    pub fn mean_end_to_end(&self) -> SimDuration {
        let total: SimDuration = self.end_to_end.iter().copied().sum();
        total / self.end_to_end.len().max(1) as u64
    }

    /// Mean latency of the hop into stage `i`.
    pub fn mean_hop(&self, i: usize) -> SimDuration {
        let hop = &self.hops[i];
        let total: SimDuration = hop.iter().copied().sum();
        total / hop.len().max(1) as u64
    }
}

const HEADER_BYTES: usize = 16;

fn encode_msg(sent_at: SimTime, hop: u64, body_bytes: u64) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_BYTES + body_bytes as usize);
    buf.put_u64_le(sent_at.as_nanos());
    buf.put_u64_le(hop);
    buf.resize(HEADER_BYTES + body_bytes as usize, 0xA5);
    buf.freeze()
}

fn decode_msg(msg: &Bytes) -> (SimTime, u64) {
    let sent = u64::from_le_bytes(msg[0..8].try_into().expect("header"));
    let hop = u64::from_le_bytes(msg[8..16].try_into().expect("header"));
    (SimTime::from_nanos(sent), hop)
}

/// Plans a chain: places every stage with the given scheduler (chain
/// co-location by default, §5 "Profile selections") and returns a ready
/// [`ChainSpec`].
///
/// # Errors
///
/// Unknown functions or [`MoleculeError::NoCapacity`] from placement.
pub fn plan_chain(
    molecule: &Molecule,
    scheduler: &crate::schedule::Scheduler,
    name: impl Into<String>,
    funcs: &[FuncId],
    comm: CommMethod,
) -> Result<ChainSpec, MoleculeError> {
    let defs: Vec<crate::function::FunctionDef> = funcs
        .iter()
        .map(|f| {
            molecule.registry().get(f).ok_or_else(|| MoleculeError::UnknownFunction(f.clone()))
        })
        .collect::<Result<_, _>>()?;
    let refs: Vec<&crate::function::FunctionDef> = defs.iter().collect();
    let placement = scheduler.place_chain(molecule.machine(), &refs)?;
    let stages =
        funcs.iter().zip(placement).map(|(f, pu)| ChainStage { func: f.clone(), pu }).collect();
    Ok(ChainSpec::new(name, stages, comm))
}

/// Runs a chain to completion from inside a simulated process (the API
/// gateway / request driver).
///
/// Instances are expected to be deployable: for [`CommMethod::DirectIpc`]
/// and [`CommMethod::HttpGateway`], templates must already exist on every
/// involved general-purpose PU (stages are pre-booted before timing begins,
/// matching the paper's §6.6 methodology); FPGA methods cache all stage
/// kernels in one vectorized image first.
///
/// # Errors
///
/// Unknown functions, missing templates, or shim/device failures.
pub fn run_chain(
    molecule: &Molecule,
    ctx: &mut ProcCtx,
    spec: &ChainSpec,
) -> Result<ChainOutcome, MoleculeError> {
    let t0 = ctx.now();
    let out = match spec.comm {
        CommMethod::DirectIpc => run_ipc_chain(molecule, ctx, spec),
        CommMethod::HttpGateway => run_http_chain(molecule, ctx, spec),
        CommMethod::FpgaCopy | CommMethod::FpgaShm => run_fpga_chain(molecule, ctx, spec),
    };
    telemetry::with(|r| {
        r.complete_span(
            ctx.lane(),
            t0.as_nanos(),
            ctx.now().as_nanos(),
            &format!("chain:{} ({:?})", spec.name, spec.comm),
            ctx.trace_ctx(),
        );
        if let Ok(o) = &out {
            for d in &o.end_to_end {
                r.metrics().observe_ns("dag.end_to_end_ns", d.as_nanos());
            }
        }
    });
    out
}

fn stage_exec(
    molecule: &Molecule,
    stage: &ChainStage,
    input_bytes: u64,
) -> Result<SimDuration, MoleculeError> {
    let def = molecule
        .registry()
        .get(&stage.func)
        .ok_or_else(|| MoleculeError::UnknownFunction(stage.func.clone()))?;
    let spec = molecule
        .machine()
        .pu(stage.pu)
        .ok_or_else(|| MoleculeError::Internal(format!("no such pu {}", stage.pu)))?;
    Ok(match spec.kind {
        PuKind::Fpga => def
            .fpga
            .as_ref()
            .ok_or(MoleculeError::UnsupportedPu { func: def.id.clone(), pu: stage.pu })?
            .exec
            .host_time(input_bytes),
        PuKind::Gpu => def
            .gpu
            .ok_or(MoleculeError::UnsupportedPu { func: def.id.clone(), pu: stage.pu })?
            .host_time(input_bytes),
        _ => def.exec.time_on(spec, input_bytes),
    })
}

/// Language-runtime cost of emitting one IPC message from a PU (§4.3: the
/// FIFO write still goes through the Node.js/Python runtime).
fn ipc_runtime_overhead(molecule: &Molecule, pu: PuId) -> SimDuration {
    let calib = molecule.machine().calibration();
    match molecule.machine().pu(pu).map(|p| p.kind) {
        Some(PuKind::Dpu) | Some(PuKind::SmartNic) => calib.http_dag.ipc_runtime_overhead_dpu,
        _ => calib.http_dag.ipc_runtime_overhead,
    }
}

fn output_bytes(molecule: &Molecule, func: &FuncId) -> Result<u64, MoleculeError> {
    molecule
        .registry()
        .get(func)
        .map(|d| d.output_bytes)
        .ok_or_else(|| MoleculeError::UnknownFunction(func.clone()))
}

/// Molecule's direct-connect chain: one simulated process per stage, wired
/// by XPU-FIFOs with capabilities granted hop by hop.
fn run_ipc_chain(
    molecule: &Molecule,
    ctx: &mut ProcCtx,
    spec: &ChainSpec,
) -> Result<ChainOutcome, MoleculeError> {
    let cluster = molecule.cluster().clone();
    let n = spec.stages.len();
    assert!(n > 0, "empty chain");
    let host = molecule.machine().host_cpu();
    let driver_shim = cluster.shim_on(host)?;
    let driver_pid = driver_shim.attach_process();

    // Every function creates a self_fifo named by its (globally unique)
    // UUID; Molecule injects the caller/callee UUIDs (§4.3).
    let mut pids = Vec::with_capacity(n);
    let mut shims = Vec::with_capacity(n);
    for stage in &spec.stages {
        let shim = cluster.shim_on(stage.pu)?;
        pids.push(shim.attach_process());
        shims.push(shim);
    }
    let mut readers = Vec::with_capacity(n);
    for (i, stage) in spec.stages.iter().enumerate() {
        let uuid = format!("{}-self-{}-{}", spec.name, i, stage.func);
        let fifo = shims[i].xfifo_init(ctx, pids[i], uuid)?;
        // Grant the upstream writer access to this stage's self_fifo.
        let writer = if i == 0 { driver_pid } else { pids[i - 1] };
        shims[i].grant_cap(ctx, pids[i], writer, fifo.obj(), Perm::WRITE)?;
        readers.push(fifo);
    }
    // The response FIFO back to the driver.
    let result_fifo = driver_shim.xfifo_init(ctx, driver_pid, format!("{}-result", spec.name))?;
    driver_shim.grant_cap(ctx, driver_pid, pids[n - 1], result_fifo.obj(), Perm::WRITE)?;

    // Connect writers: stage i writes stage i+1's FIFO (or the result FIFO).
    let entry_writer = driver_shim.xfifo_connect(ctx, driver_pid, &readers[0].uuid().clone())?;
    let mut next_writers = Vec::with_capacity(n);
    for i in 0..n {
        let w = if i + 1 < n {
            shims[i].xfifo_connect(ctx, pids[i], &readers[i + 1].uuid().clone())?
        } else {
            shims[i].xfifo_connect(ctx, pids[i], &result_fifo.uuid().clone())?
        };
        next_writers.push(w);
    }

    // Metrics: stages report (hop, latency) pairs.
    let (metrics_tx, metrics_rx) = ctx.channel::<(usize, SimDuration)>();

    // Spawn the pre-booted stage instances.
    let mut body_in = spec.input_bytes;
    for (i, stage) in spec.stages.iter().enumerate() {
        let exec = stage_exec(molecule, stage, body_in)?;
        let out_bytes = output_bytes(molecule, &stage.func)?;
        let serialize = ipc_runtime_overhead(molecule, stage.pu);
        let reader = readers.remove(0);
        let writer = next_writers[i].clone();
        let tx = metrics_tx.clone();
        let rounds = spec.rounds;
        let name = format!("{}-stage{}-{}", spec.name, i, stage.func);
        let pu = stage.pu;
        let sname = name.clone();
        ctx.spawn(&name, move |sctx| {
            // Stage processes execute on their placed PU: spans they emit
            // land on that PU's trace lane.
            sctx.set_lane(pu.0);
            for _ in 0..rounds {
                let Ok(msg) = reader.read(sctx) else { return };
                let (sent_at, hop) = decode_msg(&msg);
                let hop_lat = sctx.now() - sent_at;
                let _ = tx.send((hop as usize, hop_lat));
                let t_exec = sctx.now();
                sctx.sleep(exec);
                telemetry::with(|r| {
                    r.metrics().observe_ns("dag.hop_ns", hop_lat.as_nanos());
                    r.complete_span(
                        sctx.lane(),
                        t_exec.as_nanos(),
                        sctx.now().as_nanos(),
                        &format!("{sname} exec"),
                        sctx.trace_ctx(),
                    );
                });
                // Timestamp when the handler finishes; the language
                // runtime's serialization is part of the hop latency.
                let out = encode_msg(sctx.now(), hop + 1, out_bytes);
                sctx.sleep(serialize);
                if writer.write(sctx, out).is_err() {
                    return;
                }
            }
        });
        body_in = out_bytes;
    }
    drop(metrics_tx);

    // Drive the rounds.
    let entry_serialize = ipc_runtime_overhead(molecule, host);
    let mut end_to_end = Vec::with_capacity(spec.rounds);
    for _ in 0..spec.rounds {
        let t0 = ctx.now();
        let msg = encode_msg(t0, 0, spec.input_bytes);
        ctx.sleep(entry_serialize);
        entry_writer.write(ctx, msg)?;
        let reply = result_fifo.read(ctx)?;
        let (_sent, hop) = decode_msg(&reply);
        debug_assert_eq!(hop as usize, n);
        end_to_end.push(ctx.now() - t0);
    }

    let mut hops: Vec<Vec<SimDuration>> = vec![Vec::new(); n];
    while let Ok((hop, lat)) = metrics_rx.try_recv() {
        if hop < n {
            hops[hop].push(lat);
        }
    }
    Ok(ChainOutcome { end_to_end, hops })
}

/// The cost the *sender* pays for one framework HTTP hop, and the in-flight
/// delay before the receiver sees the message.
pub fn http_hop_cost(
    molecule: &Molecule,
    from: PuId,
    to: PuId,
    bytes: u64,
) -> (SimDuration, SimDuration) {
    let calib = molecule.machine().calibration();
    let sender = molecule.machine().pu(from).expect("pu exists");
    let base = match sender.kind {
        PuKind::Dpu | PuKind::SmartNic => calib.http_dag.request_overhead_dpu,
        _ => calib.http_dag.request_overhead,
    };
    let overhead =
        base + SimDuration::from_nanos((calib.http_dag.per_byte_ns * bytes as f64) as u64);
    let in_flight = if from == to {
        // Loopback TCP through the local kernel.
        SimDuration::from_micros(25)
    } else {
        // The baseline assumes a network between PUs ("the wrong assumption
        // of the underlying hardware", §1).
        Link::network().transfer_time(bytes)
    };
    (overhead, in_flight)
}

/// The baseline chain: Express/Flask HTTP hops, no XPU-Shim.
fn run_http_chain(
    molecule: &Molecule,
    ctx: &mut ProcCtx,
    spec: &ChainSpec,
) -> Result<ChainOutcome, MoleculeError> {
    let n = spec.stages.len();
    assert!(n > 0, "empty chain");
    let host = molecule.machine().host_cpu();

    let mut stage_txs = Vec::with_capacity(n);
    let mut stage_rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = ctx.channel::<Bytes>();
        stage_txs.push(tx);
        stage_rxs.push(rx);
    }
    let (result_tx, result_rx) = ctx.channel::<Bytes>();
    let (metrics_tx, metrics_rx) = ctx.channel::<(usize, SimDuration)>();

    let mut body_in = spec.input_bytes;
    for (i, stage) in spec.stages.iter().enumerate() {
        let exec = stage_exec(molecule, stage, body_in)?;
        let out_bytes = output_bytes(molecule, &stage.func)?;
        let reader = stage_rxs.remove(0);
        let next_tx = if i + 1 < n { stage_txs[i + 1].clone() } else { result_tx.clone() };
        let tx = metrics_tx.clone();
        let rounds = spec.rounds;
        let (hop_overhead, hop_flight) = if i + 1 < n {
            http_hop_cost(
                molecule,
                stage.pu,
                spec.stages[i + 1].pu,
                out_bytes + HEADER_BYTES as u64,
            )
        } else {
            http_hop_cost(molecule, stage.pu, host, out_bytes + HEADER_BYTES as u64)
        };
        let name = format!("{}-http-stage{}-{}", spec.name, i, stage.func);
        let pu = stage.pu;
        let sname = name.clone();
        ctx.spawn(&name, move |sctx| {
            sctx.set_lane(pu.0);
            for _ in 0..rounds {
                let Ok(msg) = reader.recv(sctx) else { return };
                let (sent_at, hop) = decode_msg(&msg);
                let hop_lat = sctx.now() - sent_at;
                let _ = tx.send((hop as usize, hop_lat));
                let t_exec = sctx.now();
                sctx.sleep(exec);
                telemetry::with(|r| {
                    r.metrics().observe_ns("dag.hop_ns", hop_lat.as_nanos());
                    r.complete_span(
                        sctx.lane(),
                        t_exec.as_nanos(),
                        sctx.now().as_nanos(),
                        &format!("{sname} exec"),
                        sctx.trace_ctx(),
                    );
                });
                // Timestamp at hand-off; the Express/Flask overhead is part
                // of the hop latency.
                let out = encode_msg(sctx.now(), hop + 1, out_bytes);
                sctx.sleep(hop_overhead);
                if next_tx.send_delayed(hop_flight, out).is_err() {
                    return;
                }
            }
        });
        body_in = out_bytes;
    }
    drop(metrics_tx);
    drop(result_tx);

    let (entry_overhead, entry_flight) =
        http_hop_cost(molecule, host, spec.stages[0].pu, spec.input_bytes + HEADER_BYTES as u64);
    let mut end_to_end = Vec::with_capacity(spec.rounds);
    for _ in 0..spec.rounds {
        let t0 = ctx.now();
        let msg = encode_msg(t0, 0, spec.input_bytes);
        ctx.sleep(entry_overhead);
        stage_txs[0]
            .send_delayed(entry_flight, msg)
            .map_err(|_| MoleculeError::Internal("stage 0 hung up".to_owned()))?;
        result_rx.recv(ctx).map_err(|_| MoleculeError::Internal("chain died".to_owned()))?;
        end_to_end.push(ctx.now() - t0);
    }

    let mut hops: Vec<Vec<SimDuration>> = vec![Vec::new(); n];
    while let Ok((hop, lat)) = metrics_rx.try_recv() {
        if hop < n {
            hops[hop].push(lat);
        }
    }
    Ok(ChainOutcome { end_to_end, hops })
}

/// FPGA chains: all stages cached in one vectorized image; data moves either
/// by copying through host DRAM or by the retention hand-off.
fn run_fpga_chain(
    molecule: &Molecule,
    ctx: &mut ProcCtx,
    spec: &ChainSpec,
) -> Result<ChainOutcome, MoleculeError> {
    let n = spec.stages.len();
    assert!(n > 0, "empty chain");
    let pu = spec.stages[0].pu;
    assert!(
        spec.stages.iter().all(|s| s.pu == pu),
        "FPGA chains run within one device in this reproduction"
    );
    let runf = molecule
        .runf(pu)
        .ok_or_else(|| MoleculeError::Internal(format!("no runf on {pu}")))?
        .clone();
    let host = molecule.machine().host_cpu();
    let dma = molecule.machine().route(host, pu);
    let shm = Link::shared_mem();
    let cpu_coord = molecule.machine().calibration().cpu_os.ipc_segment; // host-side coordination of the copy path

    // Cache the whole chain in one image (keep-alive chain affinity, §5)
    // and start every sandbox. Functions already packed by a previous run
    // stay cached.
    let missing: Vec<FuncId> = spec
        .stages
        .iter()
        .map(|s| s.func.clone())
        .filter(|f| runf.state(ctx, &SandboxId::new(f.as_str())).is_err())
        .collect();
    if !missing.is_empty() {
        molecule.cache_fpga_functions(ctx, pu, &missing)?;
    }
    for stage in &spec.stages {
        let sandbox = SandboxId::new(stage.func.as_str());
        if runf.state(ctx, &sandbox).map_err(MoleculeError::Sandbox)?
            != vsandbox::spec::SandboxState::Running
        {
            runf.start(ctx, &sandbox).map_err(MoleculeError::Sandbox)?;
        }
    }

    let mut end_to_end = Vec::with_capacity(spec.rounds);
    let mut hops: Vec<Vec<SimDuration>> = vec![Vec::new(); n];
    for _ in 0..spec.rounds {
        let t0 = ctx.now();
        let mut bytes = spec.input_bytes;
        for (i, stage) in spec.stages.iter().enumerate() {
            let hop_start = ctx.now();
            if i == 0 {
                // Request data enters the device once, over DMA.
                ctx.sleep(dma.transfer_time(bytes));
            } else {
                match spec.comm {
                    CommMethod::FpgaCopy => {
                        // Caller copies to host DRAM, host coordinates, the
                        // callee copies back to device DRAM.
                        ctx.sleep(dma.transfer_time(bytes));
                        ctx.sleep(cpu_coord);
                        ctx.sleep(dma.transfer_time(bytes));
                    }
                    CommMethod::FpgaShm => {
                        // Zero-copy: the data stayed in a retained DRAM bank.
                        runf.device()
                            .retained_buffer(0, &format!("{}-hop", spec.name))
                            .map_err(|e| MoleculeError::Internal(e.to_string()))?;
                        ctx.sleep(shm.transfer_time(bytes));
                    }
                    _ => unreachable!("checked in run_chain"),
                }
            }
            hops[i].push(ctx.now() - hop_start);
            let exec = stage_exec(molecule, stage, bytes)?;
            let sandbox = SandboxId::new(stage.func.as_str());
            runf.invoke(ctx, &sandbox, exec).map_err(MoleculeError::Sandbox)?;
            bytes = output_bytes(molecule, &stage.func)?;
            // The producer leaves its output in a DRAM bank for the next
            // stage (retention keeps it across any image operations).
            runf.device()
                .retain_buffer(0, &format!("{}-hop", spec.name), bytes)
                .map_err(|e| MoleculeError::Internal(e.to_string()))?;
        }
        // Final result returns to the host over DMA.
        ctx.sleep(dma.transfer_time(bytes));
        end_to_end.push(ctx.now() - t0);
    }
    Ok(ChainOutcome { end_to_end, hops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{ExecModel, FunctionDef};
    use crate::runtime::{MoleculeConfig, StartupKind};
    use hetsim::engine::Simulation;
    use hetsim::fpga::{FpgaResources, KernelSpec};
    use hetsim::topology::Machine;
    use vsandbox::spec::LangRuntime;

    fn noop_fn(name: &str) -> FunctionDef {
        FunctionDef::builder(name, LangRuntime::NodeJs)
            .profiles(&[PuKind::Cpu, PuKind::Dpu])
            .exec(ExecModel::Fixed(SimDuration::ZERO))
            .output_bytes(512)
            .build()
    }

    fn molecule_cpu_dpu() -> Molecule {
        let m = Molecule::launch(Machine::paper_cpu_dpu_server(), MoleculeConfig::default());
        for name in ["front", "interact"] {
            m.register_function(noop_fn(name));
        }
        m
    }

    #[test]
    fn ipc_edge_is_10x_to_18x_faster_than_http() {
        // Fig. 12's headline: IPC-based DAG beats the Express baseline by
        // 10-18x on every edge.
        let m = molecule_cpu_dpu();
        let mut sim = Simulation::new();
        let m2 = m.clone();
        let h = sim.spawn("driver", move |ctx| {
            let mk = |comm| {
                ChainSpec::new(
                    format!("edge-{comm:?}"),
                    vec![ChainStage::new("front", PuId(0)), ChainStage::new("interact", PuId(0))],
                    comm,
                )
                .input_bytes(1024)
            };
            let ipc = run_chain(&m2, ctx, &mk(CommMethod::DirectIpc)).unwrap();
            let http = run_chain(&m2, ctx, &mk(CommMethod::HttpGateway)).unwrap();
            (ipc.mean_hop(1), http.mean_hop(1))
        });
        sim.run().unwrap();
        let (ipc, http) = h.take_result().unwrap();
        let ratio = http.ratio(ipc);
        assert!((8.0..=25.0).contains(&ratio), "http {http} / ipc {ipc} = {ratio}");
    }

    #[test]
    fn cross_pu_nipc_works_and_costs_more_than_local() {
        let m = molecule_cpu_dpu();
        let mut sim = Simulation::new();
        let m2 = m.clone();
        let h = sim.spawn("driver", move |ctx| {
            let local = ChainSpec::new(
                "local",
                vec![ChainStage::new("front", PuId(0)), ChainStage::new("interact", PuId(0))],
                CommMethod::DirectIpc,
            );
            let cross = ChainSpec::new(
                "cross",
                vec![ChainStage::new("front", PuId(0)), ChainStage::new("interact", PuId(1))],
                CommMethod::DirectIpc,
            );
            let l = run_chain(&m2, ctx, &local).unwrap();
            let c = run_chain(&m2, ctx, &cross).unwrap();
            (l.mean_hop(1), c.mean_hop(1))
        });
        sim.run().unwrap();
        let (local, cross) = h.take_result().unwrap();
        assert!(cross > local, "nIPC ({cross}) must cost more than local IPC ({local})");
        // But both stay well under a millisecond (Fig. 12 Molecule bars).
        assert!(cross < SimDuration::from_millis(1));
    }

    #[test]
    fn large_payload_cross_pu_chain_uses_descriptors() {
        // A 64 KiB hop across the CPU→DPU leg must ride the shared-segment
        // descriptor path (the generalized DRAM-retention hand-off), and the
        // elided staging must buy at least 2x over the pinned data plane
        // that copies every byte through the XPUcall transport.
        use xpu_shim::cluster::ShimConfig;
        const BIG: u64 = 64 * 1024;
        let big_fn = |name: &str| {
            FunctionDef::builder(name, LangRuntime::NodeJs)
                .profiles(&[PuKind::Cpu, PuKind::Dpu])
                .exec(ExecModel::Fixed(SimDuration::ZERO))
                .output_bytes(BIG)
                .build()
        };
        let run = |shim: ShimConfig| {
            let config = MoleculeConfig { shim, ..MoleculeConfig::default() };
            let m = Molecule::launch(Machine::paper_cpu_dpu_server(), config);
            for name in ["front", "interact"] {
                m.register_function(big_fn(name));
            }
            let mut sim = Simulation::new();
            let m2 = m.clone();
            let h = sim.spawn("driver", move |ctx| {
                let spec = ChainSpec::new(
                    "big",
                    vec![ChainStage::new("front", PuId(0)), ChainStage::new("interact", PuId(1))],
                    CommMethod::DirectIpc,
                )
                .input_bytes(BIG);
                run_chain(&m2, ctx, &spec).unwrap().mean_hop(1)
            });
            sim.run().unwrap();
            (h.take_result().unwrap(), m.cluster().stats())
        };
        let (fast, fast_stats) = run(ShimConfig::default());
        let (slow, slow_stats) = run(ShimConfig::pinned());
        assert!(
            fast_stats.descriptor_handoffs > 0,
            "large cross-PU hops must hand off descriptors: {fast_stats:?}"
        );
        assert_eq!(slow_stats.descriptor_handoffs, 0, "pinned config must stage every byte");
        // Both hops pay the same constant language-runtime serialization;
        // the 2x claim is about the transport leg underneath it.
        let serialize = Machine::paper_cpu_dpu_server().calibration().http_dag.ipc_runtime_overhead;
        assert!(
            (fast - serialize) * 2 <= slow - serialize,
            "descriptor hand-off ({fast}) must be >=2x faster than staging ({slow}) \
             net of the {serialize} runtime overhead"
        );
    }

    #[test]
    fn multi_round_chains_report_all_rounds() {
        let m = molecule_cpu_dpu();
        let mut sim = Simulation::new();
        let h = sim.spawn("driver", move |ctx| {
            let spec = ChainSpec::new(
                "rounds",
                vec![ChainStage::new("front", PuId(0)), ChainStage::new("interact", PuId(1))],
                CommMethod::DirectIpc,
            )
            .rounds(5);
            run_chain(&m, ctx, &spec).unwrap()
        });
        sim.run().unwrap();
        let outcome = h.take_result().unwrap();
        assert_eq!(outcome.end_to_end.len(), 5);
        assert_eq!(outcome.hops[0].len(), 5);
        assert_eq!(outcome.hops[1].len(), 5);
    }

    #[test]
    fn fpga_shm_chain_beats_copying() {
        // Fig. 13: the retention-based chain wins, about 1.95x at 5 stages.
        let machine = Machine::paper_f1_instance();
        let fpga = machine.pus_of_kind(PuKind::Fpga)[0];
        let m = Molecule::launch(machine, MoleculeConfig::default());
        let mut stages = Vec::new();
        for i in 0..5 {
            let name = format!("vec{i}");
            let kernel = KernelSpec {
                name: name.clone(),
                resources: FpgaResources { luts: 5_000, regs: 8_000, brams: 20, dsps: 36 },
            };
            m.register_function(
                FunctionDef::builder(name.clone(), LangRuntime::OpenCl)
                    .profiles(&[PuKind::Fpga])
                    .fpga(kernel, ExecModel::Fixed(SimDuration::from_micros(77)))
                    .output_bytes(65536)
                    .build(),
            );
            stages.push(ChainStage::new(name, fpga));
        }
        let mut sim = Simulation::new();
        let m2 = m.clone();
        let stages2 = stages.clone();
        let h = sim.spawn("driver", move |ctx| {
            let copy =
                ChainSpec::new("copy", stages2.clone(), CommMethod::FpgaCopy).input_bytes(65536);
            let shm = ChainSpec::new("shm", stages2, CommMethod::FpgaShm).input_bytes(65536);
            let c = run_chain(&m2, ctx, &copy).unwrap();
            let s = run_chain(&m2, ctx, &shm).unwrap();
            (c.mean_end_to_end(), s.mean_end_to_end())
        });
        sim.run().unwrap();
        let (copy, shm) = h.take_result().unwrap();
        let ratio = copy.ratio(shm);
        assert!((1.6..=2.3).contains(&ratio), "copy {copy} / shm {shm} = {ratio}");
    }

    #[test]
    fn plan_chain_colocates_and_runs() {
        let m = molecule_cpu_dpu();
        let mut sim = Simulation::new();
        let out = sim.spawn("driver", move |ctx| {
            let sched = crate::schedule::Scheduler::default();
            let spec = plan_chain(
                &m,
                &sched,
                "planned",
                &["front".into(), "interact".into()],
                CommMethod::DirectIpc,
            )
            .unwrap();
            // Chain co-location: both stages on the same PU.
            assert_eq!(spec.stages[0].pu, spec.stages[1].pu);
            let missing = plan_chain(&m, &sched, "bad", &["ghost".into()], CommMethod::DirectIpc)
                .unwrap_err();
            let outcome = run_chain(&m, ctx, &spec).unwrap();
            (missing, outcome.mean_end_to_end())
        });
        sim.run().unwrap();
        let (missing, e2e) = out.take_result().unwrap();
        assert!(matches!(missing, MoleculeError::UnknownFunction(_)));
        assert!(e2e > SimDuration::ZERO);
    }

    #[test]
    fn warm_gp_instances_can_be_prebooted_before_chains() {
        // The §6.6 methodology pre-boots instances; make sure the startup
        // and chain paths compose on the same Molecule deployment.
        let m = molecule_cpu_dpu();
        let mut sim = Simulation::new();
        let h = sim.spawn("driver", move |ctx| {
            m.bootstrap(ctx).unwrap();
            m.prepare_template(ctx, PuId(0), LangRuntime::NodeJs).unwrap();
            m.start_instance(ctx, &"front".into(), PuId(0), StartupKind::CforkLocal).unwrap();
            let spec = ChainSpec::new(
                "mixed",
                vec![ChainStage::new("front", PuId(0)), ChainStage::new("interact", PuId(0))],
                CommMethod::DirectIpc,
            );
            run_chain(&m, ctx, &spec).unwrap().mean_end_to_end()
        });
        sim.run().unwrap();
        assert!(h.take_result().unwrap() > SimDuration::ZERO);
    }
}
