//! The API gateway / global manager (paper Fig. 6).
//!
//! [`ApiGateway`] is the request-facing layer above [`Molecule`]: it places
//! incoming requests (profile selection), serves them from the warm pool
//! when possible, auto-scales by cold-starting new instances on misses, and
//! reaps idle instances under a keep-alive policy. It is the piece that
//! turns the runtime's mechanisms into the serverless behaviours the paper
//! promises (auto-scaling, §1; keep-alive, §5).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use hetsim::engine::ProcCtx;
use hetsim::pu::PuId;
use hetsim::time::{SimDuration, SimTime};
use parking_lot::Mutex;
use vsandbox::spec::{FuncId, LangRuntime};

use crate::error::MoleculeError;
use crate::keepalive::KeepAlivePolicy;
use crate::regions::RegionDirectory;
use crate::runtime::{InstanceId, Molecule, StartupKind};
use crate::schedule::Scheduler;

/// Gateway configuration.
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// Maximum warm instances kept per (function, PU).
    pub max_warm_per_function: usize,
    /// Startup path used to scale up (the ablation knob: Molecule uses
    /// cfork, Molecule-homo uses the cold baseline, Catalyzer-style systems
    /// use snapshots).
    pub scale_up: StartupKind,
    /// Instances an idle reap keeps alive in total.
    pub keepalive_capacity: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_warm_per_function: 4,
            scale_up: StartupKind::CforkLocal,
            keepalive_capacity: 64,
        }
    }
}

/// Outcome of one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestReport {
    /// End-to-end latency (queue + startup if cold + execution).
    pub latency: SimDuration,
    /// Whether a cold start was needed.
    pub cold_start: bool,
    /// The PU that served the request.
    pub pu: PuId,
    /// The serving instance.
    pub instance: InstanceId,
}

/// Counters the gateway keeps.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GatewayStats {
    /// Requests served from a warm instance.
    pub warm_hits: u64,
    /// Requests that required a cold start.
    pub cold_starts: u64,
    /// Instances retired by keep-alive reaping.
    pub reaped: u64,
    /// Requests re-routed away from a dead or circuit-open PU.
    pub failed_over: u64,
    /// Requests served on a non-preferred PU kind because every PU of the
    /// function's preferred kind was unavailable (e.g. a DPU function run
    /// on the CPU cost table).
    pub degraded: u64,
}

struct GatewayState {
    /// Idle warm instances per (function, PU).
    idle: HashMap<(FuncId, PuId), Vec<InstanceId>>,
    /// Every live instance the gateway created, with its function.
    owned: HashMap<InstanceId, (FuncId, PuId)>,
    /// Per-PU ownership index: the dead-PU purge reads the crashed PU's own
    /// instance set instead of scanning every live instance. At 10k+
    /// sandboxes per PU the full `owned` scan was the purge bottleneck.
    owned_by_pu: HashMap<PuId, HashSet<InstanceId>>,
    /// Live-instance count per function: "does this function still have a
    /// survivor anywhere?" is one lookup, not a scan of `owned`.
    live_funcs: HashMap<FuncId, usize>,
    /// Functions with an idle pool entry per PU — the purge's idle-pool
    /// sweep, again O(pools on the dead PU).
    idle_by_pu: HashMap<PuId, HashSet<FuncId>>,
    /// PUs requests must not be routed to (crashed or circuit-open), kept
    /// sorted for deterministic placement.
    avoid: std::collections::BTreeSet<PuId>,
    policy: Box<dyn KeepAlivePolicy>,
    stats: GatewayStats,
}

impl GatewayState {
    /// Every ownership mutation goes through `own`/`disown` so the per-PU
    /// and per-function indices can never drift from `owned`.
    fn own(&mut self, instance: InstanceId, func: &FuncId, pu: PuId) {
        self.owned.insert(instance, (func.clone(), pu));
        self.owned_by_pu.entry(pu).or_default().insert(instance);
        *self.live_funcs.entry(func.clone()).or_insert(0) += 1;
    }

    fn disown(&mut self, instance: InstanceId) -> Option<(FuncId, PuId)> {
        let (func, pu) = self.owned.remove(&instance)?;
        if let Some(set) = self.owned_by_pu.get_mut(&pu) {
            set.remove(&instance);
            if set.is_empty() {
                self.owned_by_pu.remove(&pu);
            }
        }
        if let Some(n) = self.live_funcs.get_mut(&func) {
            *n -= 1;
            if *n == 0 {
                self.live_funcs.remove(&func);
            }
        }
        Some((func, pu))
    }

    /// The idle pool for `(func, pu)`, creating (and indexing) it on demand.
    fn pool_entry(&mut self, func: &FuncId, pu: PuId) -> &mut Vec<InstanceId> {
        self.idle_by_pu.entry(pu).or_default().insert(func.clone());
        self.idle.entry((func.clone(), pu)).or_default()
    }

    /// Removes an idle pool key and its reverse-index entry.
    fn drop_pool(&mut self, func: &FuncId, pu: PuId) {
        self.idle.remove(&(func.clone(), pu));
        if let Some(funcs) = self.idle_by_pu.get_mut(&pu) {
            funcs.remove(func);
            if funcs.is_empty() {
                self.idle_by_pu.remove(&pu);
            }
        }
    }
}

/// The request-facing gateway over one Molecule deployment. Cheap to clone.
#[derive(Clone)]
pub struct ApiGateway {
    molecule: Molecule,
    scheduler: Scheduler,
    config: GatewayConfig,
    regions: RegionDirectory,
    state: Arc<Mutex<GatewayState>>,
}

impl fmt::Debug for ApiGateway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("ApiGateway")
            .field("live_instances", &st.owned.len())
            .field("stats", &st.stats)
            .finish()
    }
}

impl ApiGateway {
    /// Creates a gateway over `molecule` with a keep-alive `policy`.
    pub fn new(
        molecule: Molecule,
        scheduler: Scheduler,
        config: GatewayConfig,
        policy: Box<dyn KeepAlivePolicy>,
    ) -> ApiGateway {
        ApiGateway {
            molecule,
            scheduler,
            config,
            regions: RegionDirectory::new(),
            state: Arc::new(Mutex::new(GatewayState {
                idle: HashMap::new(),
                owned: HashMap::new(),
                owned_by_pu: HashMap::new(),
                live_funcs: HashMap::new(),
                idle_by_pu: HashMap::new(),
                avoid: std::collections::BTreeSet::new(),
                policy,
                stats: GatewayStats::default(),
            })),
        }
    }

    /// The underlying runtime.
    pub fn molecule(&self) -> &Molecule {
        &self.molecule
    }

    /// Gateway counters.
    pub fn stats(&self) -> GatewayStats {
        self.state.lock().stats
    }

    /// The directory of shared-state region hosts. `molecule-sched` keeps
    /// it current from the state layer's host observer and reads it for the
    /// state-locality placement term.
    pub fn region_directory(&self) -> &RegionDirectory {
        &self.regions
    }

    /// Live instances the gateway manages.
    pub fn live_instances(&self) -> usize {
        self.state.lock().owned.len()
    }

    /// Excludes a PU from placement and warm-pool reuse (crashed, or its
    /// circuit breaker opened). Idempotent.
    pub fn mark_pu_unschedulable(&self, pu: PuId) {
        self.state.lock().avoid.insert(pu);
    }

    /// Re-admits a PU for placement (its circuit breaker closed again).
    pub fn mark_pu_schedulable(&self, pu: PuId) {
        self.state.lock().avoid.remove(&pu);
    }

    /// The PUs currently excluded from placement, sorted.
    pub fn avoided_pus(&self) -> Vec<PuId> {
        self.state.lock().avoid.iter().copied().collect()
    }

    /// Purges every gateway record of a crashed PU: idle warm instances and
    /// ownership entries on `pu` are dropped (their sandboxes died with the
    /// PU — nothing to retire), the PU is marked unschedulable, and
    /// functions left with no live instance anywhere are evicted from the
    /// keep-alive policy so dead-PU entries cannot linger in the keep set.
    /// Returns the number of instances purged.
    pub fn purge_pu(&self, pu: PuId) -> usize {
        // Region hosting records die with the PU: retract them so the
        // state-locality term stops steering placements there.
        self.regions.retract_pu(pu);
        let mut st = self.state.lock();
        st.avoid.insert(pu);
        // Idle pools on the dead PU via the reverse index — O(pools there),
        // not a retain over every (function, PU) pool in the gateway.
        if let Some(funcs) = st.idle_by_pu.remove(&pu) {
            for func in funcs {
                st.idle.remove(&(func, pu));
            }
        }
        let mut purged: Vec<InstanceId> =
            st.owned_by_pu.get(&pu).map(|s| s.iter().copied().collect()).unwrap_or_default();
        purged.sort();
        let mut seen: HashSet<FuncId> = HashSet::new();
        let mut dead_funcs: Vec<FuncId> = Vec::new();
        for id in &purged {
            if let Some((func, _)) = st.disown(*id) {
                if seen.insert(func.clone()) {
                    dead_funcs.push(func);
                }
            }
        }
        // Keep-alive eviction: only forget functions with no survivors —
        // one live-count lookup each, not a scan of every owned instance.
        dead_funcs.retain(|f| !st.live_funcs.contains_key(f));
        dead_funcs.sort();
        st.policy.forget_many(&dead_funcs);
        telemetry::with(|r| {
            r.metrics().counter_add("gateway.purged_instances", purged.len() as u64);
        });
        purged.len()
    }

    /// Handles one request for `func` carrying `input_bytes`.
    ///
    /// A warm idle instance is reused when available; otherwise the gateway
    /// places the function, cold-starts an instance via the configured
    /// scale-up path, and serves the request on it. The instance returns to
    /// the idle pool afterwards (bounded per function).
    ///
    /// # Errors
    ///
    /// Placement or startup failures from the runtime.
    pub fn handle_request(
        &self,
        ctx: &mut ProcCtx,
        func: &FuncId,
        input_bytes: u64,
    ) -> Result<RequestReport, MoleculeError> {
        // Admission span: opened before the body so every downstream span
        // (startup, sandbox verbs, nIPC writes) becomes a child through the
        // ambient trace context; ended on every return path below.
        let prev = ctx.trace_ctx();
        let mut req_span = None;
        telemetry::with(|r| {
            req_span = Some(r.begin_span(
                ctx.lane(),
                ctx.now().as_nanos(),
                &format!("gateway:request {func}"),
                prev,
            ));
        });
        if req_span.is_some() {
            ctx.set_trace_ctx(req_span);
        }
        let out = self.do_handle_request(ctx, func, input_bytes);
        telemetry::with(|r| {
            if let Some(span) = req_span {
                r.end_span(ctx.lane(), ctx.now().as_nanos(), span);
            }
            match &out {
                Ok(rep) => {
                    let kind = if rep.cold_start { "cold" } else { "warm" };
                    r.metrics().counter_add(&format!("gateway.requests.{kind}"), 1);
                    r.metrics().observe_ns("gateway.request_ns", rep.latency.as_nanos());
                }
                Err(_) => r.metrics().counter_add("gateway.requests.err", 1),
            }
        });
        ctx.set_trace_ctx(prev);
        out
    }

    fn do_handle_request(
        &self,
        ctx: &mut ProcCtx,
        func: &FuncId,
        input_bytes: u64,
    ) -> Result<RequestReport, MoleculeError> {
        match self.try_serve(ctx, func, input_bytes) {
            Err(e) => {
                // Failover: the chosen PU turned out to be dead or
                // unresponsive mid-request. Quarantine it and re-route the
                // request to a survivor — the request is not lost.
                let Some(bad) = Self::failed_pu(&e) else { return Err(e) };
                self.mark_pu_unschedulable(bad);
                self.state.lock().stats.failed_over += 1;
                telemetry::with(|r| {
                    r.metrics().counter_add("gateway.failovers", 1);
                    r.instant(
                        ctx.lane(),
                        ctx.now().as_nanos(),
                        &format!("gateway:failover {func} away from pu{}", bad.0),
                        ctx.trace_ctx(),
                    );
                });
                self.try_serve(ctx, func, input_bytes)
            }
            ok => ok,
        }
    }

    /// The PU a fault-shaped error points at, if the error is one a
    /// failover can address. Public so schedulers layered above the gateway
    /// (e.g. `molecule-sched`) can drive their own failover/drain logic off
    /// the same classification.
    pub fn failed_pu(e: &MoleculeError) -> Option<PuId> {
        use xpu_shim::error::ShimError;
        match e {
            MoleculeError::PuUnavailable(pu)
            | MoleculeError::Shim(ShimError::PeerDead(pu) | ShimError::XcallTimeout(pu)) => {
                Some(*pu)
            }
            _ => None,
        }
    }

    fn try_serve(
        &self,
        ctx: &mut ProcCtx,
        func: &FuncId,
        input_bytes: u64,
    ) -> Result<RequestReport, MoleculeError> {
        let t0 = ctx.now();
        let def = self
            .molecule
            .registry()
            .get(func)
            .ok_or_else(|| MoleculeError::UnknownFunction(func.clone()))?;

        // 1. Warm pool first (never on a quarantined PU).
        let warm = {
            let mut st = self.state.lock();
            let mut found = None;
            for kind in &def.profiles {
                for pu in self.molecule.machine().pus_of_kind(*kind) {
                    if st.avoid.contains(&pu) {
                        continue;
                    }
                    if let Some(pool) = st.idle.get_mut(&(func.clone(), pu)) {
                        if let Some(inst) = pool.pop() {
                            found = Some((inst, pu));
                            break;
                        }
                    }
                }
                if found.is_some() {
                    break;
                }
            }
            found
        };

        let (instance, pu, cold) = match warm {
            Some((instance, pu)) => (instance, pu, false),
            None => {
                // 2. Miss: place on a surviving PU and scale up.
                let avoid: Vec<PuId> = self.avoided_pus();
                let pu =
                    self.scheduler.place_avoiding(self.molecule.machine(), &def, None, &avoid)?;
                self.note_degradation(ctx, &def, pu, &avoid);
                let how = self.effective_startup(pu);
                let started = self.molecule.start_instance(ctx, func, pu, how)?;
                let mut st = self.state.lock();
                st.own(started.instance, func, pu);
                (started.instance, pu, true)
            }
        };

        let report = self.molecule.invoke(ctx, instance, input_bytes)?;
        self.return_to_pool(ctx, &def, pu, instance, cold, report.latency)?;
        Ok(RequestReport { latency: ctx.now() - t0, cold_start: cold, pu, instance })
    }

    /// Serves one request pinned to `pu`: warm pool on `(func, pu)` first,
    /// otherwise a cold start *on that PU* — no internal placement and no
    /// failover. This is the dispatch primitive for external schedulers
    /// (`molecule-sched`'s per-PU run-queue workers) that have already
    /// made the placement decision; errors surface unhandled so the caller
    /// can drain and re-place.
    ///
    /// # Errors
    ///
    /// [`MoleculeError::PuUnavailable`] when `pu` is quarantined, plus any
    /// startup or invoke failure from the runtime.
    pub fn handle_request_on(
        &self,
        ctx: &mut ProcCtx,
        func: &FuncId,
        pu: PuId,
        input_bytes: u64,
    ) -> Result<RequestReport, MoleculeError> {
        let t0 = ctx.now();
        let def = self
            .molecule
            .registry()
            .get(func)
            .ok_or_else(|| MoleculeError::UnknownFunction(func.clone()))?;
        let warm = {
            let mut st = self.state.lock();
            if st.avoid.contains(&pu) {
                return Err(MoleculeError::PuUnavailable(pu));
            }
            st.idle.get_mut(&(func.clone(), pu)).and_then(Vec::pop)
        };
        let (instance, cold) = match warm {
            Some(inst) => (inst, false),
            None => {
                let how = self.effective_startup(pu);
                let started = self.molecule.start_instance(ctx, func, pu, how)?;
                self.state.lock().own(started.instance, func, pu);
                (started.instance, true)
            }
        };
        let report = self.molecule.invoke(ctx, instance, input_bytes)?;
        self.return_to_pool(ctx, &def, pu, instance, cold, report.latency)?;
        let kind = if cold { "cold" } else { "warm" };
        telemetry::with(|r| r.metrics().counter_add(&format!("gateway.requests.{kind}"), 1));
        Ok(RequestReport { latency: ctx.now() - t0, cold_start: cold, pu, instance })
    }

    /// Books a finished request: stats, keep-alive accounting, and the
    /// instance's return to the idle pool (bounded; overflow retires it).
    fn return_to_pool(
        &self,
        ctx: &mut ProcCtx,
        def: &crate::function::FunctionDef,
        pu: PuId,
        instance: InstanceId,
        cold: bool,
        exec_latency: SimDuration,
    ) -> Result<(), MoleculeError> {
        let now = ctx.now();
        let func = &def.id;
        let mut st = self.state.lock();
        if cold {
            st.stats.cold_starts += 1;
        } else {
            st.stats.warm_hits += 1;
        }
        st.policy.on_invoke(func, now, exec_latency, def.memory_mib as f64 / 128.0);
        let pool = st.pool_entry(func, pu);
        if pool.len() < self.config.max_warm_per_function {
            pool.push(instance);
        } else {
            st.disown(instance);
            drop(st);
            self.molecule.retire_instance(ctx, instance)?;
        }
        Ok(())
    }

    /// Idle warm instances of `func` currently pooled on `pu`.
    pub fn warm_idle_count(&self, func: &FuncId, pu: PuId) -> usize {
        self.state.lock().idle.get(&(func.clone(), pu)).map_or(0, Vec::len)
    }

    /// Cold-starts one instance of `func` on `pu` and parks it in the idle
    /// pool without serving a request — the autoscaler's grow primitive.
    /// The per-request pool bound does not apply here; the caller owns the
    /// target size.
    ///
    /// # Errors
    ///
    /// [`MoleculeError::PuUnavailable`] when `pu` is quarantined, plus any
    /// startup failure from the runtime.
    pub fn prewarm(
        &self,
        ctx: &mut ProcCtx,
        func: &FuncId,
        pu: PuId,
    ) -> Result<InstanceId, MoleculeError> {
        if self.state.lock().avoid.contains(&pu) {
            return Err(MoleculeError::PuUnavailable(pu));
        }
        let how = self.effective_startup(pu);
        let started = self.molecule.start_instance(ctx, func, pu, how)?;
        let mut st = self.state.lock();
        st.own(started.instance, func, pu);
        st.pool_entry(func, pu).push(started.instance);
        telemetry::with(|r| r.metrics().counter_add("gateway.prewarmed", 1));
        Ok(started.instance)
    }

    /// Retires idle instances of `func` on `pu` until at most `keep` remain
    /// pooled — the autoscaler's shrink primitive. Oldest instances go
    /// first. Returns the number retired.
    ///
    /// # Errors
    ///
    /// Teardown failures from the runtime.
    pub fn retire_idle_on(
        &self,
        ctx: &mut ProcCtx,
        func: &FuncId,
        pu: PuId,
        keep: usize,
    ) -> Result<usize, MoleculeError> {
        let to_retire: Vec<InstanceId> = {
            let mut st = self.state.lock();
            let Some(pool) = st.idle.get_mut(&(func.clone(), pu)) else { return Ok(0) };
            let excess = pool.len().saturating_sub(keep);
            let drained: Vec<InstanceId> = pool.drain(..excess).collect();
            if pool.is_empty() {
                st.drop_pool(func, pu);
            }
            for inst in &drained {
                st.disown(*inst);
            }
            st.stats.reaped += drained.len() as u64;
            drained
        };
        for inst in &to_retire {
            self.molecule.retire_instance(ctx, *inst)?;
        }
        Ok(to_retire.len())
    }

    /// Tells the keep-alive policy a request for `func` was shed by an
    /// admission controller: shed load is still demand, so policies should
    /// not let the function's keep-alive window lapse just because the
    /// request never executed.
    pub fn note_shed(&self, func: &FuncId, now: SimTime) {
        self.state.lock().policy.on_shed(func, now);
    }

    /// Records a service degradation: the request landed on a PU whose kind
    /// differs from the function's preferred profile because every PU of the
    /// preferred kind is quarantined — e.g. a DPU/FPGA function now billed
    /// on the CPU cost table.
    fn note_degradation(
        &self,
        ctx: &mut ProcCtx,
        def: &crate::function::FunctionDef,
        placed: PuId,
        avoid: &[PuId],
    ) {
        let Some(preferred) = def.profiles.first().copied() else { return };
        let machine = self.molecule.machine();
        let Some(spec) = machine.pu(placed) else { return };
        if spec.kind == preferred {
            return;
        }
        let preferred_all_down = machine.pus_of_kind(preferred).iter().all(|pu| avoid.contains(pu));
        if !preferred_all_down {
            return;
        }
        self.state.lock().stats.degraded += 1;
        telemetry::with(|r| {
            r.metrics().counter_add("gateway.degraded", 1);
            r.instant(
                ctx.lane(),
                ctx.now().as_nanos(),
                &format!("gateway:degraded {} {preferred}->{}", def.id, spec.kind),
                ctx.trace_ctx(),
            );
        });
    }

    /// Chooses the startup path for a PU: the configured scale-up if a
    /// template exists (or none is needed), falling back to a cold baseline.
    fn effective_startup(&self, pu: PuId) -> StartupKind {
        match self.config.scale_up {
            StartupKind::CforkLocal | StartupKind::CforkXpu { .. } => StartupKind::CforkLocal,
            other => other,
        }
        .pick_for(pu)
    }

    /// Retires idle instances the keep-alive policy no longer wants.
    ///
    /// # Errors
    ///
    /// Teardown failures from the runtime.
    pub fn reap_idle(&self, ctx: &mut ProcCtx) -> Result<usize, MoleculeError> {
        let now = ctx.now();
        let (to_retire, kept) = {
            let mut st = self.state.lock();
            // HashSet membership: one O(1) probe per idle pool instead of a
            // linear scan of the keep set for each.
            let keep: std::collections::HashSet<FuncId> =
                st.policy.keep_set(now, self.config.keepalive_capacity).into_iter().collect();
            let mut to_retire = Vec::new();
            for ((func, _pu), pool) in st.idle.iter_mut() {
                if !keep.contains(func) {
                    to_retire.append(pool);
                }
            }
            // HashMap iteration order is arbitrary; retire deterministically.
            to_retire.sort();
            let mut emptied: Vec<(FuncId, PuId)> = Vec::new();
            st.idle.retain(|key, pool| {
                if pool.is_empty() {
                    emptied.push(key.clone());
                }
                !pool.is_empty()
            });
            for (func, pu) in emptied {
                st.drop_pool(&func, pu);
            }
            for inst in &to_retire {
                st.disown(*inst);
            }
            st.stats.reaped += to_retire.len() as u64;
            (to_retire, keep.len())
        };
        let _ = kept;
        let count = to_retire.len();
        for inst in to_retire {
            self.molecule.retire_instance(ctx, inst)?;
        }
        telemetry::with(|r| r.metrics().counter_add("gateway.reaped", count as u64));
        Ok(count)
    }

    /// Pre-boots templates for every (general-purpose PU, language) pair the
    /// registered functions need.
    ///
    /// # Errors
    ///
    /// Template boot failures.
    pub fn prepare_all_templates(&self, ctx: &mut ProcCtx) -> Result<(), MoleculeError> {
        let mut langs: Vec<LangRuntime> = Vec::new();
        for id in self.molecule.registry().ids() {
            if let Some(def) = self.molecule.registry().get(&id) {
                if matches!(def.lang, LangRuntime::Python | LangRuntime::NodeJs)
                    && !langs.contains(&def.lang)
                {
                    langs.push(def.lang);
                }
            }
        }
        for pu in self.molecule.machine().pus() {
            if pu.kind.is_general_purpose() {
                for lang in &langs {
                    self.molecule.prepare_template(ctx, pu.id, *lang)?;
                }
            }
        }
        Ok(())
    }
}

impl StartupKind {
    /// Keeps the startup kind but pins any cross-PU fork to `pu`'s local
    /// template (the gateway issues commands from the host).
    fn pick_for(self, pu: PuId) -> StartupKind {
        match self {
            StartupKind::CforkXpu { .. } => StartupKind::CforkXpu { issued_from: PuId::HOST_CPU },
            other => {
                let _ = pu;
                other
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionDef;
    use crate::keepalive::{FixedWindow, Lru};
    use crate::runtime::MoleculeConfig;
    use hetsim::engine::Simulation;
    use hetsim::pu::PuKind;
    use hetsim::topology::Machine;

    fn gateway(scale_up: StartupKind) -> ApiGateway {
        let molecule = Molecule::launch(Machine::paper_cpu_dpu_server(), MoleculeConfig::default());
        molecule.register_function(
            FunctionDef::builder("img", LangRuntime::Python)
                .profiles(&[PuKind::Cpu, PuKind::Dpu])
                .exec_ms(10.0)
                .init_ms(6.0)
                .cfork_first_run_ms(1.0)
                .build(),
        );
        ApiGateway::new(
            molecule,
            Scheduler::default(),
            GatewayConfig { scale_up, ..GatewayConfig::default() },
            Box::new(Lru::new()),
        )
    }

    #[test]
    fn first_request_is_cold_second_is_warm() {
        let gw = gateway(StartupKind::CforkLocal);
        let mut sim = Simulation::new();
        let g = gw.clone();
        let out = sim.spawn("gw", move |ctx| {
            g.molecule().bootstrap(ctx).unwrap();
            g.prepare_all_templates(ctx).unwrap();
            let first = g.handle_request(ctx, &"img".into(), 1024).unwrap();
            let second = g.handle_request(ctx, &"img".into(), 1024).unwrap();
            (first, second)
        });
        sim.run().unwrap();
        let (first, second) = out.take_result().unwrap();
        assert!(first.cold_start);
        assert!(!second.cold_start);
        assert!(first.latency > second.latency);
        assert_eq!(first.instance, second.instance, "warm pool reuses the instance");
        let stats = gw.stats();
        assert_eq!(stats.cold_starts, 1);
        assert_eq!(stats.warm_hits, 1);
    }

    #[test]
    fn cfork_scale_up_beats_cold_and_snapshot_sits_between() {
        // The startup ablation (Fig. 15 design space): cold > snapshot >
        // cfork for the first-request latency.
        let mut results = Vec::new();
        for how in [StartupKind::ColdBaseline, StartupKind::Snapshot, StartupKind::CforkLocal] {
            let gw = gateway(how);
            let mut sim = Simulation::new();
            let g = gw.clone();
            let out = sim.spawn("gw", move |ctx| {
                g.molecule().bootstrap(ctx).unwrap();
                g.prepare_all_templates(ctx).unwrap();
                g.handle_request(ctx, &"img".into(), 1024).unwrap().latency
            });
            sim.run().unwrap();
            results.push(out.take_result().unwrap());
        }
        let (cold, snapshot, cfork) = (results[0], results[1], results[2]);
        assert!(cold > snapshot, "cold {cold} must exceed snapshot {snapshot}");
        assert!(snapshot > cfork, "snapshot {snapshot} must exceed cfork {cfork}");
    }

    #[test]
    fn pool_overflow_retires_excess_instances() {
        let gw = gateway(StartupKind::CforkLocal);
        let mut sim = Simulation::new();
        let g = gw.clone();
        sim.spawn("gw", move |ctx| {
            g.molecule().bootstrap(ctx).unwrap();
            g.prepare_all_templates(ctx).unwrap();
            // Burst of sequential requests: the pool caps at 4 per function.
            for _ in 0..8 {
                g.handle_request(ctx, &"img".into(), 64).unwrap();
            }
        });
        sim.run().unwrap();
        // Sequential requests reuse one instance: 1 cold, 7 warm.
        let stats = gw.stats();
        assert_eq!(stats.cold_starts, 1);
        assert_eq!(stats.warm_hits, 7);
        assert_eq!(gw.live_instances(), 1);
    }

    #[test]
    fn reaping_evicts_expired_functions() {
        let molecule = Molecule::launch(Machine::paper_cpu_dpu_server(), MoleculeConfig::default());
        molecule.register_function(
            FunctionDef::builder("img", LangRuntime::Python).exec_ms(1.0).build(),
        );
        let gw = ApiGateway::new(
            molecule,
            Scheduler::default(),
            GatewayConfig::default(),
            Box::new(FixedWindow::new(SimDuration::from_millis(50))),
        );
        let mut sim = Simulation::new();
        let g = gw.clone();
        let out = sim.spawn("gw", move |ctx| {
            g.molecule().bootstrap(ctx).unwrap();
            g.prepare_all_templates(ctx).unwrap();
            g.handle_request(ctx, &"img".into(), 64).unwrap();
            let before = g.live_instances();
            ctx.sleep(SimDuration::from_millis(200)); // window expires
            let reaped = g.reap_idle(ctx).unwrap();
            (before, reaped, g.live_instances())
        });
        sim.run().unwrap();
        let (before, reaped, after) = out.take_result().unwrap();
        assert_eq!(before, 1);
        assert_eq!(reaped, 1);
        assert_eq!(after, 0);
        assert_eq!(gw.stats().reaped, 1);
    }

    #[test]
    fn unknown_function_is_rejected() {
        let gw = gateway(StartupKind::CforkLocal);
        let mut sim = Simulation::new();
        let out =
            sim.spawn("gw", move |ctx| gw.handle_request(ctx, &"ghost".into(), 1).unwrap_err());
        sim.run().unwrap();
        assert!(matches!(out.take_result().unwrap(), MoleculeError::UnknownFunction(_)));
    }
}
