//! Keep-alive policies (paper §5 "Keep-alive policies").
//!
//! Molecule decides which function instances to keep warm — and, on FPGAs,
//! which kernels to pack into the cached vectorized image. The paper
//! inherits existing approaches: a fixed keep-alive window (the common
//! 10-minute policy), LRU eviction, and FaasCache's Greedy-Dual-style
//! priority. Chain-affinity is layered on top: "Molecule now will tend to
//! cache functions in a chain in the same image".

use std::collections::{HashMap, HashSet};
use std::fmt;

use hetsim::time::{SimDuration, SimTime};
use vsandbox::spec::FuncId;

/// Arena-backed `FuncId → V` map for the keep-alive policies: dense slot
/// vector + free list + id→slot index. At 10k+ tracked functions per PU this
/// beats a plain `HashMap` in the two ways density stresses it: a *touch* of
/// an already-tracked function is a slot write (the `HashMap` path cloned the
/// `FuncId` string on every invoke), and forget/insert churn reuses freed
/// slots instead of rehashing, so `keep_set` scans a dense vector.
#[derive(Debug, Default)]
pub(crate) struct FlatScoreMap<V> {
    slots: Vec<Option<(FuncId, V)>>,
    free: Vec<u32>,
    index: HashMap<FuncId, u32>,
}

impl<V> FlatScoreMap<V> {
    pub(crate) fn new() -> FlatScoreMap<V> {
        FlatScoreMap { slots: Vec::new(), free: Vec::new(), index: HashMap::new() }
    }

    /// Inserts or overwrites; only a first-time insert clones the id.
    pub(crate) fn touch(&mut self, func: &FuncId, value: V) {
        if let Some(&i) = self.index.get(func) {
            self.slots[i as usize].as_mut().expect("indexed slot is live").1 = value;
            return;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some((func.clone(), value));
                i
            }
            None => {
                self.slots.push(Some((func.clone(), value)));
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(func.clone(), i);
    }

    /// Updates an existing entry in place; returns whether it was tracked.
    pub(crate) fn update(&mut self, func: &FuncId, f: impl FnOnce(&mut V)) -> bool {
        match self.index.get(func) {
            Some(&i) => {
                f(&mut self.slots[i as usize].as_mut().expect("indexed slot is live").1);
                true
            }
            None => false,
        }
    }

    pub(crate) fn remove(&mut self, func: &FuncId) -> Option<V> {
        let i = self.index.remove(func)?;
        let (_, v) = self.slots[i as usize].take().expect("indexed slot is live");
        self.free.push(i);
        Some(v)
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (&FuncId, &V)> {
        self.slots.iter().flatten().map(|(k, v)| (k, v))
    }
}

/// Top-`capacity` selection without sorting the whole candidate set:
/// `select_nth_unstable_by` partitions around the k-th best in O(n), then
/// only the kept prefix is sorted — O(n + k log k) per keep-alive decision
/// instead of O(n log n) over every tracked function. The comparator must be
/// a total order (all policies tie-break on the function id), so the result
/// is identical to a full sort + truncate.
fn top_k_by<T>(
    mut items: Vec<T>,
    capacity: usize,
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering,
) -> Vec<T> {
    if capacity == 0 {
        return Vec::new();
    }
    if items.len() > capacity {
        items.select_nth_unstable_by(capacity - 1, &cmp);
        items.truncate(capacity);
    }
    items.sort_by(&cmp);
    items
}

/// A cache-eviction policy over warm function instances.
///
/// Implementations are deterministic: ties break on the function id.
pub trait KeepAlivePolicy: fmt::Debug + Send {
    /// Records an invocation of `func` at `now` with `exec` runtime and
    /// `size` (relative resource footprint).
    fn on_invoke(&mut self, func: &FuncId, now: SimTime, exec: SimDuration, size: f64);

    /// Removes a function from consideration.
    fn forget(&mut self, func: &FuncId);

    /// Removes several functions at once — the bulk path the health checker
    /// uses when a PU dies and every instance it hosted disappears. Without
    /// this purge, entries for functions that only ever lived on the dead PU
    /// would stay in the keep set forever.
    fn forget_many(&mut self, funcs: &[FuncId]) {
        for func in funcs {
            self.forget(func);
        }
    }

    /// Records that a request for `func` was *shed* at `now` by an admission
    /// controller before executing. Shed load is still demand: recency-based
    /// policies refresh the function's last-use clock so an overloaded
    /// function is not reaped mid-burst just because its requests bounced.
    /// Default: ignore.
    fn on_shed(&mut self, func: &FuncId, now: SimTime) {
        let _ = (func, now);
    }

    /// The functions to keep warm, best first, at most `capacity`.
    fn keep_set(&mut self, now: SimTime, capacity: usize) -> Vec<FuncId>;
}

/// Keep instances warm for a fixed window after their last use (the
/// 10-minute policy of commercial platforms).
#[derive(Debug)]
pub struct FixedWindow {
    window: SimDuration,
    last_used: FlatScoreMap<SimTime>,
}

impl FixedWindow {
    /// Creates the policy with the given keep-alive window.
    pub fn new(window: SimDuration) -> FixedWindow {
        FixedWindow { window, last_used: FlatScoreMap::new() }
    }
}

impl KeepAlivePolicy for FixedWindow {
    fn on_invoke(&mut self, func: &FuncId, now: SimTime, _exec: SimDuration, _size: f64) {
        self.last_used.touch(func, now);
    }

    fn forget(&mut self, func: &FuncId) {
        self.last_used.remove(func);
    }

    fn on_shed(&mut self, func: &FuncId, now: SimTime) {
        // Only refresh functions we already track: a shed request for a
        // never-invoked function has no instance to keep alive.
        self.last_used.update(func, |t| *t = now);
    }

    fn keep_set(&mut self, now: SimTime, capacity: usize) -> Vec<FuncId> {
        let alive: Vec<(&FuncId, &SimTime)> = self
            .last_used
            .iter()
            .filter(|(_, &t)| now.saturating_duration_since(t) <= self.window)
            .collect();
        top_k_by(alive, capacity, |a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)))
            .into_iter()
            .map(|(f, _)| f.clone())
            .collect()
    }
}

/// Least-recently-used eviction.
#[derive(Debug, Default)]
pub struct Lru {
    last_used: FlatScoreMap<SimTime>,
}

impl Lru {
    /// Creates an empty LRU policy.
    pub fn new() -> Lru {
        Lru::default()
    }
}

impl KeepAlivePolicy for Lru {
    fn on_invoke(&mut self, func: &FuncId, now: SimTime, _exec: SimDuration, _size: f64) {
        self.last_used.touch(func, now);
    }

    fn forget(&mut self, func: &FuncId) {
        self.last_used.remove(func);
    }

    fn on_shed(&mut self, func: &FuncId, now: SimTime) {
        self.last_used.update(func, |t| *t = now);
    }

    fn keep_set(&mut self, _now: SimTime, capacity: usize) -> Vec<FuncId> {
        let all: Vec<(&FuncId, &SimTime)> = self.last_used.iter().collect();
        top_k_by(all, capacity, |a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)))
            .into_iter()
            .map(|(f, _)| f.clone())
            .collect()
    }
}

/// FaasCache-style Greedy-Dual keep-alive: priority = clock at last use +
/// (cold-start cost) / size, so expensive-to-boot, small, hot functions stay
/// cached longest.
#[derive(Debug, Default)]
pub struct GreedyDual {
    clock: f64,
    priority: FlatScoreMap<f64>,
}

impl GreedyDual {
    /// Creates an empty Greedy-Dual policy.
    pub fn new() -> GreedyDual {
        GreedyDual::default()
    }
}

impl KeepAlivePolicy for GreedyDual {
    fn on_invoke(&mut self, func: &FuncId, _now: SimTime, exec: SimDuration, size: f64) {
        let cost = exec.as_millis_f64();
        let p = self.clock + cost / size.max(1e-9);
        self.priority.touch(func, p);
    }

    fn forget(&mut self, func: &FuncId) {
        // Greedy-Dual: advance the clock to the evicted priority, aging the
        // rest of the cache.
        if let Some(p) = self.priority.remove(func) {
            self.clock = self.clock.max(p);
        }
    }

    fn keep_set(&mut self, _now: SimTime, capacity: usize) -> Vec<FuncId> {
        let all: Vec<(&FuncId, &f64)> = self.priority.iter().collect();
        top_k_by(all, capacity, |a, b| b.1.partial_cmp(a.1).unwrap().then_with(|| a.0.cmp(b.0)))
            .into_iter()
            .map(|(f, _)| f.clone())
            .collect()
    }
}

/// Wraps a policy with chain affinity: members of the same chain are pulled
/// into the keep set together ("Molecule now will tend to cache functions in
/// a chain in the same image", §5).
#[derive(Debug)]
pub struct ChainAffinity<P> {
    inner: P,
    chains: Vec<Vec<FuncId>>,
    /// Precomputed member → chain index, so the per-function lookup in
    /// `keep_set` is O(1) instead of a linear scan over every chain.
    chain_index: HashMap<FuncId, usize>,
}

impl<P: KeepAlivePolicy> ChainAffinity<P> {
    /// Wraps `inner`, honouring the given chain groupings. A function
    /// appearing in several chains belongs to the first (matching the scan
    /// order this index replaces).
    pub fn new(inner: P, chains: Vec<Vec<FuncId>>) -> ChainAffinity<P> {
        let mut chain_index = HashMap::new();
        for (i, chain) in chains.iter().enumerate() {
            for member in chain {
                chain_index.entry(member.clone()).or_insert(i);
            }
        }
        ChainAffinity { inner, chains, chain_index }
    }

    fn chain_of(&self, func: &FuncId) -> Option<&[FuncId]> {
        self.chain_index.get(func).map(|&i| self.chains[i].as_slice())
    }
}

impl<P: KeepAlivePolicy> KeepAlivePolicy for ChainAffinity<P> {
    fn on_invoke(&mut self, func: &FuncId, now: SimTime, exec: SimDuration, size: f64) {
        self.inner.on_invoke(func, now, exec, size);
    }

    fn forget(&mut self, func: &FuncId) {
        self.inner.forget(func);
    }

    fn on_shed(&mut self, func: &FuncId, now: SimTime) {
        self.inner.on_shed(func, now);
    }

    fn keep_set(&mut self, now: SimTime, capacity: usize) -> Vec<FuncId> {
        let base = self.inner.keep_set(now, capacity);
        let mut out: Vec<FuncId> = Vec::new();
        let mut out_set: HashSet<FuncId> = HashSet::new();
        for f in base {
            if out.len() >= capacity {
                break;
            }
            match self.chain_of(&f) {
                Some(chain)
                    if chain.len()
                        <= capacity - out.len()
                            + chain.iter().filter(|m| out_set.contains(*m)).count() =>
                {
                    for member in chain {
                        if out.len() < capacity && out_set.insert(member.clone()) {
                            out.push(member.clone());
                        }
                    }
                }
                _ => {
                    if out_set.insert(f.clone()) {
                        out.push(f);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(name: &str) -> FuncId {
        FuncId::new(name)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn fixed_window_expires_idle_functions() {
        let mut p = FixedWindow::new(SimDuration::from_millis(100));
        p.on_invoke(&f("a"), t(0), SimDuration::from_millis(1), 1.0);
        p.on_invoke(&f("b"), t(50), SimDuration::from_millis(1), 1.0);
        assert_eq!(p.keep_set(t(120), 10), vec![f("b")]); // "a" expired
        assert_eq!(p.keep_set(t(500), 10), Vec::<FuncId>::new());
    }

    #[test]
    fn lru_orders_by_recency_and_respects_capacity() {
        let mut p = Lru::new();
        for (name, at) in [("a", 10), ("b", 30), ("c", 20)] {
            p.on_invoke(&f(name), t(at), SimDuration::from_millis(1), 1.0);
        }
        assert_eq!(p.keep_set(t(40), 2), vec![f("b"), f("c")]);
        p.forget(&f("b"));
        assert_eq!(p.keep_set(t(40), 2), vec![f("c"), f("a")]);
    }

    #[test]
    fn greedy_dual_prefers_expensive_small_functions() {
        let mut p = GreedyDual::new();
        // "cheap": fast to boot, large. "dear": slow to boot, small.
        p.on_invoke(&f("cheap"), t(0), SimDuration::from_millis(10), 4.0);
        p.on_invoke(&f("dear"), t(0), SimDuration::from_millis(400), 1.0);
        assert_eq!(p.keep_set(t(1), 1), vec![f("dear")]);
        // Eviction ages the cache: after forgetting "dear", a new cheap
        // function competes against the raised clock.
        p.forget(&f("dear"));
        p.on_invoke(&f("late"), t(2), SimDuration::from_millis(1), 1.0);
        let keep = p.keep_set(t(3), 2);
        assert_eq!(keep[0], f("late"), "recency via clock aging wins");
    }

    #[test]
    fn chain_affinity_pulls_whole_chains() {
        let chains = vec![vec![f("front"), f("interact"), f("smarthome")]];
        let mut p = ChainAffinity::new(Lru::new(), chains);
        for (name, at) in [("front", 10), ("interact", 11), ("smarthome", 12), ("solo", 40)] {
            p.on_invoke(&f(name), t(at), SimDuration::from_millis(1), 1.0);
        }
        // Capacity 4: solo is most recent, then the whole chain comes along.
        let keep = p.keep_set(t(50), 4);
        assert_eq!(keep.len(), 4);
        assert!(keep.contains(&f("front")));
        assert!(keep.contains(&f("interact")));
        assert!(keep.contains(&f("smarthome")));
        assert!(keep.contains(&f("solo")));
    }

    #[test]
    fn forget_many_purges_dead_pu_functions() {
        let mut p = Lru::new();
        for (name, at) in [("a", 10), ("b", 20), ("c", 30)] {
            p.on_invoke(&f(name), t(at), SimDuration::from_millis(1), 1.0);
        }
        // "a" and "c" only lived on a PU that just died.
        p.forget_many(&[f("a"), f("c")]);
        assert_eq!(p.keep_set(t(40), 10), vec![f("b")]);
    }

    #[test]
    fn shed_requests_refresh_the_keepalive_window() {
        let mut p = FixedWindow::new(SimDuration::from_millis(100));
        p.on_invoke(&f("a"), t(0), SimDuration::from_millis(1), 1.0);
        // The burst keeps bouncing off admission control; the window must
        // not lapse while demand persists.
        p.on_shed(&f("a"), t(90));
        assert_eq!(p.keep_set(t(150), 10), vec![f("a")]);
        // Shedding an unknown function tracks nothing.
        p.on_shed(&f("ghost"), t(90));
        assert_eq!(p.keep_set(t(150), 10), vec![f("a")]);
    }

    #[test]
    fn top_k_selection_matches_a_full_sort() {
        // The select_nth fast path must be indistinguishable from the old
        // sort-everything implementation, ties included.
        let mut p = Lru::new();
        for i in 0..200u64 {
            // Deliberate collisions: several funcs share each timestamp.
            p.on_invoke(
                &f(&format!("fn-{i:03}")),
                t((i * 37) % 50),
                SimDuration::from_millis(1),
                1.0,
            );
        }
        for capacity in [0, 1, 7, 50, 199, 200, 500] {
            let got = p.keep_set(t(10_000), capacity);
            let mut expect: Vec<(FuncId, SimTime)> =
                p.last_used.iter().map(|(k, v)| (k.clone(), *v)).collect();
            expect.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let expect: Vec<FuncId> = expect.into_iter().take(capacity).map(|(k, _)| k).collect();
            assert_eq!(got, expect, "capacity {capacity}");
        }
    }

    #[test]
    fn deterministic_tie_breaks() {
        let mut p = Lru::new();
        p.on_invoke(&f("b"), t(5), SimDuration::from_millis(1), 1.0);
        p.on_invoke(&f("a"), t(5), SimDuration::from_millis(1), 1.0);
        assert_eq!(p.keep_set(t(6), 2), vec![f("a"), f("b")]);
    }
}
