//! DPU I/O offload: a pool of DPU-resident proxy processes (paper §6.4,
//! "offloading the I/O path").
//!
//! At 10k+ resident sandboxes per PU the host CPU's time goes to I/O
//! shepherding — staging request bodies in and out of sandboxes — not to
//! function compute. Molecule's answer is the same one the paper gives for
//! the data plane generally: move the byte-pushing to the DPU. A
//! [`ProxyPool`] xSpawns `proxies_per_dpu` long-lived proxy processes on
//! every DPU in the machine. Host-side functions hand their I/O to a proxy
//! over existing nIPC — bodies at or above the zero-copy threshold (16 KiB,
//! [`SegmentCosts::min_payload`]) travel as capability-guarded descriptors,
//! never staged through the host kernel — and the proxy performs the device
//! I/O on the DPU, replying on a per-client reply FIFO.
//!
//! Three properties the density suite leans on:
//!
//! * **Per-proxy multiplexing.** One proxy serves many clients: requests
//!   from any client interleave on the proxy's single request FIFO, and each
//!   reply routes back over the reply FIFO named in the request frame.
//! * **Bounded in-flight windows.** Each proxy carries a client-side
//!   admission window ([`ProxyPoolConfig::window`]); an offload blocks (in
//!   virtual time) for a window slot before writing, so a slow DPU
//!   back-pressures callers instead of growing an unbounded queue.
//! * **Fault-plane-shaped failure.** A proxy dies exactly the way any nIPC
//!   peer dies: writes surface [`ShimError::PeerDead`], replies stop and the
//!   client's timeout fires. Every issued request is then *reclaimed exactly
//!   once* — the [ledger](ProxyStats) transitions each request id
//!   `InFlight → Completed` xor `InFlight → Reclaimed`, and any double
//!   transition is counted in [`ProxyStats::double_faults`] (asserted zero
//!   by the simcheck suite under DPU-kill fault plans).
//!
//! [`SegmentCosts::min_payload`]: hetsim::calib::SegmentCosts

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hetsim::engine::{ProcCtx, SimSemaphore};
use hetsim::pu::{PuId, PuKind};
use hetsim::time::SimDuration;
use parking_lot::Mutex;
use xpu_shim::cap::Perm;
use xpu_shim::cluster::ShimCluster;
use xpu_shim::error::ShimError;
use xpu_shim::fifo::{XpuFifoReader, XpuFifoWriter};
use xpu_shim::id::{GlobalUuid, ObjId, XpuPid};

/// Tuning knobs for a [`ProxyPool`].
#[derive(Debug, Clone, Copy)]
pub struct ProxyPoolConfig {
    /// Proxy processes xSpawned on each DPU.
    pub proxies_per_dpu: usize,
    /// Client-side in-flight window per proxy: offloads beyond this block
    /// for a slot instead of queueing unboundedly on the request FIFO.
    pub window: u64,
    /// Simulated device service time the proxy spends per request (the
    /// storage/NIC work that offload moves off the host CPU).
    pub device_service: SimDuration,
    /// How long a client waits for a reply before reclaiming the request.
    pub reply_timeout: SimDuration,
}

impl Default for ProxyPoolConfig {
    fn default() -> ProxyPoolConfig {
        ProxyPoolConfig {
            proxies_per_dpu: 2,
            window: 32,
            device_service: SimDuration::from_micros(3),
            reply_timeout: SimDuration::from_millis(2),
        }
    }
}

/// Why an offload failed.
#[derive(Debug)]
pub enum ProxyError {
    /// Every proxy's DPU is marked dead — nothing to route to.
    NoProxy,
    /// No reply within [`ProxyPoolConfig::reply_timeout`]; the request was
    /// reclaimed.
    Timeout,
    /// The shim layer failed the hand-off (typically
    /// [`ShimError::PeerDead`] when the proxy's DPU died mid-write).
    Shim(ShimError),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::NoProxy => write!(f, "no live proxy to offload to"),
            ProxyError::Timeout => write!(f, "proxy reply timed out; request reclaimed"),
            ProxyError::Shim(e) => write!(f, "proxy hand-off failed: {e}"),
        }
    }
}

impl std::error::Error for ProxyError {}

impl From<ShimError> for ProxyError {
    fn from(e: ShimError) -> ProxyError {
        ProxyError::Shim(e)
    }
}

/// A completed offload, as reported by the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProxyReply {
    /// Bytes of body the proxy pushed to the device.
    pub bytes_done: u64,
}

/// Exactly-once ledger counters. Invariant the density suites assert:
/// `issued == completed + reclaimed` once quiescent, and `double_faults`
/// is always zero — no request is ever completed *and* reclaimed, or
/// either twice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Requests handed a fresh id (the only entry point).
    pub issued: u64,
    /// Requests whose reply reached their issuer.
    pub completed: u64,
    /// Requests abandoned — write failed or reply timed out.
    pub reclaimed: u64,
    /// Replies that arrived after their request was reclaimed. Legal (the
    /// DPU finished the work; the client had given up) and counted once.
    pub late_replies: u64,
    /// Attempted double transitions. Must stay zero.
    pub double_faults: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqState {
    InFlight,
    Completed,
    Reclaimed,
}

/// The exactly-once request ledger. Terminal states are retained so a
/// duplicate or late transition is *detected* (as a `late_replies` or
/// `double_faults` count) rather than silently re-admitted.
#[derive(Debug, Default)]
struct Ledger {
    next_id: u64,
    states: HashMap<u64, ReqState>,
    stats: ProxyStats,
}

impl Ledger {
    fn issue(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.states.insert(id, ReqState::InFlight);
        self.stats.issued += 1;
        id
    }

    fn complete(&mut self, id: u64) {
        match self.states.get_mut(&id) {
            Some(s @ ReqState::InFlight) => {
                *s = ReqState::Completed;
                self.stats.completed += 1;
            }
            Some(ReqState::Reclaimed) => self.stats.late_replies += 1,
            Some(ReqState::Completed) | None => self.stats.double_faults += 1,
        }
    }

    fn reclaim(&mut self, id: u64) {
        match self.states.get_mut(&id) {
            Some(s @ ReqState::InFlight) => {
                *s = ReqState::Reclaimed;
                self.stats.reclaimed += 1;
            }
            _ => self.stats.double_faults += 1,
        }
    }
}

/// One DPU-resident proxy endpoint.
struct ProxyEndpoint {
    pid: XpuPid,
    pu: PuId,
    req_uuid: GlobalUuid,
    req_obj: ObjId,
    window: SimSemaphore,
}

struct PoolInner {
    cluster: ShimCluster,
    config: ProxyPoolConfig,
    proxies: Vec<ProxyEndpoint>,
    ledger: Mutex<Ledger>,
    rr: Mutex<usize>,
    dead: Mutex<HashSet<PuId>>,
}

/// A pool of DPU-resident I/O proxy processes. Cheap to clone; all clones
/// share the ledger and routing state.
#[derive(Clone)]
pub struct ProxyPool {
    inner: Arc<PoolInner>,
}

impl fmt::Debug for ProxyPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProxyPool")
            .field("proxies", &self.inner.proxies.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// A host-side client registered with the pool: owns its reply FIFO and a
/// connected writer to every proxy's request FIFO.
pub struct ProxyClient {
    pid: XpuPid,
    reply_fifo: XpuFifoReader,
    reply_uuid: GlobalUuid,
    writers: Vec<XpuFifoWriter>,
}

impl ProxyClient {
    /// The client's process identity.
    pub fn pid(&self) -> XpuPid {
        self.pid
    }
}

// Wire format. Request: req_id u64 LE | uuid_len u16 LE | reply-uuid bytes
// | body. Reply: req_id u64 LE | bytes_done u64 LE. The body rides the
// frame itself, so a ≥16 KiB body pushes the whole frame over the
// zero-copy threshold and the shim hands off a descriptor instead of
// staging bytes.
//
// `u64::MAX` is reserved as the shutdown sentinel: the ledger counter would
// need ~10^19 requests to collide with it.
const SHUTDOWN_ID: u64 = u64::MAX;
fn encode_request(req_id: u64, reply_uuid: &GlobalUuid, body: &Bytes) -> Bytes {
    let uuid = reply_uuid.as_str().as_bytes();
    let mut buf = BytesMut::with_capacity(8 + 2 + uuid.len() + body.len());
    buf.put_u64_le(req_id);
    buf.put_u16_le(uuid.len() as u16);
    buf.put_slice(uuid);
    buf.put_slice(body);
    buf.freeze()
}

fn decode_request(mut raw: Bytes) -> Option<(u64, GlobalUuid, u64)> {
    if raw.len() < 10 {
        return None;
    }
    let req_id = raw.get_u64_le();
    let uuid_len = raw.get_u16_le() as usize;
    if raw.len() < uuid_len {
        return None;
    }
    let uuid = String::from_utf8(raw.split_to(uuid_len).to_vec()).ok()?;
    Some((req_id, GlobalUuid::new(uuid), raw.len() as u64))
}

fn encode_reply(req_id: u64, bytes_done: u64) -> Bytes {
    let mut buf = BytesMut::with_capacity(16);
    buf.put_u64_le(req_id);
    buf.put_u64_le(bytes_done);
    buf.freeze()
}

fn decode_reply(mut raw: Bytes) -> Option<(u64, u64)> {
    if raw.len() < 16 {
        return None;
    }
    Some((raw.get_u64_le(), raw.get_u64_le()))
}

impl ProxyPool {
    /// Deploys the pool: xSpawns `proxies_per_dpu` proxy processes on every
    /// DPU in the machine, each blocked on its own request FIFO. Mirrors the
    /// executor wiring: the proxy pid is attached *before* the xSpawn so the
    /// request FIFO can be created under its ownership, and the serving body
    /// acts as that pid.
    ///
    /// # Errors
    ///
    /// Shim failures (no DPUs is not an error — the pool is just empty and
    /// every offload returns [`ProxyError::NoProxy`]).
    pub fn deploy(
        ctx: &mut ProcCtx,
        cluster: &ShimCluster,
        config: ProxyPoolConfig,
    ) -> Result<ProxyPool, ShimError> {
        let host = cluster.machine().host_cpu();
        let host_shim = cluster.shim_on(host)?;
        let manager = host_shim.attach_process();
        let mut proxies = Vec::new();
        for pu in cluster.machine().pus_of_kind(PuKind::Dpu) {
            let dpu_shim = cluster.shim_on(pu)?;
            for i in 0..config.proxies_per_dpu {
                let pid = dpu_shim.attach_process();
                let req_fifo =
                    dpu_shim.xfifo_init(ctx, pid, format!("proxy-req-{}-{}", pu.raw(), i))?;
                let req_uuid = req_fifo.uuid().clone();
                let req_obj = req_fifo.obj();
                let cluster_for_proxy = cluster.clone();
                let service = config.device_service;
                host_shim.xspawn(
                    ctx,
                    manager,
                    pu,
                    "dpu-io-proxy",
                    &[],
                    move |ectx, _spawned| {
                        serve_proxy(ectx, &cluster_for_proxy, pid, &req_fifo, service);
                    },
                )?;
                proxies.push(ProxyEndpoint {
                    pid,
                    pu,
                    req_uuid,
                    req_obj,
                    window: ctx.semaphore(config.window),
                });
            }
        }
        Ok(ProxyPool {
            inner: Arc::new(PoolInner {
                cluster: cluster.clone(),
                config,
                proxies,
                ledger: Mutex::new(Ledger::default()),
                rr: Mutex::new(0),
                dead: Mutex::new(HashSet::new()),
            }),
        })
    }

    /// Registers a host-side client: creates its reply FIFO, grants every
    /// proxy WRITE on it, grants the client WRITE on every request FIFO, and
    /// connects the request writers.
    ///
    /// # Errors
    ///
    /// Shim failures (capability or FIFO errors).
    pub fn client(&self, ctx: &mut ProcCtx, on: PuId) -> Result<ProxyClient, ShimError> {
        let shim = self.inner.cluster.shim_on(on)?;
        let pid = shim.attach_process();
        let reply_fifo =
            shim.xfifo_init(ctx, pid, format!("proxy-reply-{}-{}", on.raw(), pid.local))?;
        let reply_uuid = reply_fifo.uuid().clone();
        let reply_obj = reply_fifo.obj();
        let mut writers = Vec::with_capacity(self.inner.proxies.len());
        for proxy in &self.inner.proxies {
            shim.grant_cap(ctx, pid, proxy.pid, reply_obj, Perm::WRITE)?;
            let dpu_shim = self.inner.cluster.shim_on(proxy.pu)?;
            dpu_shim.grant_cap(ctx, proxy.pid, pid, proxy.req_obj, Perm::WRITE)?;
            writers.push(shim.xfifo_connect(ctx, pid, &proxy.req_uuid)?);
        }
        Ok(ProxyClient { pid, reply_fifo, reply_uuid, writers })
    }

    /// Offloads one I/O body to a proxy and waits for its reply.
    ///
    /// Routing is round-robin over proxies on live DPUs. The call blocks (in
    /// virtual time) for a window slot, writes the request frame — ≥16 KiB
    /// bodies go as zero-copy descriptors — then reads the reply FIFO until
    /// the matching reply arrives. Replies for *other* requests of the same
    /// client (stragglers from a timed-out earlier offload) are fed to the
    /// ledger as late replies and skipped.
    ///
    /// # Errors
    ///
    /// [`ProxyError::NoProxy`] with no live proxies; [`ProxyError::Shim`]
    /// when the write fails (the proxy's DPU is marked dead on
    /// [`ShimError::PeerDead`]); [`ProxyError::Timeout`] when no reply lands
    /// within the configured window. On every error path the request is
    /// reclaimed exactly once.
    pub fn offload(
        &self,
        ctx: &mut ProcCtx,
        client: &mut ProxyClient,
        body: Bytes,
    ) -> Result<ProxyReply, ProxyError> {
        let idx = self.pick().ok_or(ProxyError::NoProxy)?;
        let proxy = &self.inner.proxies[idx];
        let _slot = proxy.window.acquire(ctx, 1);
        let req_id = self.inner.ledger.lock().issue();
        let frame = encode_request(req_id, &client.reply_uuid, &body);
        if let Err(e) = client.writers[idx].write(ctx, frame) {
            self.inner.ledger.lock().reclaim(req_id);
            if matches!(e, ShimError::PeerDead(_)) {
                self.fail_pu(proxy.pu);
            }
            return Err(ProxyError::Shim(e));
        }
        loop {
            match client.reply_fifo.read_timeout(ctx, self.inner.config.reply_timeout) {
                Ok(raw) => {
                    let Some((id, bytes_done)) = decode_reply(raw) else { continue };
                    let mut ledger = self.inner.ledger.lock();
                    ledger.complete(id);
                    if id == req_id {
                        return Ok(ProxyReply { bytes_done });
                    }
                }
                Err(ShimError::FifoTimeout) => {
                    self.inner.ledger.lock().reclaim(req_id);
                    return Err(ProxyError::Timeout);
                }
                Err(e) => {
                    self.inner.ledger.lock().reclaim(req_id);
                    return Err(ProxyError::Shim(e));
                }
            }
        }
    }

    /// Marks a DPU dead for routing: its proxies stop receiving new
    /// offloads. In-flight requests to them are reclaimed by their waiting
    /// clients (write error or reply timeout) — there is exactly one
    /// reclaimer per request, which is what makes reclaim exactly-once
    /// trivial to enforce. Called automatically on [`ShimError::PeerDead`].
    pub fn fail_pu(&self, pu: PuId) {
        self.inner.dead.lock().insert(pu);
    }

    /// Number of proxies currently eligible for routing.
    pub fn live_proxies(&self) -> usize {
        let dead = self.inner.dead.lock();
        self.inner.proxies.iter().filter(|p| !dead.contains(&p.pu)).count()
    }

    /// Total proxies deployed (live or not).
    pub fn proxy_count(&self) -> usize {
        self.inner.proxies.len()
    }

    /// Snapshot of the exactly-once ledger.
    pub fn stats(&self) -> ProxyStats {
        self.inner.ledger.lock().stats
    }

    /// Stops every proxy: writes the shutdown sentinel on each request FIFO,
    /// acting as the proxy's own pid (a same-PU write, so it reaches even
    /// proxies whose DPU the fault plane already marked dead — they drain
    /// the sentinel and exit instead of blocking the simulation forever).
    pub fn shutdown(&self, ctx: &mut ProcCtx) {
        for proxy in &self.inner.proxies {
            let Ok(shim) = self.inner.cluster.shim_on(proxy.pu) else { continue };
            let Ok(w) = shim.xfifo_connect(ctx, proxy.pid, &proxy.req_uuid) else { continue };
            let _ = w.write(ctx, encode_request(SHUTDOWN_ID, &GlobalUuid::new(""), &Bytes::new()));
        }
    }

    /// Round-robin over live proxies; `None` when everything is dead.
    fn pick(&self) -> Option<usize> {
        let n = self.inner.proxies.len();
        if n == 0 {
            return None;
        }
        let dead = self.inner.dead.lock();
        let mut rr = self.inner.rr.lock();
        for _ in 0..n {
            let idx = *rr % n;
            *rr = (*rr + 1) % n;
            if !dead.contains(&self.inner.proxies[idx].pu) {
                return Some(idx);
            }
        }
        None
    }
}

/// The proxy serving loop: read a request frame, spend the device service
/// time, write the reply to the client's reply FIFO (connecting lazily, one
/// cached writer per distinct client). Any read error — FIFO reclaimed,
/// DPU killed — ends the loop; reply-write errors are tolerated (the client
/// may have timed out and gone away).
fn serve_proxy(
    ectx: &mut ProcCtx,
    cluster: &ShimCluster,
    pid: XpuPid,
    req_fifo: &XpuFifoReader,
    service: SimDuration,
) {
    let Ok(shim) = cluster.shim_on(pid.pu) else { return };
    let mut reply_writers: HashMap<GlobalUuid, XpuFifoWriter> = HashMap::new();
    loop {
        let Ok(raw) = req_fifo.read(ectx) else { return };
        let Some((req_id, reply_uuid, body_len)) = decode_request(raw) else { continue };
        if req_id == SHUTDOWN_ID {
            return;
        }
        // The offloaded device I/O itself — the work that no longer burns
        // host-CPU cycles.
        ectx.sleep(service);
        if !reply_writers.contains_key(&reply_uuid) {
            match shim.xfifo_connect(ectx, pid, &reply_uuid) {
                Ok(w) => {
                    reply_writers.insert(reply_uuid.clone(), w);
                }
                Err(_) => continue,
            }
        }
        let writer = reply_writers.get(&reply_uuid).expect("just inserted");
        if writer.write(ectx, encode_reply(req_id, body_len)).is_err() {
            reply_writers.remove(&reply_uuid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::engine::Simulation;
    use hetsim::time::SimTime;
    use hetsim::topology::Machine;
    use xpu_shim::cluster::ShimConfig;

    fn two_dpu_machine() -> Machine {
        Machine::builder().host_cpu().bluefield2_dpus(2).build()
    }

    #[test]
    fn frames_roundtrip() {
        let body = Bytes::from(vec![7u8; 1000]);
        let frame = encode_request(42, &GlobalUuid::new("proxy-reply-0-9"), &body);
        let (id, uuid, len) = decode_request(frame).unwrap();
        assert_eq!((id, uuid.as_str(), len), (42, "proxy-reply-0-9", 1000));
        assert_eq!(decode_reply(encode_reply(42, 1000)), Some((42, 1000)));
        assert_eq!(decode_request(Bytes::from_static(b"short")), None);
        assert_eq!(decode_reply(Bytes::from_static(b"short")), None);
    }

    #[test]
    fn offloads_complete_exactly_once_across_concurrent_clients() {
        let mut sim = Simulation::new();
        // Default config keeps zero-copy on, so large bodies go as
        // descriptors.
        let cluster = ShimCluster::deploy(two_dpu_machine(), ShimConfig::default());
        let host = cluster.machine().host_cpu();
        let cl = cluster.clone();
        let driver = sim.spawn("driver", move |ctx| {
            let pool = ProxyPool::deploy(ctx, &cl, ProxyPoolConfig::default()).unwrap();
            assert_eq!(pool.proxy_count(), 4, "2 DPUs x 2 proxies");
            let mut handles = Vec::new();
            for c in 0..3u8 {
                let pool = pool.clone();
                handles.push(ctx.spawn(&format!("client-{c}"), move |cctx| {
                    let mut client = pool.client(cctx, host).unwrap();
                    let mut done = 0u64;
                    for i in 0..20 {
                        // Mix small (inline) and large (descriptor) bodies.
                        let size = if i % 2 == 0 { 512 } else { 64 * 1024 };
                        let reply =
                            pool.offload(cctx, &mut client, Bytes::from(vec![c; size])).unwrap();
                        assert_eq!(reply.bytes_done, size as u64);
                        done += 1;
                    }
                    done
                }));
            }
            let mut total = 0u64;
            for h in &handles {
                h.join(ctx);
                total += h.take_result().unwrap();
            }
            pool.shutdown(ctx);
            (total, pool.stats())
        });
        sim.run().unwrap();
        let (total, stats) = driver.take_result().unwrap();
        assert_eq!(total, 60);
        assert_eq!(stats.issued, 60);
        assert_eq!(stats.completed, 60);
        assert_eq!(stats.reclaimed, 0);
        assert_eq!(stats.double_faults, 0);
        // Half the bodies were ≥ the 16 KiB zero-copy threshold, so the
        // shim must have moved them as descriptors, not staged copies.
        assert!(cluster.stats().descriptor_handoffs >= 30);
    }

    #[test]
    fn dead_dpu_fails_over_and_reclaims_exactly_once() {
        let mut sim = Simulation::new();
        let cluster = ShimCluster::deploy(two_dpu_machine(), ShimConfig::pinned());
        let host = cluster.machine().host_cpu();
        let dead_pu = cluster.machine().pus_of_kind(PuKind::Dpu)[0];
        let cl = cluster.clone();
        let driver = sim.spawn("driver", move |ctx| {
            let pool = ProxyPool::deploy(ctx, &cl, ProxyPoolConfig::default()).unwrap();
            let mut client = pool.client(ctx, host).unwrap();
            for _ in 0..4 {
                pool.offload(ctx, &mut client, Bytes::from(vec![1u8; 512])).unwrap();
            }
            // Kill one DPU; from now on offloads routed there fail with
            // PeerDead (or time out) and must fail over to the survivor.
            cl.machine().fault_plane().kill_pu(ctx.now(), dead_pu);
            let mut failures = 0u32;
            let mut served = 0u32;
            while served < 8 {
                match pool.offload(ctx, &mut client, Bytes::from(vec![2u8; 512])) {
                    Ok(_) => served += 1,
                    Err(ProxyError::Shim(ShimError::PeerDead(pu))) => {
                        assert_eq!(pu, dead_pu);
                        failures += 1;
                    }
                    Err(ProxyError::Timeout) => failures += 1,
                    Err(e) => panic!("unexpected offload error: {e}"),
                }
                assert!(failures < 16, "failover never converged");
            }
            // Control-plane reclamation closes the dead DPU's FIFOs, which
            // is what unblocks its proxy processes; live proxies drain the
            // shutdown sentinel.
            cl.reclaim_pu(ctx, dead_pu);
            pool.shutdown(ctx);
            (served, failures, pool.live_proxies(), pool.stats())
        });
        sim.run().unwrap();
        let (served, failures, live, stats) = driver.take_result().unwrap();
        assert_eq!(served, 8);
        assert!(failures >= 1, "the dead DPU was never even tried");
        assert_eq!(live, 2, "the dead DPU's proxies left rotation");
        assert_eq!(stats.issued, stats.completed + stats.reclaimed);
        assert_eq!(stats.reclaimed, failures as u64);
        assert_eq!(stats.double_faults, 0, "no request completed and reclaimed");
    }

    #[test]
    fn window_bounds_in_flight_requests() {
        // One proxy, window 2, a slow device, and 6 concurrent clients:
        // the 3rd..6th offloads must wait for a window slot, so the makespan
        // is ceil(6/2) service rounds, not 1.
        let mut sim = Simulation::new();
        let machine = Machine::builder().host_cpu().bluefield2_dpus(1).build();
        let cluster = ShimCluster::deploy(machine, ShimConfig::pinned());
        let host = cluster.machine().host_cpu();
        let config = ProxyPoolConfig {
            proxies_per_dpu: 1,
            window: 2,
            device_service: SimDuration::from_micros(100),
            reply_timeout: SimDuration::from_millis(50),
        };
        let cl = cluster.clone();
        let driver = sim.spawn("driver", move |ctx| {
            let pool = ProxyPool::deploy(ctx, &cl, config).unwrap();
            let mut handles = Vec::new();
            for c in 0..6 {
                let pool = pool.clone();
                handles.push(ctx.spawn(&format!("client-{c}"), move |cctx| {
                    let mut client = pool.client(cctx, host).unwrap();
                    pool.offload(cctx, &mut client, Bytes::from(vec![0u8; 256])).unwrap();
                    cctx.now()
                }));
            }
            let mut finish = Vec::new();
            for h in &handles {
                h.join(ctx);
                finish.push(h.take_result().unwrap());
            }
            pool.shutdown(ctx);
            (finish, pool.stats())
        });
        sim.run().unwrap();
        let (finish, stats) = driver.take_result().unwrap();
        let makespan = finish.iter().max().unwrap();
        // 6 requests through a window of 2 at 100 us service each: the last
        // pair cannot finish before 3 service times have elapsed.
        assert!(
            *makespan >= SimTime::ZERO + SimDuration::from_micros(300),
            "window did not serialize: makespan {makespan:?}"
        );
        assert_eq!(stats.completed, 6);
    }
}
