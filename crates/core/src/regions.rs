//! The gateway's region directory: which PUs host which shared-state
//! regions.
//!
//! `molecule-state` owns the regions themselves; the control plane only
//! needs the *location* facts — "region `weights` has replicas on PU 0 and
//! PU 2" — to feed the scheduler's state-locality term (a function that
//! declares [`FunctionDef::regions`] scores better on PUs already holding
//! those pages, the same way chain stages earn the co-location bonus). The
//! directory is deliberately a plain name→PU-set map so `molecule-core`
//! does not depend on the state crate: `molecule-sched` bridges the two by
//! installing a `StateLayer` host observer that publishes into it.
//!
//! Density refactor: the former single `BTreeMap` under one lock made every
//! publish contend with every lookup and made `retract_pu` — the dead-PU
//! sweep — walk *every* region. The directory is now sharded by region-name
//! hash (lookups and publishes on different regions take different locks)
//! with a `PuId → region names` reverse index, so the dead-PU sweep touches
//! only the regions the dead PU actually hosted. Host lists stay sorted
//! `Vec`s, so every query answer is byte-identical to the `BTreeMap` model.
//!
//! Lock discipline: a shard lock and the reverse-index lock are never held
//! at the same time. The reverse index may transiently hold a stale name
//! for a PU (publish updates the shard first); `retract_pu` tolerates this
//! by counting only real shard-side removals.
//!
//! [`FunctionDef::regions`]: crate::function::FunctionDef::regions

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher};
use std::sync::Arc;

use hetsim::pu::PuId;
use parking_lot::Mutex;

const SHARDS: usize = 8;

struct DirectoryInner {
    /// Region name → sorted host list, sharded by name hash.
    shards: [Mutex<HashMap<String, Vec<PuId>>>; SHARDS],
    /// Reverse index for the dead-PU sweep: every region name a PU has ever
    /// been published into (pruned on retract).
    by_pu: Mutex<HashMap<PuId, HashSet<String>>>,
}

/// Tracks, per region name, the PUs currently hosting a replica. Cheap to
/// clone; all clones share one map.
#[derive(Clone)]
pub struct RegionDirectory {
    inner: Arc<DirectoryInner>,
}

impl Default for RegionDirectory {
    fn default() -> RegionDirectory {
        RegionDirectory {
            inner: Arc::new(DirectoryInner {
                shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
                by_pu: Mutex::new(HashMap::new()),
            }),
        }
    }
}

impl fmt::Debug for RegionDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegionDirectory").field("regions", &self.len()).finish()
    }
}

impl RegionDirectory {
    /// Creates an empty directory.
    pub fn new() -> RegionDirectory {
        RegionDirectory::default()
    }

    fn shard(&self, region: &str) -> &Mutex<HashMap<String, Vec<PuId>>> {
        // BuildHasherDefault<DefaultHasher> is unseeded: the shard choice is
        // stable across processes, keeping cross-process determinism probes
        // honest even though shard choice never leaks into query answers.
        let h = BuildHasherDefault::<DefaultHasher>::default().hash_one(region);
        &self.inner.shards[(h as usize) % SHARDS]
    }

    /// Records that `pu` hosts a replica of `region`. Idempotent.
    pub fn publish(&self, region: &str, pu: PuId) {
        {
            let mut shard = self.shard(region).lock();
            let hosts = shard.entry(region.to_string()).or_default();
            if let Err(pos) = hosts.binary_search(&pu) {
                hosts.insert(pos, pu);
            }
        }
        self.inner.by_pu.lock().entry(pu).or_default().insert(region.to_string());
    }

    /// Records that `pu` no longer hosts `region` (detach or drop). Empty
    /// regions leave the map. Idempotent.
    pub fn retract(&self, region: &str, pu: PuId) {
        {
            let mut shard = self.shard(region).lock();
            if let Some(hosts) = shard.get_mut(region) {
                if let Ok(pos) = hosts.binary_search(&pu) {
                    hosts.remove(pos);
                }
                if hosts.is_empty() {
                    shard.remove(region);
                }
            }
        }
        let mut by_pu = self.inner.by_pu.lock();
        if let Some(names) = by_pu.get_mut(&pu) {
            names.remove(region);
            if names.is_empty() {
                by_pu.remove(&pu);
            }
        }
    }

    /// Drops every hosting record of a crashed PU, returning how many
    /// region entries it was retracted from. The gateway's
    /// [`purge_pu`](crate::gateway::ApiGateway::purge_pu) calls this so a
    /// dead PU can never keep attracting stateful placements. O(regions the
    /// dead PU hosted) via the reverse index — not a walk of the directory.
    pub fn retract_pu(&self, pu: PuId) -> usize {
        let names = match self.inner.by_pu.lock().remove(&pu) {
            Some(names) => names,
            None => return 0,
        };
        let mut retracted = 0;
        for region in names {
            let mut shard = self.shard(&region).lock();
            if let Some(hosts) = shard.get_mut(&region) {
                if let Ok(pos) = hosts.binary_search(&pu) {
                    hosts.remove(pos);
                    retracted += 1;
                }
                if hosts.is_empty() {
                    shard.remove(&region);
                }
            }
        }
        retracted
    }

    /// The PUs hosting `region`, sorted. Empty when unknown.
    pub fn hosts(&self, region: &str) -> Vec<PuId> {
        self.shard(region).lock().get(region).cloned().unwrap_or_default()
    }

    /// The union of hosts over several region names, sorted and deduplicated
    /// — what the placer consumes for a function's full region set.
    pub fn hosts_of_any(&self, regions: &[String]) -> Vec<PuId> {
        let mut out = BTreeSet::new();
        for name in regions {
            if let Some(hosts) = self.shard(name).lock().get(name) {
                out.extend(hosts.iter().copied());
            }
        }
        out.into_iter().collect()
    }

    /// Number of regions with at least one host.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if nothing is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_retract_roundtrip() {
        let dir = RegionDirectory::new();
        assert!(dir.is_empty());
        dir.publish("weights", PuId(0));
        dir.publish("weights", PuId(2));
        dir.publish("weights", PuId(2)); // idempotent
        dir.publish("shuffle", PuId(1));
        assert_eq!(dir.hosts("weights"), vec![PuId(0), PuId(2)]);
        assert_eq!(dir.hosts("shuffle"), vec![PuId(1)]);
        assert_eq!(dir.len(), 2);
        dir.retract("weights", PuId(0));
        assert_eq!(dir.hosts("weights"), vec![PuId(2)]);
        dir.retract("weights", PuId(2));
        assert_eq!(dir.hosts("weights"), Vec::<PuId>::new());
        assert_eq!(dir.len(), 1, "empty regions leave the map");
    }

    #[test]
    fn hosts_of_any_unions_and_sorts() {
        let dir = RegionDirectory::new();
        dir.publish("a", PuId(3));
        dir.publish("a", PuId(1));
        dir.publish("b", PuId(1));
        dir.publish("b", PuId(0));
        let hosts = dir.hosts_of_any(&["a".into(), "b".into(), "ghost".into()]);
        assert_eq!(hosts, vec![PuId(0), PuId(1), PuId(3)]);
    }

    #[test]
    fn retract_pu_sweeps_every_region() {
        let dir = RegionDirectory::new();
        dir.publish("a", PuId(1));
        dir.publish("a", PuId(2));
        dir.publish("b", PuId(1));
        assert_eq!(dir.retract_pu(PuId(1)), 2);
        assert_eq!(dir.hosts("a"), vec![PuId(2)]);
        assert!(dir.hosts("b").is_empty());
        assert_eq!(dir.retract_pu(PuId(1)), 0, "idempotent");
    }

    #[test]
    fn retract_then_retract_pu_counts_real_removals_only() {
        // retract() prunes the reverse index, so a later dead-PU sweep
        // neither revisits nor recounts the already-retracted region.
        let dir = RegionDirectory::new();
        dir.publish("a", PuId(1));
        dir.publish("b", PuId(1));
        dir.retract("a", PuId(1));
        assert_eq!(dir.retract_pu(PuId(1)), 1);
        assert!(dir.is_empty());
    }

    #[test]
    fn many_regions_across_shards_stay_consistent() {
        let dir = RegionDirectory::new();
        for i in 0..100 {
            dir.publish(&format!("region-{i}"), PuId(i % 4));
            dir.publish(&format!("region-{i}"), PuId(4));
        }
        assert_eq!(dir.len(), 100);
        assert_eq!(dir.hosts("region-7"), vec![PuId(3), PuId(4)]);
        // Killing PU 4 retracts it from all 100 regions; the others stay.
        assert_eq!(dir.retract_pu(PuId(4)), 100);
        assert_eq!(dir.len(), 100);
        assert_eq!(dir.hosts("region-7"), vec![PuId(3)]);
    }
}
