//! The gateway's region directory: which PUs host which shared-state
//! regions.
//!
//! `molecule-state` owns the regions themselves; the control plane only
//! needs the *location* facts — "region `weights` has replicas on PU 0 and
//! PU 2" — to feed the scheduler's state-locality term (a function that
//! declares [`FunctionDef::regions`] scores better on PUs already holding
//! those pages, the same way chain stages earn the co-location bonus). The
//! directory is deliberately a plain name→PU-set map so `molecule-core`
//! does not depend on the state crate: `molecule-sched` bridges the two by
//! installing a `StateLayer` host observer that publishes into it.
//!
//! [`FunctionDef::regions`]: crate::function::FunctionDef::regions

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use hetsim::pu::PuId;
use parking_lot::Mutex;

/// Tracks, per region name, the PUs currently hosting a replica. Cheap to
/// clone; all clones share one map.
#[derive(Clone, Default)]
pub struct RegionDirectory {
    inner: Arc<Mutex<BTreeMap<String, BTreeSet<PuId>>>>,
}

impl fmt::Debug for RegionDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegionDirectory").field("regions", &self.inner.lock().len()).finish()
    }
}

impl RegionDirectory {
    /// Creates an empty directory.
    pub fn new() -> RegionDirectory {
        RegionDirectory::default()
    }

    /// Records that `pu` hosts a replica of `region`. Idempotent.
    pub fn publish(&self, region: &str, pu: PuId) {
        self.inner.lock().entry(region.to_string()).or_default().insert(pu);
    }

    /// Records that `pu` no longer hosts `region` (detach or drop). Empty
    /// regions leave the map. Idempotent.
    pub fn retract(&self, region: &str, pu: PuId) {
        let mut map = self.inner.lock();
        if let Some(hosts) = map.get_mut(region) {
            hosts.remove(&pu);
            if hosts.is_empty() {
                map.remove(region);
            }
        }
    }

    /// Drops every hosting record of a crashed PU, returning how many
    /// region entries it was retracted from. The gateway's
    /// [`purge_pu`](crate::gateway::ApiGateway::purge_pu) calls this so a
    /// dead PU can never keep attracting stateful placements.
    pub fn retract_pu(&self, pu: PuId) -> usize {
        let mut map = self.inner.lock();
        let mut retracted = 0;
        map.retain(|_, hosts| {
            if hosts.remove(&pu) {
                retracted += 1;
            }
            !hosts.is_empty()
        });
        retracted
    }

    /// The PUs hosting `region`, sorted. Empty when unknown.
    pub fn hosts(&self, region: &str) -> Vec<PuId> {
        self.inner.lock().get(region).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    /// The union of hosts over several region names, sorted and deduplicated
    /// — what the placer consumes for a function's full region set.
    pub fn hosts_of_any(&self, regions: &[String]) -> Vec<PuId> {
        let map = self.inner.lock();
        let mut out = BTreeSet::new();
        for name in regions {
            if let Some(hosts) = map.get(name) {
                out.extend(hosts.iter().copied());
            }
        }
        out.into_iter().collect()
    }

    /// Number of regions with at least one host.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if nothing is published.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_retract_roundtrip() {
        let dir = RegionDirectory::new();
        assert!(dir.is_empty());
        dir.publish("weights", PuId(0));
        dir.publish("weights", PuId(2));
        dir.publish("weights", PuId(2)); // idempotent
        dir.publish("shuffle", PuId(1));
        assert_eq!(dir.hosts("weights"), vec![PuId(0), PuId(2)]);
        assert_eq!(dir.hosts("shuffle"), vec![PuId(1)]);
        assert_eq!(dir.len(), 2);
        dir.retract("weights", PuId(0));
        assert_eq!(dir.hosts("weights"), vec![PuId(2)]);
        dir.retract("weights", PuId(2));
        assert_eq!(dir.hosts("weights"), Vec::<PuId>::new());
        assert_eq!(dir.len(), 1, "empty regions leave the map");
    }

    #[test]
    fn hosts_of_any_unions_and_sorts() {
        let dir = RegionDirectory::new();
        dir.publish("a", PuId(3));
        dir.publish("a", PuId(1));
        dir.publish("b", PuId(1));
        dir.publish("b", PuId(0));
        let hosts = dir.hosts_of_any(&["a".into(), "b".into(), "ghost".into()]);
        assert_eq!(hosts, vec![PuId(0), PuId(1), PuId(3)]);
    }

    #[test]
    fn retract_pu_sweeps_every_region() {
        let dir = RegionDirectory::new();
        dir.publish("a", PuId(1));
        dir.publish("a", PuId(2));
        dir.publish("b", PuId(1));
        assert_eq!(dir.retract_pu(PuId(1)), 2);
        assert_eq!(dir.hosts("a"), vec![PuId(2)]);
        assert!(dir.hosts("b").is_empty());
        assert_eq!(dir.retract_pu(PuId(1)), 0, "idempotent");
    }
}
