//! Executor health checking, circuit breaking and crashed-PU recovery.
//!
//! The paper's control plane assumes PUs stay up; this module is the
//! fault-tolerant extension: a [`HealthChecker`] probes every executor PU
//! from the host over XPU-Shim, quarantines unresponsive PUs behind a
//! circuit breaker (so a *flapping* PU stops receiving work without being
//! declared dead), and — once a PU misses enough consecutive probes or is
//! positively known dead — runs the full recovery pipeline:
//!
//! 1. **Shim reclamation** — the dead PU's `CAP_Group`s are dropped and its
//!    XPU-FIFO UUIDs reclaimed exactly once (the paper's lazy-reclamation
//!    path, §5, actually triggered);
//! 2. **Runtime purge** — instances, warm pools, templates and the executor
//!    registration on the PU are removed, and the PU's `runc` book-keeping
//!    is reconciled (running sandboxes marked `Stopped`);
//! 3. **Gateway purge** — idle instances are dropped, the PU is marked
//!    unschedulable, and functions with no surviving instance are evicted
//!    from the keep-alive policy.
//!
//! Subsequent requests fail over to surviving PUs; functions whose
//! preferred accelerator kind is entirely gone degrade to the CPU cost
//! table, with telemetry recording each degradation.

use std::collections::HashMap;
use std::sync::Arc;

use hetsim::engine::ProcCtx;
use hetsim::pu::PuId;
use hetsim::time::{SimDuration, SimTime};
use parking_lot::Mutex;
use xpu_shim::cluster::ReclaimReport;
use xpu_shim::error::ShimError;

use crate::gateway::ApiGateway;

/// Tunables of the health checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Virtual time between probe rounds.
    pub probe_interval: SimDuration,
    /// Consecutive missed probes before a PU is declared dead.
    pub miss_threshold: u32,
    /// Consecutive missed probes before the circuit opens (the PU stops
    /// receiving new work while it still might recover).
    pub open_after: u32,
    /// How long an open circuit waits before letting a probe through again
    /// (half-open trial).
    pub half_open_after: SimDuration,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            probe_interval: SimDuration::from_micros(500),
            miss_threshold: 3,
            open_after: 1,
            half_open_after: SimDuration::from_millis(5),
        }
    }
}

/// Circuit-breaker state of one monitored PU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Requests flow normally.
    Closed,
    /// The PU is quarantined; no new work is routed to it.
    Open,
    /// The quarantine aged out; the next probe decides.
    HalfOpen,
}

/// Liveness verdict for one monitored PU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PuStatus {
    /// Responding to probes.
    Healthy,
    /// Missed this many consecutive probes (fewer than the threshold).
    Suspect(u32),
    /// Declared dead; recovery has run.
    Dead,
}

#[derive(Debug)]
struct PuRecord {
    misses: u32,
    status: PuStatus,
    circuit: CircuitState,
    opened_at: Option<SimTime>,
    first_miss_at: Option<SimTime>,
}

impl PuRecord {
    fn new() -> PuRecord {
        PuRecord {
            misses: 0,
            status: PuStatus::Healthy,
            circuit: CircuitState::Closed,
            opened_at: None,
            first_miss_at: None,
        }
    }
}

/// What one crashed-PU recovery did, and how long it took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The recovered (dead) PU.
    pub pu: PuId,
    /// Virtual time the death was declared.
    pub detected_at: SimTime,
    /// First missed probe → declaration (the detection window).
    pub detect_latency: SimDuration,
    /// Declaration → recovery pipeline finished.
    pub recovery_latency: SimDuration,
    /// What the shim reclaimed (processes, FIFOs, capabilities).
    pub reclaim: ReclaimReport,
    /// Instances the runtime purged.
    pub instances_purged: usize,
    /// Sandboxes `runc` reconciled to `Stopped`.
    pub sandboxes_reconciled: usize,
}

/// Callback invoked after a PU's recovery pipeline ran (see
/// [`HealthChecker::on_declared_dead`]).
pub type DeadPuHook = dyn Fn(&mut ProcCtx, PuId) + Send + Sync;

/// Mutable per-round state: a flat record vector parallel to the fixed
/// monitored-PU list, plus the incrementally maintained dead list. The
/// former `BTreeMap<PuId, PuRecord>` made every status lookup a tree walk
/// and `dead_pus` an O(all PUs) filter; the monitored set never changes
/// after construction, so records live in a dense vector indexed by a fixed
/// side table and the dead list is appended exactly once per declaration.
struct HealthState {
    records: Vec<PuRecord>,
    /// PUs declared dead, in declaration order (sorted on read).
    dead: Vec<PuId>,
}

/// Probes executor PUs and drives recovery when one dies. Cheap to clone.
#[derive(Clone)]
pub struct HealthChecker {
    gateway: ApiGateway,
    policy: HealthPolicy,
    /// The monitored PUs, sorted — fixed at construction, shared by all
    /// clones, iterated allocation-free by every probe round.
    monitored: Arc<Vec<PuId>>,
    /// PU → index into `monitored` / `HealthState::records`.
    index: Arc<HashMap<PuId, usize>>,
    state: Arc<Mutex<HealthState>>,
    recoveries: Arc<Mutex<Vec<RecoveryReport>>>,
    dead_hooks: Arc<Mutex<Vec<Arc<DeadPuHook>>>>,
}

impl std::fmt::Debug for HealthChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthChecker")
            .field("policy", &self.policy)
            .field("monitored", &self.monitored.len())
            .finish()
    }
}

impl HealthChecker {
    /// Creates a checker over `gateway`, monitoring every general-purpose
    /// PU except the host the manager runs on.
    pub fn new(gateway: ApiGateway, policy: HealthPolicy) -> HealthChecker {
        let machine = gateway.molecule().machine().clone();
        let host = machine.host_cpu();
        let mut monitored = Vec::new();
        for pu in machine.pus() {
            if pu.kind.is_general_purpose() && pu.id != host {
                monitored.push(pu.id);
            }
        }
        monitored.sort();
        let index: HashMap<PuId, usize> =
            monitored.iter().enumerate().map(|(i, pu)| (*pu, i)).collect();
        let records = monitored.iter().map(|_| PuRecord::new()).collect();
        HealthChecker {
            gateway,
            policy,
            monitored: Arc::new(monitored),
            index: Arc::new(index),
            state: Arc::new(Mutex::new(HealthState { records, dead: Vec::new() })),
            recoveries: Arc::new(Mutex::new(Vec::new())),
            dead_hooks: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Registers a callback run right after a PU's recovery pipeline (shim
    /// reclaim + runtime purge + gateway purge) completes. Schedulers layered
    /// above the gateway use this to drain the dead PU's run queue into
    /// failover placement. Hooks run in registration order.
    pub fn on_declared_dead(&self, hook: impl Fn(&mut ProcCtx, PuId) + Send + Sync + 'static) {
        self.dead_hooks.lock().push(Arc::new(hook));
    }

    /// The policy in effect.
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// The monitored PUs, sorted.
    pub fn monitored_pus(&self) -> Vec<PuId> {
        self.monitored.as_ref().clone()
    }

    /// Current liveness verdict for `pu` (None if unmonitored).
    pub fn status(&self, pu: PuId) -> Option<PuStatus> {
        let i = *self.index.get(&pu)?;
        Some(self.state.lock().records[i].status)
    }

    /// Current circuit-breaker state for `pu` (None if unmonitored).
    pub fn circuit(&self, pu: PuId) -> Option<CircuitState> {
        let i = *self.index.get(&pu)?;
        Some(self.state.lock().records[i].circuit)
    }

    /// PUs declared dead so far, sorted. O(dead), served from the list
    /// `declare_dead` appends to — not a filter over every monitored PU.
    pub fn dead_pus(&self) -> Vec<PuId> {
        let mut dead = self.state.lock().dead.clone();
        dead.sort();
        dead
    }

    /// Every recovery run so far, in declaration order.
    pub fn recoveries(&self) -> Vec<RecoveryReport> {
        self.recoveries.lock().clone()
    }

    /// Probes every monitored PU once, updating circuits and recovering any
    /// PU that crossed the death threshold. Returns recoveries triggered by
    /// this round.
    pub fn probe_round(&self, ctx: &mut ProcCtx) -> Vec<RecoveryReport> {
        let mut out = Vec::new();
        let host = self.gateway.molecule().machine().host_cpu();
        // The monitored list is fixed and shared: a probe round allocates
        // nothing on its quiet path (the old code cloned the PU list out of
        // the state map every round — per-round churn at density).
        let monitored = Arc::clone(&self.monitored);
        for (i, &pu) in monitored.iter().enumerate() {
            // Respect an open circuit until the half-open window elapses:
            // probing a quarantined PU every round would stall the checker
            // on the xcall timeout each time.
            {
                let mut st = self.state.lock();
                let rec = &mut st.records[i];
                if rec.status == PuStatus::Dead {
                    continue;
                }
                if rec.circuit == CircuitState::Open {
                    let aged =
                        rec.opened_at.is_none_or(|t| ctx.now() - t >= self.policy.half_open_after);
                    if !aged {
                        continue;
                    }
                    rec.circuit = CircuitState::HalfOpen;
                }
            }
            let probe = self.gateway.molecule().cluster().probe_pu(ctx, host, pu);
            match probe {
                Ok(_rtt) => self.note_success(ctx, pu),
                Err(ShimError::PeerDead(_)) => {
                    // Positively dead: no need to wait out the threshold.
                    if let Some(report) = self.declare_dead(ctx, pu) {
                        out.push(report);
                    }
                }
                Err(_) => {
                    if let Some(report) = self.note_miss(ctx, pu) {
                        out.push(report);
                    }
                }
            }
        }
        out
    }

    /// Runs `rounds` probe rounds, sleeping the probe interval in between.
    /// Returns every recovery triggered.
    pub fn run(&self, ctx: &mut ProcCtx, rounds: usize) -> Vec<RecoveryReport> {
        let mut out = Vec::new();
        for round in 0..rounds {
            out.extend(self.probe_round(ctx));
            if round + 1 < rounds {
                ctx.sleep(self.policy.probe_interval);
            }
        }
        out
    }

    fn note_success(&self, ctx: &mut ProcCtx, pu: PuId) {
        let i = *self.index.get(&pu).expect("monitored");
        let reopened = {
            let mut st = self.state.lock();
            let rec = &mut st.records[i];
            rec.misses = 0;
            rec.first_miss_at = None;
            rec.status = PuStatus::Healthy;
            let was_open = rec.circuit != CircuitState::Closed;
            rec.circuit = CircuitState::Closed;
            rec.opened_at = None;
            was_open
        };
        // Re-admit on every healthy probe, not just circuit transitions: the
        // gateway quarantines a PU itself when a request times out mid-fault,
        // and only the checker can clear that once the PU proves responsive.
        self.gateway.mark_pu_schedulable(pu);
        if reopened {
            let machine = self.gateway.molecule().machine().clone();
            machine.fault_plane().note(ctx.now(), &format!("recover: circuit closed for {pu}"));
            telemetry::with(|r| r.metrics().counter_add("health.circuit_closed", 1));
        }
    }

    fn note_miss(&self, ctx: &mut ProcCtx, pu: PuId) -> Option<RecoveryReport> {
        let i = *self.index.get(&pu).expect("monitored");
        let (dead, opened) = {
            let mut st = self.state.lock();
            let rec = &mut st.records[i];
            rec.misses += 1;
            rec.first_miss_at.get_or_insert(ctx.now());
            if rec.misses >= self.policy.miss_threshold {
                (true, false)
            } else {
                rec.status = PuStatus::Suspect(rec.misses);
                let should_open =
                    rec.misses >= self.policy.open_after && rec.circuit != CircuitState::Open;
                if should_open {
                    rec.circuit = CircuitState::Open;
                    rec.opened_at = Some(ctx.now());
                }
                (false, should_open)
            }
        };
        if dead {
            return self.declare_dead(ctx, pu);
        }
        if opened {
            self.gateway.mark_pu_unschedulable(pu);
            let machine = self.gateway.molecule().machine().clone();
            machine.fault_plane().note(ctx.now(), &format!("recover: circuit opened for {pu}"));
            telemetry::with(|r| r.metrics().counter_add("health.circuit_open", 1));
        }
        None
    }

    fn declare_dead(&self, ctx: &mut ProcCtx, pu: PuId) -> Option<RecoveryReport> {
        let i = *self.index.get(&pu).expect("monitored");
        let first_miss = {
            let mut st = self.state.lock();
            let rec = &mut st.records[i];
            if rec.status == PuStatus::Dead {
                return None;
            }
            rec.status = PuStatus::Dead;
            rec.circuit = CircuitState::Open;
            rec.opened_at = Some(ctx.now());
            let first = rec.first_miss_at;
            st.dead.push(pu);
            first
        };
        let detected_at = ctx.now();
        let molecule = self.gateway.molecule().clone();
        let machine = molecule.machine().clone();
        // Measure detection from the first missed probe, or — when the probe
        // returned a positive `PeerDead` — from the injected crash itself.
        let since = first_miss.or_else(|| machine.fault_plane().death_time(pu));
        let detect_latency = since.map_or(SimDuration::ZERO, |t| detected_at - t);
        machine.fault_plane().note(
            detected_at,
            &format!("recover: {pu} declared dead after {}ns", detect_latency.as_nanos()),
        );
        let t0 = ctx.now();
        let reclaim = molecule.cluster().reclaim_pu(ctx, pu);
        let purge = molecule.purge_pu(pu);
        self.gateway.purge_pu(pu);
        let recovery_latency = ctx.now() - t0;
        telemetry::with(|r| {
            r.complete_span(
                ctx.lane(),
                t0.as_nanos(),
                ctx.now().as_nanos(),
                &format!("recover-pu{}", pu.0),
                ctx.trace_ctx(),
            );
            r.metrics().counter_add("health.pus_declared_dead", 1);
            r.metrics().observe_ns("health.detect_ns", detect_latency.as_nanos());
            r.metrics().observe_ns("health.recover_ns", recovery_latency.as_nanos());
        });
        let report = RecoveryReport {
            pu,
            detected_at,
            detect_latency,
            recovery_latency,
            reclaim,
            instances_purged: purge.instances.len(),
            sandboxes_reconciled: purge.sandboxes_reconciled,
        };
        self.recoveries.lock().push(report.clone());
        // Run registered hooks outside the lock: a drain hook may itself
        // sleep (re-placing queued requests) or consult the checker.
        let hooks: Vec<Arc<DeadPuHook>> = self.dead_hooks.lock().clone();
        for hook in hooks {
            hook(ctx, pu);
        }
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionDef;
    use crate::gateway::GatewayConfig;
    use crate::keepalive::Lru;
    use crate::runtime::{Molecule, MoleculeConfig, StartupKind};
    use crate::schedule::Scheduler;
    use hetsim::engine::Simulation;
    use hetsim::pu::PuKind;
    use hetsim::topology::Machine;
    use vsandbox::spec::LangRuntime;

    fn gateway() -> ApiGateway {
        let molecule = Molecule::launch(Machine::paper_cpu_dpu_server(), MoleculeConfig::default());
        molecule.register_function(
            FunctionDef::builder("img", LangRuntime::Python)
                .profiles(&[PuKind::Dpu, PuKind::Cpu])
                .exec_ms(5.0)
                .init_ms(4.0)
                .cfork_first_run_ms(0.5)
                .build(),
        );
        ApiGateway::new(
            molecule,
            Scheduler::default(),
            GatewayConfig::default(),
            Box::new(Lru::new()),
        )
    }

    #[test]
    fn healthy_pus_stay_closed_and_schedulable() {
        let gw = gateway();
        let hc = HealthChecker::new(gw.clone(), HealthPolicy::default());
        assert_eq!(hc.monitored_pus(), vec![PuId(1), PuId(2)]);
        let mut sim = Simulation::new();
        let hc2 = hc.clone();
        sim.spawn("health", move |ctx| {
            let recovered = hc2.run(ctx, 3);
            assert!(recovered.is_empty());
        });
        sim.run().unwrap();
        assert_eq!(hc.status(PuId(1)), Some(PuStatus::Healthy));
        assert_eq!(hc.circuit(PuId(1)), Some(CircuitState::Closed));
        assert!(gw.avoided_pus().is_empty());
    }

    #[test]
    fn dead_pu_is_detected_recovered_and_requests_fail_over() {
        let gw = gateway();
        let hc = HealthChecker::new(gw.clone(), HealthPolicy::default());
        let mut sim = Simulation::new();
        let gw2 = gw.clone();
        let hc2 = hc.clone();
        let out = sim.spawn("driver", move |ctx| {
            gw2.molecule().bootstrap(ctx).unwrap();
            gw2.prepare_all_templates(ctx).unwrap();
            // Warm an instance on the preferred DPU.
            let first = gw2.handle_request(ctx, &"img".into(), 64).unwrap();
            assert_eq!(first.pu, PuId(1));
            // Crash the DPU.
            let machine = gw2.molecule().machine().clone();
            machine.fault_plane().kill_pu(ctx.now(), PuId(1));
            let mut recovered = hc2.run(ctx, 2);
            assert_eq!(recovered.len(), 1, "kill is detected as PeerDead at once");
            // The next request fails over to a survivor.
            let after = gw2.handle_request(ctx, &"img".into(), 64).unwrap();
            assert_ne!(after.pu, PuId(1));
            (recovered.remove(0), after.pu)
        });
        sim.run().unwrap();
        let (report, failover_pu) = out.take_result().unwrap();
        assert_eq!(report.pu, PuId(1));
        assert_eq!(report.instances_purged, 1);
        assert!(report.reclaim.processes >= 1, "executor pid reclaimed");
        assert_eq!(hc.status(PuId(1)), Some(PuStatus::Dead));
        assert_eq!(gw.avoided_pus(), vec![PuId(1)]);
        assert_eq!(failover_pu, PuId(2), "second DPU takes over");
    }

    #[test]
    fn healthy_probe_readmits_a_gateway_quarantined_pu() {
        let gw = gateway();
        let hc = HealthChecker::new(gw.clone(), HealthPolicy::default());
        let mut sim = Simulation::new();
        let gw2 = gw.clone();
        let hc2 = hc.clone();
        sim.spawn("health", move |ctx| {
            // A transient in-request timeout made the gateway quarantine the
            // DPU directly — the checker's circuit never opened, so only a
            // healthy probe can re-admit it.
            gw2.mark_pu_unschedulable(PuId(1));
            hc2.probe_round(ctx);
            assert!(gw2.avoided_pus().is_empty(), "healthy probe re-admits the PU");
            assert_eq!(hc2.circuit(PuId(1)), Some(CircuitState::Closed));
        });
        sim.run().unwrap();
    }

    #[test]
    fn flapping_pu_trips_the_circuit_then_recovers() {
        let gw = gateway();
        let policy = HealthPolicy {
            miss_threshold: 10, // don't declare dead in this test
            open_after: 1,
            half_open_after: SimDuration::from_micros(100),
            ..HealthPolicy::default()
        };
        let hc = HealthChecker::new(gw.clone(), policy);
        let mut sim = Simulation::new();
        let gw2 = gw.clone();
        let hc2 = hc.clone();
        sim.spawn("health", move |ctx| {
            let machine = gw2.molecule().machine().clone();
            // Hang pu1 long enough to eat a probe timeout.
            machine.fault_plane().hang_pu(ctx.now(), PuId(1), SimDuration::from_millis(1));
            hc2.probe_round(ctx);
            assert_eq!(hc2.circuit(PuId(1)), Some(CircuitState::Open));
            assert_eq!(gw2.avoided_pus(), vec![PuId(1)]);
            // Past the hang and the half-open window: the trial probe
            // succeeds and the circuit closes.
            ctx.sleep(SimDuration::from_millis(2));
            hc2.probe_round(ctx);
            assert_eq!(hc2.circuit(PuId(1)), Some(CircuitState::Closed));
            assert!(gw2.avoided_pus().is_empty());
        });
        sim.run().unwrap();
    }

    #[test]
    fn degraded_requests_are_counted_when_all_dpus_die() {
        let gw = gateway();
        let mut sim = Simulation::new();
        let gw2 = gw.clone();
        sim.spawn("driver", move |ctx| {
            gw2.molecule().bootstrap(ctx).unwrap();
            gw2.prepare_all_templates(ctx).unwrap();
            let machine = gw2.molecule().machine().clone();
            machine.fault_plane().kill_pu(ctx.now(), PuId(1));
            machine.fault_plane().kill_pu(ctx.now(), PuId(2));
            gw2.mark_pu_unschedulable(PuId(1));
            gw2.mark_pu_unschedulable(PuId(2));
            // The DPU-preferring function degrades to the CPU cost table.
            let served = gw2.handle_request(ctx, &"img".into(), 64).unwrap();
            assert_eq!(served.pu, PuId(0));
        });
        sim.run().unwrap();
        assert_eq!(gw.stats().degraded, 1);
    }

    #[test]
    fn start_instance_on_purged_pu_is_clean() {
        let gw = gateway();
        let mut sim = Simulation::new();
        sim.spawn("driver", move |ctx| {
            gw.molecule().bootstrap(ctx).unwrap();
            gw.prepare_all_templates(ctx).unwrap();
            let started = gw
                .molecule()
                .start_instance(ctx, &"img".into(), PuId(1), StartupKind::CforkLocal)
                .unwrap();
            let purge = gw.molecule().purge_pu(PuId(1));
            assert_eq!(purge.instances, vec![started.instance]);
            assert!(purge.executor_dropped);
            assert!(purge.sandboxes_reconciled >= 1);
            assert_eq!(gw.molecule().instance_pu(started.instance), None);
        });
        sim.run().unwrap();
    }
}
