//! FPGA instance caching (paper §4.2, "Caching FPGA function instances").
//!
//! Instead of fork, Molecule mitigates FPGA cold boots by *caching*: a
//! keep-alive policy predicts which functions to keep resident, and the
//! vectorized sandbox packs them into one image. On a miss the manager
//! repacks the image around the keep set plus the requested function and
//! re-flashes; on a hit the request goes straight to the resident sandbox.

use std::fmt;
use std::sync::Arc;

use hetsim::engine::ProcCtx;
use hetsim::pu::PuId;
use hetsim::time::SimDuration;
use parking_lot::Mutex;
use vsandbox::oci::{OciRuntime, VectorizedRuntime};
use vsandbox::spec::{FuncId, SandboxId, SandboxState};

use crate::error::MoleculeError;
use crate::keepalive::KeepAlivePolicy;
use crate::runtime::Molecule;

/// Counters the cache manager keeps.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FpgaCacheStats {
    /// Requests served by a resident kernel.
    pub hits: u64,
    /// Requests that required a re-flash.
    pub misses: u64,
    /// Images flashed (each miss flashes once).
    pub flashes: u64,
}

struct CacheState {
    policy: Box<dyn KeepAlivePolicy>,
    stats: FpgaCacheStats,
}

/// Keep-alive-driven vectorized image cache for one FPGA device.
#[derive(Clone)]
pub struct FpgaCacheManager {
    molecule: Molecule,
    pu: PuId,
    /// How many kernels one image may hold (the wrapper supports 12 on F1,
    /// Table 4).
    capacity: usize,
    state: Arc<Mutex<CacheState>>,
}

impl fmt::Debug for FpgaCacheManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FpgaCacheManager")
            .field("pu", &self.pu)
            .field("capacity", &self.capacity)
            .field("stats", &self.state.lock().stats)
            .finish()
    }
}

impl FpgaCacheManager {
    /// Creates a manager for the FPGA attached as `pu`, packing at most
    /// `capacity` kernels per image under `policy`.
    pub fn new(
        molecule: Molecule,
        pu: PuId,
        capacity: usize,
        policy: Box<dyn KeepAlivePolicy>,
    ) -> FpgaCacheManager {
        FpgaCacheManager {
            molecule,
            pu,
            capacity,
            state: Arc::new(Mutex::new(CacheState { policy, stats: FpgaCacheStats::default() })),
        }
    }

    /// Counters.
    pub fn stats(&self) -> FpgaCacheStats {
        self.state.lock().stats
    }

    /// True if `func`'s kernel is resident on the fabric right now.
    pub fn is_resident(&self, func: &FuncId) -> bool {
        self.molecule
            .runf(self.pu)
            .is_some_and(|runf| runf.is_resident(&SandboxId::new(func.as_str())))
    }

    /// The cache manager drives `runF` directly, below [`Molecule::invoke`]
    /// and its dead-PU guard — so it must consult the fault plane itself or
    /// a batch keeps executing on a crashed fabric. Surfacing the shim's
    /// fault shape sends gateways down their failover path, which re-places
    /// the whole in-flight batch instead of losing it.
    fn check_alive(&self) -> Result<(), MoleculeError> {
        if self.molecule.machine().fault_plane().is_dead(self.pu) {
            return Err(MoleculeError::Shim(xpu_shim::error::ShimError::PeerDead(self.pu)));
        }
        Ok(())
    }

    /// Serves one request for `func` with `input_bytes`, re-packing the
    /// image if the kernel is not resident. Returns the request latency and
    /// whether it was a hit.
    ///
    /// # Errors
    ///
    /// Unknown functions, functions without FPGA profiles, device errors.
    pub fn request(
        &self,
        ctx: &mut ProcCtx,
        func: &FuncId,
        input_bytes: u64,
    ) -> Result<(SimDuration, bool), MoleculeError> {
        self.check_alive()?;
        let t0 = ctx.now();
        let def = self
            .molecule
            .registry()
            .get(func)
            .ok_or_else(|| MoleculeError::UnknownFunction(func.clone()))?;
        let exec = def
            .fpga
            .as_ref()
            .ok_or(MoleculeError::UnsupportedPu { func: func.clone(), pu: self.pu })?
            .exec
            .host_time(input_bytes);
        let runf = self
            .molecule
            .runf(self.pu)
            .ok_or_else(|| MoleculeError::Internal(format!("no runf on {}", self.pu)))?
            .clone();

        let hit = self.is_resident(func);
        if !hit {
            // Miss: repack the image around the keep set + this function.
            let now = ctx.now();
            let mut pack = {
                let mut st = self.state.lock();
                st.policy.keep_set(now, self.capacity.saturating_sub(1))
            };
            pack.retain(|f| f != func && self.molecule.registry().get(f).is_some());
            pack.push(func.clone());
            self.molecule.cache_fpga_functions_replacing(ctx, self.pu, &pack)?;
            let mut st = self.state.lock();
            st.stats.misses += 1;
            st.stats.flashes += 1;
        } else {
            self.state.lock().stats.hits += 1;
        }

        // Ensure the sandbox serves (warm-sandbox prep on first use after a
        // flash), then run the kernel.
        let sandbox = SandboxId::new(func.as_str());
        if runf.state(ctx, &sandbox).map_err(MoleculeError::Sandbox)? != SandboxState::Running {
            runf.start(ctx, &sandbox).map_err(MoleculeError::Sandbox)?;
        }
        let dma = self
            .molecule
            .machine()
            .route(self.molecule.machine().host_cpu(), self.pu)
            .transfer_time(input_bytes);
        ctx.sleep(dma);
        runf.invoke(ctx, &sandbox, exec).map_err(MoleculeError::Sandbox)?;

        let now = ctx.now();
        self.state.lock().policy.on_invoke(func, now, exec, 1.0);
        Ok((now - t0, hit))
    }

    /// Serves a *batch* of concurrently pending requests in one pass: all
    /// missing kernels are packed into a **single** re-flash (keep set +
    /// every missed function), then each request starts its sandbox and
    /// runs. This is the cold-start aggregation path — N scalar misses cost
    /// N flashes that evict each other, a batch of N costs one.
    ///
    /// Returns `(latency, hit)` per request, in input order. Latencies are
    /// measured from the batch start, so co-batched requests share the
    /// single flash delay.
    ///
    /// # Errors
    ///
    /// Unknown functions, functions without FPGA profiles, device errors.
    /// On error nothing is partially recorded beyond the flash itself.
    pub fn request_batch(
        &self,
        ctx: &mut ProcCtx,
        reqs: &[(FuncId, u64)],
    ) -> Result<Vec<(SimDuration, bool)>, MoleculeError> {
        self.check_alive()?;
        let t0 = ctx.now();
        // Validate every request and classify hits/misses up front.
        let mut execs = Vec::with_capacity(reqs.len());
        let mut hits = Vec::with_capacity(reqs.len());
        let mut missed: Vec<FuncId> = Vec::new();
        for (func, input_bytes) in reqs {
            let def = self
                .molecule
                .registry()
                .get(func)
                .ok_or_else(|| MoleculeError::UnknownFunction(func.clone()))?;
            let exec = def
                .fpga
                .as_ref()
                .ok_or(MoleculeError::UnsupportedPu { func: func.clone(), pu: self.pu })?
                .exec
                .host_time(*input_bytes);
            execs.push(exec);
            let hit = self.is_resident(func);
            hits.push(hit);
            if !hit && !missed.contains(func) {
                missed.push(func.clone());
            }
        }
        let runf = self
            .molecule
            .runf(self.pu)
            .ok_or_else(|| MoleculeError::Internal(format!("no runf on {}", self.pu)))?
            .clone();

        if !missed.is_empty() {
            // One repack covering the keep set plus every missed function.
            let now = ctx.now();
            let keep_budget = self.capacity.saturating_sub(missed.len());
            let mut pack = {
                let mut st = self.state.lock();
                st.policy.keep_set(now, keep_budget)
            };
            pack.retain(|f| !missed.contains(f) && self.molecule.registry().get(f).is_some());
            pack.extend(missed.iter().cloned());
            self.molecule.cache_fpga_functions_replacing(ctx, self.pu, &pack)?;
            // The flash is seconds of virtual time — the fabric may have
            // died under it.
            self.check_alive()?;
        }
        {
            let mut st = self.state.lock();
            st.stats.hits += hits.iter().filter(|h| **h).count() as u64;
            st.stats.misses += hits.iter().filter(|h| !**h).count() as u64;
            if !missed.is_empty() {
                st.stats.flashes += 1;
            }
        }

        // Start every sandbox that needs it (vectorized: prep is charged
        // once per batch by runF's start_vec), then run each request.
        let mut to_start: Vec<SandboxId> = reqs
            .iter()
            .map(|(f, _)| SandboxId::new(f.as_str()))
            .filter(|sb| !matches!(runf.peek_state(sb), Some(SandboxState::Running)))
            .collect();
        to_start.sort();
        to_start.dedup();
        if !to_start.is_empty() {
            runf.start_vec(ctx, &to_start).map_err(MoleculeError::Sandbox)?;
        }
        let mut out = Vec::with_capacity(reqs.len());
        let host = self.molecule.machine().host_cpu();
        for (i, (func, input_bytes)) in reqs.iter().enumerate() {
            let sandbox = SandboxId::new(func.as_str());
            let dma = self.molecule.machine().route(host, self.pu).transfer_time(*input_bytes);
            ctx.sleep(dma);
            runf.invoke(ctx, &sandbox, execs[i]).map_err(MoleculeError::Sandbox)?;
            let now = ctx.now();
            self.state.lock().policy.on_invoke(func, now, execs[i], 1.0);
            out.push((now - t0, hits[i]));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{ExecModel, FunctionDef};
    use crate::keepalive::{GreedyDual, Lru};
    use crate::runtime::MoleculeConfig;
    use hetsim::engine::Simulation;
    use hetsim::fpga::{FpgaResources, KernelSpec};
    use hetsim::pu::PuKind;
    use hetsim::topology::Machine;
    use vsandbox::spec::LangRuntime;

    fn kernel_spec(name: &str) -> KernelSpec {
        KernelSpec {
            name: name.to_owned(),
            resources: FpgaResources { luts: 5_000, regs: 8_000, brams: 20, dsps: 36 },
        }
    }

    fn setup(capacity: usize, policy: Box<dyn KeepAlivePolicy>) -> (FpgaCacheManager, Vec<FuncId>) {
        let machine = Machine::paper_f1_instance();
        let fpga = machine.pus_of_kind(PuKind::Fpga)[0];
        let molecule = Molecule::launch(machine, MoleculeConfig::default());
        let mut funcs = Vec::new();
        for i in 0..6 {
            let name = format!("kern{i}");
            molecule.register_function(
                FunctionDef::builder(name.clone(), LangRuntime::OpenCl)
                    .profiles(&[PuKind::Fpga])
                    .fpga(kernel_spec(&name), ExecModel::Fixed(SimDuration::from_micros(100)))
                    .build(),
            );
            funcs.push(FuncId::new(name));
        }
        (FpgaCacheManager::new(molecule, fpga, capacity, policy), funcs)
    }

    #[test]
    fn repeat_requests_hit_after_first_flash() {
        let (mgr, funcs) = setup(4, Box::new(Lru::new()));
        let mut sim = Simulation::new();
        let m = mgr.clone();
        let f = funcs[0].clone();
        let out = sim.spawn("driver", move |ctx| {
            let (cold, hit0) = m.request(ctx, &f, 4096).unwrap();
            let (warm, hit1) = m.request(ctx, &f, 4096).unwrap();
            (cold, hit0, warm, hit1)
        });
        sim.run().unwrap();
        let (cold, hit0, warm, hit1) = out.take_result().unwrap();
        assert!(!hit0);
        assert!(hit1);
        assert!(cold > warm, "flash ({cold}) must dwarf the warm request ({warm})");
        assert!(warm < SimDuration::from_millis(1));
        assert_eq!(mgr.stats().flashes, 1);
    }

    #[test]
    fn keep_set_survives_repacking() {
        // Hot functions stay resident across a miss-triggered re-flash.
        let (mgr, funcs) = setup(4, Box::new(Lru::new()));
        let mut sim = Simulation::new();
        let m = mgr.clone();
        let fs = funcs.clone();
        let out = sim.spawn("driver", move |ctx| {
            // Warm up three hot functions.
            for f in &fs[0..3] {
                m.request(ctx, f, 1024).unwrap();
            }
            // A fourth function misses and triggers a repack.
            m.request(ctx, &fs[3], 1024).unwrap();
            (
                m.is_resident(&fs[0]),
                m.is_resident(&fs[1]),
                m.is_resident(&fs[2]),
                m.is_resident(&fs[3]),
            )
        });
        sim.run().unwrap();
        let (a, b, c, d) = out.take_result().unwrap();
        assert!(a && b && c && d, "keep set + new function all resident: {a} {b} {c} {d}");
        // Hot functions now hit without flashing.
        let stats = mgr.stats();
        assert!(stats.flashes <= 4);
    }

    #[test]
    fn batched_cold_starts_share_one_flash() {
        // Scalar: each miss repacks and the flashes thrash each other.
        let (scalar, funcs) = setup(6, Box::new(Lru::new()));
        let mut sim = Simulation::new();
        let m = scalar.clone();
        let fs = funcs.clone();
        let scalar_done = sim.spawn("scalar", move |ctx| {
            for f in &fs[0..4] {
                m.request(ctx, f, 1024).unwrap();
            }
            ctx.now()
        });
        sim.run().unwrap();
        let scalar_elapsed = scalar_done.take_result().unwrap();

        // Batched: the same four cold functions coalesce into one flash.
        let (batched, funcs2) = setup(6, Box::new(Lru::new()));
        let mut sim = Simulation::new();
        let m = batched.clone();
        let fs = funcs2.clone();
        let out = sim.spawn("batch", move |ctx| {
            let reqs: Vec<(FuncId, u64)> = fs[0..4].iter().map(|f| (f.clone(), 1024)).collect();
            let results = m.request_batch(ctx, &reqs).unwrap();
            (results, ctx.now())
        });
        sim.run().unwrap();
        let (results, batch_elapsed) = out.take_result().unwrap();

        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|(_, hit)| !hit), "all four were cold");
        assert_eq!(batched.stats().flashes, 1, "one vectorized flash for the batch");
        assert_eq!(batched.stats().misses, 4);
        assert!(scalar.stats().flashes >= 4, "scalar path flashes per miss: {:?}", scalar.stats());
        assert!(
            batch_elapsed < scalar_elapsed,
            "batch {batch_elapsed} must beat scalar {scalar_elapsed}"
        );
        // Everything in the batch is resident and serves hits afterwards.
        let mut sim = Simulation::new();
        let m = batched.clone();
        let f0 = funcs2[0].clone();
        let h = sim.spawn("after", move |ctx| m.request(ctx, &f0, 1024).unwrap().1);
        sim.run().unwrap();
        assert!(h.take_result().unwrap(), "post-batch request hits");
    }

    #[test]
    fn skewed_workload_hit_rate_is_high_under_greedy_dual() {
        let (mgr, funcs) = setup(4, Box::new(GreedyDual::new()));
        let mut sim = Simulation::new();
        let m = mgr.clone();
        let fs = funcs.clone();
        let _ = sim.spawn("driver", move |ctx| {
            // Zipf-ish: 3 hot functions dominate, 3 cold ones appear rarely.
            let pattern =
                [0usize, 1, 2, 0, 1, 2, 0, 1, 2, 3, 0, 1, 2, 0, 1, 2, 4, 0, 1, 2, 0, 1, 2, 5];
            for &i in pattern.iter() {
                m.request(ctx, &fs[i], 1024).unwrap();
            }
        });
        sim.run().unwrap();
        let stats = mgr.stats();
        let total = stats.hits + stats.misses;
        let hit_rate = stats.hits as f64 / total as f64;
        assert!(hit_rate >= 0.6, "hit rate {hit_rate} ({stats:?})");
        // The hot trio must still be resident at the end.
        for f in &funcs[0..3] {
            assert!(mgr.is_resident(f), "{f} evicted");
        }
    }
}
