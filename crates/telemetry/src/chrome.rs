//! Chrome `trace_event` export.
//!
//! Renders a merged event stream as the JSON array format understood by
//! `chrome://tracing` and <https://ui.perfetto.dev>: one process (`pid` 0,
//! the simulation) with one thread lane per PU, spans as `ph:"X"` complete
//! events and point events as `ph:"i"` instants. Timestamps are virtual
//! microseconds (fractional, so nanosecond resolution survives).

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

use crate::json::{escape_into, number_into};
use crate::recorder::{Event, EventKind};
use crate::{SpanContext, SpanId, ENGINE_LANE};

/// The exporter's display name for a lane without an explicit name.
pub fn default_lane_name(pu: u16) -> String {
    if pu == ENGINE_LANE {
        "engine".to_owned()
    } else {
        format!("pu{pu}")
    }
}

fn ns_to_us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

fn push_common(out: &mut String, name: &str, ph: char, pu: u16, ts_us: f64) {
    out.push_str("{\"name\":");
    escape_into(out, name);
    let _ = write!(out, ",\"ph\":\"{ph}\",\"pid\":0,\"tid\":{pu},\"ts\":");
    number_into(out, ts_us);
}

fn push_args(out: &mut String, ctx: Option<SpanContext>, parent: Option<SpanId>) {
    out.push_str(",\"args\":{");
    let mut first = true;
    if let Some(ctx) = ctx {
        let _ = write!(out, "\"trace\":\"{}\",\"span\":\"{}\"", ctx.trace, ctx.span);
        first = false;
    }
    if let Some(parent) = parent {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "\"parent\":\"{parent}\"");
    }
    out.push('}');
}

/// Renders `events` as a Chrome `trace_event` JSON array.
///
/// Open `Begin` spans without a matching `End` are closed at the last
/// timestamp seen; `End` events without a `Begin` are dropped.
pub fn trace_json(events: &[Event], lane_names: &BTreeMap<u16, String>) -> String {
    let end_of_time = events.iter().map(span_end_ns).max().unwrap_or(0);

    // Pair Begin/End by span id so both become one complete event.
    let mut ends: HashMap<SpanId, u64> = HashMap::new();
    for e in events {
        if let EventKind::End { ctx } = e.kind {
            ends.entry(ctx.span).or_insert(e.t_ns);
        }
    }

    let mut out = String::from("[");
    let mut first = true;
    let emit_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };

    // Lane metadata: name every lane that appears in the stream.
    let mut lanes: Vec<u16> = events.iter().map(|e| e.pu).collect();
    lanes.sort_unstable();
    lanes.dedup();
    emit_sep(&mut out, &mut first);
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"molecule-sim\"}}",
    );
    for pu in &lanes {
        let name = lane_names.get(pu).cloned().unwrap_or_else(|| default_lane_name(*pu));
        emit_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{pu},\"args\":{{\"name\":"
        );
        escape_into(&mut out, &name);
        out.push_str("}}");
    }

    for e in events {
        match e.kind {
            EventKind::Span { ctx, parent, dur_ns } => {
                emit_sep(&mut out, &mut first);
                push_common(&mut out, &e.name, 'X', e.pu, ns_to_us(e.t_ns));
                out.push_str(",\"dur\":");
                number_into(&mut out, ns_to_us(dur_ns));
                push_args(&mut out, Some(ctx), parent);
                out.push('}');
            }
            EventKind::Begin { ctx, parent } => {
                let end_ns = ends.get(&ctx.span).copied().unwrap_or(end_of_time);
                emit_sep(&mut out, &mut first);
                push_common(&mut out, &e.name, 'X', e.pu, ns_to_us(e.t_ns));
                out.push_str(",\"dur\":");
                number_into(&mut out, ns_to_us(end_ns.saturating_sub(e.t_ns)));
                push_args(&mut out, Some(ctx), parent);
                out.push('}');
            }
            EventKind::End { .. } => {} // folded into its Begin
            EventKind::Instant { ctx } => {
                emit_sep(&mut out, &mut first);
                push_common(&mut out, &e.name, 'i', e.pu, ns_to_us(e.t_ns));
                out.push_str(",\"s\":\"t\"");
                push_args(&mut out, ctx, None);
                out.push('}');
            }
        }
    }
    out.push_str("]\n");
    out
}

fn span_end_ns(e: &Event) -> u64 {
    match e.kind {
        EventKind::Span { dur_ns, .. } => e.t_ns.saturating_add(dur_ns),
        _ => e.t_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    /// A tiny structural validator: enough JSON parsing to prove the
    /// exporter emits a well-formed array of objects.
    fn assert_valid_json_array(s: &str) {
        let s = s.trim();
        assert!(s.starts_with('[') && s.ends_with(']'), "not an array: {s}");
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '[' | '{' => depth += 1,
                ']' | '}' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced brackets in {s}");
        }
        assert_eq!(depth, 0, "unbalanced brackets in {s}");
        assert!(!in_str, "unterminated string in {s}");
    }

    #[test]
    fn exports_complete_spans_and_instants() {
        let r = Recorder::new();
        r.set_lane_name(0, "cpu0");
        let root = r.complete_span(0, 1_000, 26_000, "xpucall", None);
        r.instant(2, 26_000, "fifo-write", Some(root));
        let json = r.chrome_trace();
        assert_valid_json_array(&json);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":25"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"cpu0\""));
        assert!(json.contains("\"pu2\""));
        assert!(json.contains("thread_name"));
    }

    #[test]
    fn begin_end_pairs_become_one_complete_event() {
        let r = Recorder::new();
        let ctx = r.begin_span(1, 10_000, "instance", None);
        r.end_span(1, 40_000, ctx);
        let json = r.chrome_trace();
        assert_valid_json_array(&json);
        assert!(json.contains("\"dur\":30"));
        // The End event itself must not leak as a separate entry.
        assert_eq!(json.matches("\"instance\"").count(), 1);
    }

    #[test]
    fn unmatched_begin_is_closed_at_end_of_time() {
        let r = Recorder::new();
        r.begin_span(0, 5_000, "daemon", None);
        r.instant(0, 105_000, "late", None);
        let json = r.chrome_trace();
        assert_valid_json_array(&json);
        assert!(json.contains("\"dur\":100"));
    }

    #[test]
    fn engine_lane_gets_a_name() {
        let r = Recorder::new();
        r.instant(ENGINE_LANE, 0, "dispatch", None);
        let json = r.chrome_trace();
        assert!(json.contains("\"engine\""));
    }

    #[test]
    fn escapes_names() {
        let r = Recorder::new();
        r.instant(0, 0, "weird\"name\n", None);
        assert_valid_json_array(&r.chrome_trace());
    }
}
