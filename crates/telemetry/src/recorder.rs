//! Per-PU event buffers and the deterministic merge.
//!
//! Each PU (and the engine itself, [`crate::ENGINE_LANE`]) records into its
//! own lane: a `Vec` of events plus a per-lane sequence counter. Because
//! the simulation engine resumes exactly one process at a time, the
//! `(virtual time, lane, sequence)` triple totally orders every event the
//! same way on every run — [`Recorder::events`] merges the lanes by that
//! key, so the merged trace is bit-for-bit reproducible.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Mutex;

use crate::flight::FlightRecorder;
use crate::metrics::MetricsRegistry;
use crate::{SpanContext, SpanId};

/// What an [`Event`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span whose start and end were both known when it was recorded
    /// (`t_ns` is the start; `dur_ns` the virtual-time extent).
    Span {
        /// The span's context.
        ctx: SpanContext,
        /// The span that caused it, if any.
        parent: Option<SpanId>,
        /// Virtual-time extent in nanoseconds.
        dur_ns: u64,
    },
    /// An open-ended span start (paired with [`EventKind::End`] by span id).
    Begin {
        /// The span's context.
        ctx: SpanContext,
        /// The span that caused it, if any.
        parent: Option<SpanId>,
    },
    /// Closes a span opened by [`EventKind::Begin`].
    End {
        /// The context of the span being closed.
        ctx: SpanContext,
    },
    /// A point event (a message send, a wake-up, an admission decision).
    Instant {
        /// The context the event happened under, if known.
        ctx: Option<SpanContext>,
    },
}

/// One recorded telemetry event on one PU lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual time of the event (start time for spans), in nanoseconds.
    pub t_ns: u64,
    /// The PU lane the event was recorded on.
    pub pu: u16,
    /// Per-lane sequence number (assigned at record time; tie-breaker).
    pub seq: u64,
    /// Event name (e.g. `"exec:resize"`, `"xpucall"`, `"dispatch"`).
    pub name: String,
    /// Payload.
    pub kind: EventKind,
}

#[derive(Default)]
struct Lane {
    seq: u64,
    events: Vec<Event>,
}

#[derive(Default)]
struct Inner {
    lanes: BTreeMap<u16, Lane>,
    lane_names: BTreeMap<u16, String>,
}

/// Collects events from every PU into per-lane buffers and merges them
/// deterministically. See the [module docs](self).
#[derive(Default)]
pub struct Recorder {
    inner: Mutex<Inner>,
    metrics: MetricsRegistry,
    flight: FlightRecorder,
}

impl Recorder {
    /// An empty recorder with the default flight-ring capacity.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// An empty recorder whose flight ring keeps the last `capacity` events.
    pub fn with_flight_capacity(capacity: usize) -> Recorder {
        Recorder {
            inner: Mutex::default(),
            metrics: MetricsRegistry::default(),
            flight: FlightRecorder::with_capacity(capacity),
        }
    }

    /// The metrics registry that rides along with this recorder.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The flight-recorder ring that rides along with this recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Names lane `pu` for exporters (e.g. `"cpu0"`, `"dpu1"`, `"fpga2"`).
    pub fn set_lane_name(&self, pu: u16, name: impl Into<String>) {
        self.lock().lane_names.insert(pu, name.into());
    }

    /// Records a completed span and returns its freshly allocated context
    /// (a child of `parent` when given, a new root trace otherwise).
    pub fn complete_span(
        &self,
        pu: u16,
        t0_ns: u64,
        t1_ns: u64,
        name: &str,
        parent: Option<SpanContext>,
    ) -> SpanContext {
        let ctx = parent.map_or_else(SpanContext::root, |p| p.child());
        let kind = EventKind::Span {
            ctx,
            parent: parent.map(|p| p.span),
            dur_ns: t1_ns.saturating_sub(t0_ns),
        };
        self.push(pu, t0_ns, name, kind);
        ctx
    }

    /// Opens a span (close it with [`end_span`](Self::end_span)).
    pub fn begin_span(
        &self,
        pu: u16,
        t_ns: u64,
        name: &str,
        parent: Option<SpanContext>,
    ) -> SpanContext {
        let ctx = parent.map_or_else(SpanContext::root, |p| p.child());
        self.push(pu, t_ns, name, EventKind::Begin { ctx, parent: parent.map(|p| p.span) });
        ctx
    }

    /// Closes a span previously opened with [`begin_span`](Self::begin_span).
    pub fn end_span(&self, pu: u16, t_ns: u64, ctx: SpanContext) {
        self.push(pu, t_ns, "", EventKind::End { ctx });
    }

    /// Records a point event.
    pub fn instant(&self, pu: u16, t_ns: u64, name: &str, ctx: Option<SpanContext>) {
        self.push(pu, t_ns, name, EventKind::Instant { ctx });
    }

    fn push(&self, pu: u16, t_ns: u64, name: &str, kind: EventKind) {
        self.flight.note_event(t_ns, pu, name, &kind);
        let mut inner = self.lock();
        let lane = inner.lanes.entry(pu).or_default();
        let seq = lane.seq;
        lane.seq += 1;
        lane.events.push(Event { t_ns, pu, seq, name: name.to_owned(), kind });
    }

    /// All events, merged across lanes and ordered by
    /// `(virtual time, lane, per-lane sequence)` — deterministic for a
    /// deterministic simulation.
    pub fn events(&self) -> Vec<Event> {
        let inner = self.lock();
        let mut all: Vec<Event> =
            inner.lanes.values().flat_map(|lane| lane.events.iter().cloned()).collect();
        all.sort_by_key(|e| (e.t_ns, e.pu, e.seq));
        all
    }

    /// The lanes that recorded at least one event, in lane order.
    pub fn lanes(&self) -> Vec<u16> {
        self.lock().lanes.keys().copied().collect()
    }

    /// Exporter names for lanes (see [`set_lane_name`](Self::set_lane_name)).
    pub fn lane_names(&self) -> BTreeMap<u16, String> {
        self.lock().lane_names.clone()
    }

    /// Renders the merged trace as Chrome `trace_event` JSON.
    pub fn chrome_trace(&self) -> String {
        crate::chrome::trace_json(&self.events(), &self.lane_names())
    }

    /// Writes the Chrome trace to `path` (open with `chrome://tracing` or
    /// <https://ui.perfetto.dev>).
    pub fn export_chrome_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.chrome_trace())
    }

    /// Drops every recorded event and lane (metrics and flight ring stay).
    pub fn clear(&self) {
        self.lock().lanes.clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_by_time_then_lane_then_seq() {
        let r = Recorder::new();
        r.instant(1, 50, "b", None);
        r.instant(0, 50, "a", None);
        r.instant(0, 10, "first", None);
        r.instant(0, 50, "c", None);
        let names: Vec<_> = r.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["first", "a", "c", "b"]);
    }

    #[test]
    fn complete_span_parents_correctly() {
        let r = Recorder::new();
        let root = r.complete_span(0, 0, 100, "root", None);
        let child = r.complete_span(1, 10, 20, "child", Some(root));
        assert_eq!(child.trace, root.trace);
        let events = r.events();
        match events[1].kind {
            EventKind::Span { parent, .. } => assert_eq!(parent, Some(root.span)),
            ref other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn begin_end_share_a_context() {
        let r = Recorder::new();
        let ctx = r.begin_span(2, 5, "proc", None);
        r.end_span(2, 50, ctx);
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0].kind, EventKind::Begin { ctx: c, .. } if c == ctx));
        assert!(matches!(events[1].kind, EventKind::End { ctx: c } if c == ctx));
    }

    #[test]
    fn lanes_and_names() {
        let r = Recorder::new();
        r.set_lane_name(0, "cpu0");
        r.instant(0, 0, "x", None);
        r.instant(3, 0, "y", None);
        assert_eq!(r.lanes(), vec![0, 3]);
        assert_eq!(r.lane_names().get(&0).map(String::as_str), Some("cpu0"));
    }

    #[test]
    fn events_feed_the_flight_ring() {
        let r = Recorder::with_flight_capacity(2);
        r.instant(0, 1, "one", None);
        r.instant(0, 2, "two", None);
        r.instant(0, 3, "three", None);
        let dump = r.flight().dump();
        assert!(!dump.contains("one"), "oldest event should have been evicted:\n{dump}");
        assert!(dump.contains("two") && dump.contains("three"));
    }
}
