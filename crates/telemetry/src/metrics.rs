//! Metrics: counters, gauges and log2-bucketed virtual-time histograms.
//!
//! Histograms bucket by the bit width of the sample (`bucket i` holds
//! values in `[2^(i-1), 2^i)`, bucket 0 holds zero), so recording is O(1),
//! the memory is a fixed 65-slot array, and two histograms merge by
//! element-wise addition — merging is associative and commutative and
//! conserves sample counts, which the property tests in `crates/core`
//! assert.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::json::escape_into;

/// Number of histogram buckets: one for zero plus one per bit of a `u64`.
pub const BUCKET_COUNT: usize = 65;

/// A log2-bucketed histogram of `u64` samples (virtual-time nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKET_COUNT],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram { buckets: [0; BUCKET_COUNT], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// The bucket a value lands in: 0 for zero, else `64 - leading_zeros`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// The `[low, high]` value range covered by bucket `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < BUCKET_COUNT, "bucket index out of range");
        if index == 0 {
            (0, 0)
        } else {
            let low = 1u64 << (index - 1);
            let high = if index == 64 { u64::MAX } else { (1u64 << index) - 1 };
            (low, high)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self` (associative, conserves counts).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKET_COUNT] {
        &self.buckets
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket holding the rank-`ceil(q * count)` sample, clamped to the
    /// observed `[min, max]`. Monotone in `q`, so `p50 <= p99` always.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q.clamp(0.0, 1.0)).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, high) = Self::bucket_bounds(i);
                return high.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Formats a metric name carrying a tenant label: `base{tenant=N}`.
///
/// The tenant dimension is encoded in the name so labelled series flow
/// through the existing registry, snapshot merge and BENCH JSON export
/// unchanged; [`split_tenant_metric`] and the snapshot's
/// [`tenant_counters`](MetricsSnapshot::tenant_counters) /
/// [`tenant_histograms`](MetricsSnapshot::tenant_histograms) group them
/// back per tenant on the read side.
pub fn tenant_metric(base: &str, tenant: u32) -> String {
    format!("{base}{{tenant={tenant}}}")
}

/// Splits a labelled name back into `(base, tenant)`, or `None` for an
/// unlabelled metric.
pub fn split_tenant_metric(name: &str) -> Option<(&str, u32)> {
    let rest = name.strip_suffix('}')?;
    let (base, tenant) = rest.rsplit_once("{tenant=")?;
    Some((base, tenant.parse().ok()?))
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Named counters, gauges and histograms behind one lock.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named monotone counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        if let Some(c) = inner.counters.get_mut(name) {
            *c += delta;
        } else {
            inner.counters.insert(name.to_owned(), delta);
        }
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        let mut inner = self.lock();
        if let Some(g) = inner.gauges.get_mut(name) {
            *g = value;
        } else {
            inner.gauges.insert(name.to_owned(), value);
        }
    }

    /// Records a virtual-time sample (nanoseconds) into the named histogram.
    pub fn observe_ns(&self, name: &str, ns: u64) {
        let mut inner = self.lock();
        if let Some(h) = inner.histograms.get_mut(name) {
            h.record(ns);
        } else {
            let mut h = Histogram::new();
            h.record(ns);
            inner.histograms.insert(name.to_owned(), h);
        }
    }

    /// Adds `delta` to the tenant-labelled counter `base{tenant=N}`.
    pub fn counter_add_tenant(&self, base: &str, tenant: u32, delta: u64) {
        self.counter_add(&tenant_metric(base, tenant), delta);
    }

    /// Records a sample into the tenant-labelled histogram `base{tenant=N}`.
    pub fn observe_ns_tenant(&self, base: &str, tenant: u32, ns: u64) {
        self.observe_ns(&tenant_metric(base, tenant), ns);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Drops every metric.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mergeable point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (last write wins on merge).
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters add, gauges take `other`'s
    /// value, histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// The per-tenant values of the labelled counter family `base`, keyed
    /// by tenant id.
    pub fn tenant_counters(&self, base: &str) -> BTreeMap<u32, u64> {
        self.counters
            .iter()
            .filter_map(|(name, v)| match split_tenant_metric(name) {
                Some((b, tenant)) if b == base => Some((tenant, *v)),
                _ => None,
            })
            .collect()
    }

    /// The per-tenant histograms of the labelled family `base`, keyed by
    /// tenant id.
    pub fn tenant_histograms(&self, base: &str) -> BTreeMap<u32, &Histogram> {
        self.histograms
            .iter()
            .filter_map(|(name, h)| match split_tenant_metric(name) {
                Some((b, tenant)) if b == base => Some((tenant, h)),
                _ => None,
            })
            .collect()
    }

    /// Compact JSON rendering (histograms as summary statistics).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{},\
                 \"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bounds(2), (2, 3));
        assert_eq!(Histogram::bucket_bounds(64).1, u64::MAX);
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 1000, 2000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 2000);
        assert!(h.quantile(0.5) <= h.quantile(0.99));
        assert_eq!(h.quantile(1.0), 2000);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn merge_conserves_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5u64, 10, 15] {
            a.record(v);
        }
        for v in [0u64, 100] {
            b.record(v);
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.sum(), a.sum() + b.sum());
        assert_eq!(merged.min(), 0);
        assert_eq!(merged.max(), 100);
        assert_eq!(merged.buckets().iter().sum::<u64>(), 5);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn registry_and_snapshot_merge() {
        let reg = MetricsRegistry::new();
        reg.counter_add("requests", 2);
        reg.counter_add("requests", 3);
        reg.gauge_set("instances", 7);
        reg.observe_ns("latency", 1000);
        let mut snap = reg.snapshot();
        assert_eq!(snap.counters["requests"], 5);

        let other = MetricsRegistry::new();
        other.counter_add("requests", 1);
        other.gauge_set("instances", 9);
        other.observe_ns("latency", 2000);
        snap.merge(&other.snapshot());
        assert_eq!(snap.counters["requests"], 6);
        assert_eq!(snap.gauges["instances"], 9);
        assert_eq!(snap.histograms["latency"].count(), 2);
    }

    #[test]
    fn tenant_label_round_trips_and_groups() {
        assert_eq!(tenant_metric("sched.shed", 3), "sched.shed{tenant=3}");
        assert_eq!(split_tenant_metric("sched.shed{tenant=3}"), Some(("sched.shed", 3)));
        assert_eq!(split_tenant_metric("sched.shed"), None);
        assert_eq!(split_tenant_metric("sched.shed{tenant=x}"), None);

        let reg = MetricsRegistry::new();
        reg.counter_add_tenant("sched.shed", 1, 2);
        reg.counter_add_tenant("sched.shed", 2, 5);
        reg.counter_add("sched.shed", 9); // unlabelled stays separate
        reg.observe_ns_tenant("sched.latency", 1, 1000);
        reg.observe_ns_tenant("sched.latency", 1, 3000);
        let snap = reg.snapshot();
        let by_tenant = snap.tenant_counters("sched.shed");
        assert_eq!(by_tenant.get(&1), Some(&2));
        assert_eq!(by_tenant.get(&2), Some(&5));
        assert_eq!(by_tenant.len(), 2);
        let hists = snap.tenant_histograms("sched.latency");
        assert_eq!(hists[&1].count(), 2);
        // Labelled series survive snapshot merge like any other metric.
        let mut merged = snap.clone();
        merged.merge(&snap);
        assert_eq!(merged.tenant_counters("sched.shed")[&2], 10);
    }

    #[test]
    fn snapshot_json_is_valid_shape() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", 1);
        reg.gauge_set("g", -2);
        reg.observe_ns("h", 500);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"counters\":{\"c\":1}"));
        assert!(json.contains("\"g\":-2"));
        assert!(json.contains("\"count\":1"));
    }
}
