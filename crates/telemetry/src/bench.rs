//! Machine-readable bench export: `BENCH_<figure>.json`.
//!
//! Every figure binary prints a human table *and* writes the same data as
//! JSON so reproduction scripts can diff runs without scraping stdout.
//! Cells keep their raw text and, when they parse as `<number><unit>`
//! (`"25.0us"`, `"1.23x"`, `"87%"`), a numeric value/unit pair.

use std::io;
use std::path::{Path, PathBuf};

use crate::json::{escape_into, number_into};

/// Splits a table cell like `"25.0us"` into `(25.0, "us")`.
///
/// Returns `None` when the cell has no leading number (e.g. `"n/a"`).
pub fn parse_cell(raw: &str) -> Option<(f64, &str)> {
    let s = raw.trim();
    let mut end = 0;
    let bytes = s.as_bytes();
    if end < bytes.len() && (bytes[end] == b'-' || bytes[end] == b'+') {
        end += 1;
    }
    let digits_start = end;
    let mut seen_dot = false;
    while end < bytes.len() {
        match bytes[end] {
            b'0'..=b'9' => end += 1,
            b'.' if !seen_dot => {
                seen_dot = true;
                end += 1;
            }
            _ => break,
        }
    }
    if end == digits_start {
        return None;
    }
    let value: f64 = s[..end].parse().ok()?;
    Some((value, s[end..].trim()))
}

/// One figure's table, ready to export. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSummary {
    /// Figure tag, e.g. `"fig08"` — names the output file.
    pub figure: String,
    /// Human title of the figure.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Table rows (same arity as `header`).
    pub rows: Vec<Vec<String>>,
}

impl BenchSummary {
    /// Builds a summary from the same data a printed table uses.
    pub fn new(
        figure: impl Into<String>,
        title: impl Into<String>,
        header: &[&str],
        rows: &[Vec<String>],
    ) -> BenchSummary {
        BenchSummary {
            figure: figure.into(),
            title: title.into(),
            header: header.iter().map(|h| (*h).to_owned()).collect(),
            rows: rows.to_vec(),
        }
    }

    /// The canonical output file name, `BENCH_<figure>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.figure)
    }

    /// Renders the summary as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"figure\":");
        escape_into(&mut out, &self.figure);
        out.push_str(",\"title\":");
        escape_into(&mut out, &self.title);
        out.push_str(",\"header\":[");
        for (i, h) in self.header.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, h);
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"raw\":");
                escape_into(&mut out, cell);
                if let Some((value, unit)) = parse_cell(cell) {
                    out.push_str(",\"value\":");
                    number_into(&mut out, value);
                    out.push_str(",\"unit\":");
                    escape_into(&mut out, unit);
                }
                out.push('}');
            }
            out.push(']');
        }
        out.push_str("]}\n");
        out
    }

    /// Writes `BENCH_<figure>.json` into `dir` and returns the path.
    pub fn write_to_dir(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let path = dir.as_ref().join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_cell_variants() {
        assert_eq!(parse_cell("25.0us"), Some((25.0, "us")));
        assert_eq!(parse_cell("1.23x"), Some((1.23, "x")));
        assert_eq!(parse_cell("87%"), Some((87.0, "%")));
        assert_eq!(parse_cell("-3.5 ms"), Some((-3.5, "ms")));
        assert_eq!(parse_cell("42"), Some((42.0, "")));
        assert_eq!(parse_cell("n/a"), None);
        assert_eq!(parse_cell(""), None);
        assert_eq!(parse_cell("-"), None);
    }

    #[test]
    fn summary_json_shape() {
        let summary = BenchSummary::new(
            "fig08",
            "nIPC latency",
            &["size", "poll"],
            &[vec!["16B".to_owned(), "25.0us".to_owned()]],
        );
        assert_eq!(summary.file_name(), "BENCH_fig08.json");
        let json = summary.to_json();
        assert!(json.contains("\"figure\":\"fig08\""));
        assert!(json.contains("\"raw\":\"25.0us\",\"value\":25,\"unit\":\"us\""));
        assert!(json.contains("\"raw\":\"16B\",\"value\":16,\"unit\":\"B\""));
    }

    #[test]
    fn write_to_dir_roundtrip() {
        let dir = std::env::temp_dir();
        let summary = BenchSummary::new("figtest", "t", &["a"], &[vec!["1x".to_owned()]]);
        let path = summary.write_to_dir(&dir).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, summary.to_json());
        let _ = std::fs::remove_file(path);
    }
}
