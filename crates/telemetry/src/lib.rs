//! Cross-PU observability for the Molecule reproduction.
//!
//! Molecule's core claim is that serverless abstractions can span
//! heterogeneous PUs (CPUs, DPUs, FPGAs) behind one OS-like interface; this
//! crate makes that visible. It provides, in virtual time:
//!
//! * **Distributed tracing** — [`TraceId`]/[`SpanId`] contexts that
//!   piggyback on XPUcall requests, nIPC FIFO messages and xSpawn capability
//!   vectors, so a single request is one trace even as it hops CPU → DPU →
//!   FPGA. Each PU records into its own lane buffer; [`Recorder::events`]
//!   merges the lanes deterministically by `(virtual time, lane, sequence)`.
//! * **Metrics** — a registry of counters, gauges and log2-bucketed
//!   virtual-time [`Histogram`]s with mergeable [`MetricsSnapshot`]s.
//! * **Exporters** — Chrome `trace_event` JSON (one lane per PU, see
//!   [`chrome`]) and the machine-readable bench summaries every figure
//!   binary writes as `BENCH_<figure>.json` (see [`bench`]).
//! * **A flight recorder** — a bounded ring of recent structured events,
//!   dumped on test failure or executor crash (see [`flight`]).
//!
//! The crate is dependency-free and knows nothing about the simulator:
//! times are plain `u64` nanoseconds of virtual time and PUs are `u16`
//! lane ids, so every layer of the stack (including `hetsim` itself) can
//! depend on it without cycles.
//!
//! # Recording
//!
//! Instrumentation points never talk to a recorder directly; they go
//! through the process-global slot:
//!
//! ```
//! let recorder = molecule_telemetry::install_default();
//! molecule_telemetry::with(|r| {
//!     let ctx = r.complete_span(0, 100, 250, "exec", None);
//!     r.instant(1, 250, "fifo-write", Some(ctx));
//! });
//! let events = recorder.events();
//! assert_eq!(events.len(), 2);
//! molecule_telemetry::uninstall();
//! ```
//!
//! When no recorder is installed (the default), [`with`] is a single
//! relaxed atomic load and the closure never runs: the disabled hot path
//! performs **no allocation and no locking**, and — because recording never
//! sleeps or schedules — virtual-time results are identical either way.

pub mod bench;
pub mod chrome;
pub mod flight;
mod json;
pub mod metrics;
pub mod recorder;

pub use bench::BenchSummary;
pub use flight::{FlightEvent, FlightRecorder};
pub use metrics::{
    split_tenant_metric, tenant_metric, Histogram, MetricsRegistry, MetricsSnapshot,
};
pub use recorder::{Event, EventKind, Recorder};

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Lane id used for events recorded by the simulation engine itself rather
/// than any particular PU (scheduler wake-ups, dispatches).
pub const ENGINE_LANE: u16 = u16::MAX;

/// Identifier of one distributed trace (one end-to-end request).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifier of one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

impl TraceId {
    /// Allocates a fresh, process-unique trace id.
    pub fn next() -> TraceId {
        TraceId(NEXT_TRACE.fetch_add(1, Ordering::Relaxed))
    }
}

impl SpanId {
    /// Allocates a fresh, process-unique span id.
    pub fn next() -> SpanId {
        SpanId(NEXT_SPAN.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{:08x}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{:08x}", self.0)
    }
}

/// The propagated half of a trace: which trace a message belongs to and
/// which span caused it.
///
/// `SpanContext` is `Copy` and 16 bytes, cheap enough to piggyback on every
/// XPUcall, FIFO message and xSpawn capability vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// The trace this context belongs to.
    pub trace: TraceId,
    /// The span that produced it.
    pub span: SpanId,
}

impl SpanContext {
    /// Starts a new trace with a fresh root span.
    pub fn root() -> SpanContext {
        SpanContext { trace: TraceId::next(), span: SpanId::next() }
    }

    /// A child context in the same trace with a fresh span id.
    pub fn child(&self) -> SpanContext {
        SpanContext { trace: self.trace, span: SpanId::next() }
    }

    /// Wire encoding for byte-level protocols (16 little-endian bytes).
    pub fn to_wire(&self) -> [u8; 16] {
        let mut buf = [0u8; 16];
        buf[..8].copy_from_slice(&self.trace.0.to_le_bytes());
        buf[8..].copy_from_slice(&self.span.0.to_le_bytes());
        buf
    }

    /// Decodes a context produced by [`to_wire`](Self::to_wire).
    /// Returns `None` on short input or an all-zero (absent) context.
    pub fn from_wire(bytes: &[u8]) -> Option<SpanContext> {
        if bytes.len() < 16 {
            return None;
        }
        let trace = u64::from_le_bytes(bytes[..8].try_into().ok()?);
        let span = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        if trace == 0 {
            return None;
        }
        Some(SpanContext { trace: TraceId(trace), span: SpanId(span) })
    }
}

impl fmt::Display for SpanContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.trace, self.span)
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);

/// Installs `recorder` as the process-global recorder and enables recording.
pub fn install(recorder: Arc<Recorder>) {
    *GLOBAL.write().unwrap_or_else(|e| e.into_inner()) = Some(recorder);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Creates a fresh [`Recorder`], installs it globally, and returns it.
pub fn install_default() -> Arc<Recorder> {
    let recorder = Arc::new(Recorder::new());
    install(Arc::clone(&recorder));
    recorder
}

/// Disables recording and drops the global recorder (any [`Arc`] handles
/// returned by [`install_default`] keep the recorded data alive).
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    *GLOBAL.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// True if a global recorder is installed and enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static ENGINE_INSTANTS: AtomicBool = AtomicBool::new(true);

/// Enables or disables per-event engine-lane instants ("wake"/"dispatch").
///
/// The engine fires one such instant per scheduler event; on event-storm
/// workloads the formatting alone dominates. Turning them off keeps every
/// other lane, counter and histogram recording while the engine hot loop
/// skips even building the strings. Default: on.
pub fn set_engine_instants(on: bool) {
    ENGINE_INSTANTS.store(on, Ordering::SeqCst);
}

/// True when a recorder is enabled *and* per-event engine instants are on.
///
/// The engine checks this before formatting "wake proc#N" / "dispatch"
/// strings, so the disabled path is two relaxed atomic loads and zero
/// allocation.
#[inline]
pub fn engine_instants() -> bool {
    ENABLED.load(Ordering::Relaxed) && ENGINE_INSTANTS.load(Ordering::Relaxed)
}

/// Runs `f` against the global recorder, or does nothing when disabled.
///
/// This is the only entry point instrumentation sites use. Disabled, it is
/// one relaxed atomic load: the closure (and any formatting inside it) is
/// never evaluated, keeping the hot path allocation-free.
#[inline]
pub fn with<F: FnOnce(&Recorder)>(f: F) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let guard = GLOBAL.read().unwrap_or_else(|e| e.into_inner());
    if let Some(recorder) = guard.as_deref() {
        f(recorder);
    }
}

/// Records a completed span on lane `pu`; returns its context when enabled.
#[inline]
pub fn span(
    pu: u16,
    t0_ns: u64,
    t1_ns: u64,
    name: &str,
    parent: Option<SpanContext>,
) -> Option<SpanContext> {
    let mut out = None;
    with(|r| out = Some(r.complete_span(pu, t0_ns, t1_ns, name, parent)));
    out
}

/// Records an instantaneous event on lane `pu` (no-op when disabled).
#[inline]
pub fn instant(pu: u16, t_ns: u64, name: &str, ctx: Option<SpanContext>) {
    with(|r| r.instant(pu, t_ns, name, ctx));
}

/// Increments the named counter in the global metrics registry.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    with(|r| r.metrics().counter_add(name, delta));
}

/// Sets the named gauge in the global metrics registry.
#[inline]
pub fn gauge_set(name: &str, value: i64) {
    with(|r| r.metrics().gauge_set(name, value));
}

/// Records a virtual-time sample (nanoseconds) into the named histogram.
#[inline]
pub fn observe_ns(name: &str, ns: u64) {
    with(|r| r.metrics().observe_ns(name, ns));
}

/// Increments the tenant-labelled counter `base{tenant=N}`.
#[inline]
pub fn counter_add_tenant(base: &str, tenant: u32, delta: u64) {
    with(|r| r.metrics().counter_add_tenant(base, tenant, delta));
}

/// Records a sample into the tenant-labelled histogram `base{tenant=N}`.
#[inline]
pub fn observe_ns_tenant(base: &str, tenant: u32, ns: u64) {
    with(|r| r.metrics().observe_ns_tenant(base, tenant, ns));
}

/// Appends a structured note to the global flight recorder ring.
#[inline]
pub fn flight_note(pu: u16, t_ns: u64, msg: &str) {
    with(|r| r.flight().note(t_ns, pu, msg.to_owned()));
}

/// Dumps the flight-recorder ring, if a recorder is installed.
pub fn flight_dump() -> Option<String> {
    let mut out = None;
    with(|r| out = Some(r.flight().dump()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotone() {
        let a = TraceId::next();
        let b = TraceId::next();
        assert!(b.0 > a.0);
        let s1 = SpanId::next();
        let s2 = SpanId::next();
        assert_ne!(s1, s2);
    }

    #[test]
    fn child_keeps_the_trace() {
        let root = SpanContext::root();
        let child = root.child();
        assert_eq!(child.trace, root.trace);
        assert_ne!(child.span, root.span);
    }

    #[test]
    fn wire_roundtrip() {
        let ctx = SpanContext::root();
        let wire = ctx.to_wire();
        assert_eq!(SpanContext::from_wire(&wire), Some(ctx));
        assert_eq!(SpanContext::from_wire(&wire[..8]), None);
        assert_eq!(SpanContext::from_wire(&[0u8; 16]), None);
    }

    #[test]
    fn disabled_with_never_runs_the_closure() {
        // The global is process-wide; this test must not observe an install
        // from a concurrent test, so it only asserts the closure is skipped
        // while we know nothing is installed.
        if !enabled() {
            let mut ran = false;
            with(|_| ran = true);
            assert!(!ran);
        }
    }

    #[test]
    fn display_formats() {
        let ctx = SpanContext { trace: TraceId(0x2a), span: SpanId(7) };
        assert_eq!(ctx.to_string(), "t0000002a/s00000007");
    }
}
