//! Minimal hand-rolled JSON emission helpers (the workspace builds
//! offline, so exporters avoid any serialization dependency).

use std::fmt::Write as _;

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number (`null` if not finite).
pub(crate) fn number_into(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn numbers() {
        let mut out = String::new();
        number_into(&mut out, 1.5);
        out.push(' ');
        number_into(&mut out, f64::NAN);
        assert_eq!(out, "1.5 null");
    }
}
