//! Flight recorder: a bounded ring of recent structured events.
//!
//! When a test fails or an executor crashes, the question is always "what
//! were the last few things that happened?". The flight recorder keeps a
//! fixed-size ring of the most recent telemetry events (and free-form
//! notes) so the crash path can dump them without having retained the full
//! trace.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::recorder::EventKind;

/// Default number of events retained by the ring.
pub const DEFAULT_CAPACITY: usize = 256;

/// One retained event: virtual time, lane and a pre-rendered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Virtual time in nanoseconds.
    pub t_ns: u64,
    /// PU lane.
    pub pu: u16,
    /// Rendered description.
    pub msg: String,
}

struct Ring {
    capacity: usize,
    events: VecDeque<FlightEvent>,
    dropped: u64,
}

/// Bounded ring buffer of recent events. See the [module docs](self).
pub struct FlightRecorder {
    ring: Mutex<Ring>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A ring retaining the last `capacity` events (0 disables retention).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Mutex::new(Ring {
                capacity,
                events: VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
        }
    }

    /// Appends a free-form note.
    pub fn note(&self, t_ns: u64, pu: u16, msg: String) {
        let mut ring = self.lock();
        if ring.capacity == 0 {
            ring.dropped += 1;
            return;
        }
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(FlightEvent { t_ns, pu, msg });
    }

    /// Appends a rendered telemetry event (called by the recorder).
    pub(crate) fn note_event(&self, t_ns: u64, pu: u16, name: &str, kind: &EventKind) {
        // Skip the formatting work entirely when retention is off.
        if self.lock().capacity == 0 {
            return;
        }
        let msg = match kind {
            EventKind::Span { ctx, dur_ns, .. } => format!("span {name} {ctx} +{dur_ns}ns"),
            EventKind::Begin { ctx, .. } => format!("begin {name} {ctx}"),
            EventKind::End { ctx } => format!("end {ctx}"),
            EventKind::Instant { ctx: Some(ctx) } => format!("instant {name} {ctx}"),
            EventKind::Instant { ctx: None } => format!("instant {name}"),
        };
        self.note(t_ns, pu, msg);
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Number of events evicted (or discarded) so far.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Renders the ring as a human-readable block, oldest first.
    pub fn dump(&self) -> String {
        let ring = self.lock();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== flight recorder: last {} event(s), {} dropped ===",
            ring.events.len(),
            ring.dropped
        );
        for ev in &ring.events {
            let _ = writeln!(out, "  [{:>12}ns pu{:<3}] {}", ev.t_ns, ev.pu, ev.msg);
        }
        out
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let f = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            f.note(i, 0, format!("e{i}"));
        }
        let msgs: Vec<_> = f.events().into_iter().map(|e| e.msg).collect();
        assert_eq!(msgs, ["e2", "e3", "e4"]);
        assert_eq!(f.dropped(), 2);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let f = FlightRecorder::with_capacity(0);
        f.note(1, 0, "gone".to_owned());
        assert!(f.is_empty());
        assert_eq!(f.dropped(), 1);
    }

    #[test]
    fn dump_includes_header_and_events() {
        let f = FlightRecorder::with_capacity(8);
        f.note(42, 7, "hello".to_owned());
        let dump = f.dump();
        assert!(dump.contains("flight recorder"));
        assert!(dump.contains("pu7"));
        assert!(dump.contains("hello"));
    }
}
