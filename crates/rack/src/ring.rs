//! Consistent-hash ring for rack-level function placement.
//!
//! The rack front-end owns one [`HashRing`] mapping function names to the
//! node whose gateway serves them. Each node projects `vnodes` points onto
//! a 64-bit ring; a key is owned by the first point clockwise from its
//! hash. Virtual nodes keep the shares balanced, and consistency keeps
//! churn minimal: a node joining or leaving an `N`-node ring reassigns
//! only about `1/N` of the keys — every other key keeps its owner, so warm
//! pools and region replicas on surviving nodes stay useful.
//!
//! Hashing is FNV-1a with a SplitMix64 finalizer — fully deterministic, so
//! the same rack always routes the same function to the same node (the
//! determinism suite relies on this).

use std::collections::BTreeMap;

use hetsim::pu::NodeId;

/// Virtual-node points per node when not overridden: enough that 1–16-node
/// rings stay within a small constant factor of a perfectly fair split.
pub const DEFAULT_VNODES: usize = 128;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: FNV alone clusters on short, similar keys; mixing
/// spreads the vnode points uniformly around the ring.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_key(key: &str) -> u64 {
    mix(fnv1a(key.as_bytes()))
}

fn vnode_point(node: NodeId, replica: usize) -> u64 {
    mix(fnv1a(format!("{node}#{replica}").as_bytes()))
}

/// A consistent-hash ring of rack nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    points: BTreeMap<u64, NodeId>,
}

impl HashRing {
    /// An empty ring with `vnodes` points per node (minimum 1).
    pub fn new(vnodes: usize) -> HashRing {
        HashRing { vnodes: vnodes.max(1), points: BTreeMap::new() }
    }

    /// A ring already holding every node in `nodes`.
    pub fn with_nodes(vnodes: usize, nodes: impl IntoIterator<Item = NodeId>) -> HashRing {
        let mut ring = HashRing::new(vnodes);
        for node in nodes {
            ring.add(node);
        }
        ring
    }

    /// Adds a node's points (idempotent).
    pub fn add(&mut self, node: NodeId) {
        for replica in 0..self.vnodes {
            // A point collision between two nodes resolves to the lower
            // node id, deterministically, regardless of insertion order.
            let entry = self.points.entry(vnode_point(node, replica)).or_insert(node);
            *entry = (*entry).min(node);
        }
    }

    /// Removes a node's points (idempotent). Keys it owned fall through to
    /// their next point clockwise — nothing else moves.
    pub fn remove(&mut self, node: NodeId) {
        for replica in 0..self.vnodes {
            let point = vnode_point(node, replica);
            if self.points.get(&point) == Some(&node) {
                self.points.remove(&point);
            }
        }
    }

    /// The node owning `key`, or `None` on an empty ring.
    pub fn node_for(&self, key: &str) -> Option<NodeId> {
        if self.points.is_empty() {
            return None;
        }
        let h = hash_key(key);
        self.points.range(h..).next().or_else(|| self.points.iter().next()).map(|(_, node)| *node)
    }

    /// Distinct nodes currently on the ring, sorted.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.points.values().copied().collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// True when no node is on the ring.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of distinct nodes on the ring.
    pub fn len(&self) -> usize {
        self.nodes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_deterministic_and_total() {
        let ring = HashRing::with_nodes(DEFAULT_VNODES, (0..4).map(NodeId));
        for i in 0..100 {
            let key = format!("func-{i}");
            let a = ring.node_for(&key).unwrap();
            let b = ring.node_for(&key).unwrap();
            assert_eq!(a, b);
            assert!(a.raw() < 4);
        }
        assert_eq!(ring.len(), 4);
        assert!(HashRing::new(8).node_for("anything").is_none());
    }

    #[test]
    fn add_and_remove_are_idempotent() {
        let mut ring = HashRing::with_nodes(16, (0..3).map(NodeId));
        let before: Vec<_> = (0..50).map(|i| ring.node_for(&format!("k{i}"))).collect();
        ring.add(NodeId(1));
        let after: Vec<_> = (0..50).map(|i| ring.node_for(&format!("k{i}"))).collect();
        assert_eq!(before, after);
        ring.remove(NodeId(2));
        ring.remove(NodeId(2));
        assert_eq!(ring.nodes(), vec![NodeId(0), NodeId(1)]);
    }
}
