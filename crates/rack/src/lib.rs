//! Rack-scale Molecule: a multi-node control plane over the RDMA fabric.
//!
//! The paper runs Molecule on one heterogeneous computer. This crate
//! scales the reproduction out to a *rack* of them: `hetsim` models the
//! inter-node RDMA fabric as a distinct latency/bandwidth tier
//! ([`hetsim::topology::RackBuilder`], `Route::Fabric`), and this crate
//! shards the serverless control plane across it.
//!
//! * [`ring`] — the consistent-hash ring assigning functions to nodes
//!   with minimal churn on membership change.
//! * [`front`] — the [`RackFront`]: per-node [`SchedGateway`]s behind one
//!   routing front-end, cross-node request forwarding over real shim
//!   xcalls, rack-wide region-directory fan-out, node-death sweeps that
//!   purge every surviving gateway, and cross-node DAG planning whose
//!   large edges ride the zero-copy descriptor path across the fabric.
//!
//! [`SchedGateway`]: molecule_sched::gateway::SchedGateway

pub mod front;
pub mod ring;

pub use front::{RackConfig, RackFront, RackStats};
pub use ring::{HashRing, DEFAULT_VNODES};
