//! The rack front-end: a sharded control plane over per-node gateways.
//!
//! A rack is one [`Machine`] whose PUs are partitioned into nodes joined
//! by the RDMA fabric tier (`hetsim::topology::RackBuilder`). This module
//! puts a serverless control plane on it:
//!
//! * **One gateway per node.** Every node runs its own
//!   [`SchedGateway`] scoped to that node's PUs
//!   ([`SchedGateway::new_for_pus`]), with its own run queues, keep-alive
//!   index and [`RegionDirectory`]. Placement inside a node uses the
//!   calibrated cost model, including the node-locality term that keeps
//!   DAG chains and region consumers off the fabric.
//! * **A consistent-hash front.** [`RackFront`] routes each function to
//!   its owning node through a [`HashRing`], so function state (warm
//!   pools, FPGA caches, region replicas) concentrates where requests
//!   land. Forwarding to a remote owner is a real shim probe over the
//!   fabric — it pays the calibrated cross-node cost and fails when chaos
//!   cuts the path.
//! * **Node-level failure handling.** [`RackFront::handle_node_death`]
//!   removes the node from the ring and purges the dead node's PUs from
//!   **every** surviving gateway — region-directory entries, keep-alive
//!   pools and placement eligibility — then reclaims their shim state, so
//!   no survivor keeps routing toward the dead node.
//!
//! Cross-node DAG edges stay zero-copy: [`RackFront::plan_chain`] places
//! consecutive stages on their owning nodes and
//! [`molecule_core::dag::run_chain`] moves each edge's payload through the
//! shim's FIFO path, where payloads at or above the calibrated segment
//! threshold travel as descriptors resolved once from the owning node's
//! arena.

use std::collections::BTreeSet;
use std::sync::Arc;

use hetsim::engine::{ProcCtx, SimReceiver};
use hetsim::pu::NodeId;
use hetsim::topology::Machine;
use molecule_core::dag::{ChainSpec, ChainStage, CommMethod};
use molecule_core::keepalive::Lru;
use molecule_core::schedule::Scheduler;
use molecule_core::{ApiGateway, GatewayConfig, Molecule, MoleculeError};
use molecule_sched::gateway::{JobOutcome, SchedConfig, SchedGateway, SubmitError, SubmitOpts};
use molecule_state::StateLayer;
use parking_lot::Mutex;
use vsandbox::spec::FuncId;

use crate::ring::{HashRing, DEFAULT_VNODES};

/// Tunables of the rack front-end.
#[derive(Debug, Clone)]
pub struct RackConfig {
    /// Virtual-node points per node on the placement ring.
    pub vnodes: usize,
    /// Configuration applied to every per-node gateway.
    pub sched: SchedConfig,
    /// The node hosting the front-end process (requests enter here).
    pub front_node: NodeId,
}

impl Default for RackConfig {
    fn default() -> Self {
        RackConfig { vnodes: DEFAULT_VNODES, sched: SchedConfig::default(), front_node: NodeId(0) }
    }
}

/// Counters the rack front keeps.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RackStats {
    /// Requests routed through the ring.
    pub routed: u64,
    /// Requests whose owner was a remote node (paid the fabric hop).
    pub forwarded: u64,
    /// Requests re-routed after their owner was found dead at forward time.
    pub rerouted: u64,
    /// Node deaths handled.
    pub node_deaths: u64,
    /// Warm instances purged across all gateways by node deaths.
    pub purged_instances: u64,
}

struct RackShared {
    ring: HashRing,
    dead: BTreeSet<NodeId>,
    stats: RackStats,
}

/// The rack-scale control plane: per-node gateways behind one
/// consistent-hash front. Cheap to clone; clones share all state.
#[derive(Clone)]
pub struct RackFront {
    molecule: Molecule,
    config: Arc<RackConfig>,
    gateways: Arc<Vec<SchedGateway>>,
    state_layer: Arc<Mutex<Option<StateLayer>>>,
    shared: Arc<Mutex<RackShared>>,
}

impl RackFront {
    /// Builds the front over an already-launched runtime: one scoped
    /// [`SchedGateway`] per node of the machine, all nodes on the ring.
    pub fn deploy(molecule: Molecule, config: RackConfig) -> RackFront {
        let machine = molecule.machine().clone();
        let gateways = machine
            .nodes()
            .into_iter()
            .map(|node| {
                let api = ApiGateway::new(
                    molecule.clone(),
                    Scheduler::default(),
                    GatewayConfig::default(),
                    Box::new(Lru::new()),
                );
                SchedGateway::new_for_pus(api, config.sched.clone(), &machine.node_pus(node))
            })
            .collect();
        let ring = HashRing::with_nodes(config.vnodes, machine.nodes());
        RackFront {
            molecule,
            config: Arc::new(config),
            gateways: Arc::new(gateways),
            state_layer: Arc::new(Mutex::new(None)),
            shared: Arc::new(Mutex::new(RackShared {
                ring,
                dead: BTreeSet::new(),
                stats: RackStats::default(),
            })),
        }
    }

    /// The shared runtime.
    pub fn molecule(&self) -> &Molecule {
        &self.molecule
    }

    /// The rack machine.
    pub fn machine(&self) -> &Machine {
        self.molecule.machine()
    }

    /// One node's gateway.
    pub fn gateway(&self, node: NodeId) -> &SchedGateway {
        &self.gateways[node.raw() as usize]
    }

    /// Every node's gateway, indexed by [`NodeId::raw`].
    pub fn gateways(&self) -> &[SchedGateway] {
        &self.gateways
    }

    /// Counters.
    pub fn stats(&self) -> RackStats {
        self.shared.lock().stats
    }

    /// Nodes currently on the placement ring, sorted.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.shared.lock().ring.nodes()
    }

    /// The node whose gateway owns `func`, per the ring.
    pub fn owner_of(&self, func: &FuncId) -> Option<NodeId> {
        self.shared.lock().ring.node_for(func.as_str())
    }

    /// Boots the runtime and pre-boots language templates on every
    /// general-purpose PU of every node.
    ///
    /// # Errors
    ///
    /// Bootstrap or template-boot failures from the runtime.
    pub fn bootstrap(&self, ctx: &mut ProcCtx) -> Result<(), MoleculeError> {
        self.molecule.bootstrap(ctx)?;
        // Templates are per-PU runtime state shared by all gateways; one
        // pass over the machine covers every node.
        self.gateways[0].api().prepare_all_templates(ctx)
    }

    /// Starts every node gateway's worker pools.
    pub fn start(&self, ctx: &mut ProcCtx) {
        for gw in self.gateways.iter() {
            gw.start(ctx);
        }
    }

    /// Shuts every node gateway down. Idempotent.
    pub fn shutdown(&self) {
        for gw in self.gateways.iter() {
            gw.shutdown();
        }
    }

    /// Bridges a [`StateLayer`] into **every** node gateway's
    /// [`RegionDirectory`](molecule_core::regions::RegionDirectory): each
    /// replica attach/detach fans out to all directories, so any node's
    /// placer sees where region pages live — including remote nodes, which
    /// the node-locality term then prefers to keep together. The layer is
    /// also remembered for the node-death sweep.
    pub fn attach_state_layer(&self, layer: &StateLayer) {
        let dirs: Vec<_> =
            self.gateways.iter().map(|gw| gw.api().region_directory().clone()).collect();
        layer.set_host_observer(Arc::new(move |region, pu, hosted| {
            for dir in &dirs {
                if hosted {
                    dir.publish(region, pu);
                } else {
                    dir.retract(region, pu);
                }
            }
        }));
        *self.state_layer.lock() = Some(layer.clone());
    }

    /// Admits one request through the ring: the owning node's gateway
    /// queues it and the reply channel resolves to its [`JobOutcome`].
    ///
    /// When the owner is remote, the front first probes it over the fabric
    /// (a real shim xcall: it pays the calibrated cross-node round trip and
    /// times out if chaos cut the path or killed the node). A failed probe
    /// triggers [`handle_node_death`](Self::handle_node_death) and one
    /// re-route to the key's next owner.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] from admission control, or a runtime error when no
    /// live node remains.
    pub fn submit(
        &self,
        ctx: &mut ProcCtx,
        func: &FuncId,
        input_bytes: u64,
        opts: SubmitOpts,
    ) -> Result<SimReceiver<JobOutcome>, SubmitError> {
        let mut attempts = 0;
        loop {
            let owner = self.owner_of(func).ok_or_else(|| {
                SubmitError::Runtime(MoleculeError::Internal("no live rack node".into()))
            })?;
            self.shared.lock().stats.routed += 1;
            if owner != self.config.front_node {
                let machine = self.machine();
                let from = machine.node_host(self.config.front_node);
                let to = machine.node_host(owner);
                let probe = self.molecule.cluster().probe_pu(ctx, from, to);
                self.shared.lock().stats.forwarded += 1;
                if probe.is_err() {
                    // The owner is unreachable: sweep it and try the key's
                    // next owner once.
                    self.handle_node_death(ctx, owner);
                    self.shared.lock().stats.rerouted += 1;
                    attempts += 1;
                    if attempts <= 1 {
                        continue;
                    }
                    return Err(SubmitError::Runtime(MoleculeError::Internal(format!(
                        "rack owner {owner} unreachable"
                    ))));
                }
            }
            telemetry::with(|r| r.metrics().counter_add("rack.routed", 1));
            return self.gateway(owner).submit(ctx, func, input_bytes, opts);
        }
    }

    /// [`submit`](Self::submit) and block for the outcome.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit), plus an internal error if the owning
    /// gateway shuts down mid-request.
    pub fn invoke(
        &self,
        ctx: &mut ProcCtx,
        func: &FuncId,
        input_bytes: u64,
        opts: SubmitOpts,
    ) -> Result<JobOutcome, SubmitError> {
        let rx = self.submit(ctx, func, input_bytes, opts)?;
        rx.recv(ctx).map_err(|_| {
            SubmitError::Runtime(MoleculeError::Internal("rack gateway shut down".into()))
        })
    }

    /// Sweeps a dead node out of the whole control plane:
    ///
    /// 1. the node leaves the placement ring (keys fall through to their
    ///    next owner; everything else keeps its owner);
    /// 2. each of its PUs is purged from **every** gateway — region
    ///    directory entries, idle/owned instances, keep-alive records and
    ///    placement eligibility (the fix for the single-gateway
    ///    `purge_pu`: survivors must forget the dead node too);
    /// 3. the state layer re-masters or quarantines regions mastered
    ///    there, and the shim reclaims the PUs' capabilities and FIFOs.
    ///
    /// Idempotent per node. Returns the number of PUs swept.
    pub fn handle_node_death(&self, ctx: &mut ProcCtx, node: NodeId) -> usize {
        {
            let mut sh = self.shared.lock();
            if !sh.dead.insert(node) {
                return 0;
            }
            sh.ring.remove(node);
            sh.stats.node_deaths += 1;
        }
        let pus = self.machine().node_pus(node);
        let layer = self.state_layer.lock().clone();
        for &pu in &pus {
            let mut purged = 0;
            for gw in self.gateways.iter() {
                purged += gw.api().purge_pu(pu);
            }
            self.shared.lock().stats.purged_instances += purged as u64;
            if let Some(layer) = &layer {
                layer.handle_pu_death(ctx, pu);
            }
            self.molecule.cluster().reclaim_pu(ctx, pu);
        }
        telemetry::with(|r| r.metrics().counter_add("rack.node_deaths", 1));
        pus.len()
    }

    /// Plans a direct-IPC chain across the rack: each stage runs on its
    /// ring owner's node, on the first PU there that supports the function
    /// and has capacity. Consecutive stages owned by different nodes
    /// become cross-node DAG edges — their payloads travel the fabric as
    /// zero-copy descriptors when large enough.
    ///
    /// # Errors
    ///
    /// Unknown functions, or [`MoleculeError::NoCapacity`] when a stage's
    /// owning node has no PU that can host it.
    pub fn plan_chain(
        &self,
        name: impl Into<String>,
        funcs: &[FuncId],
    ) -> Result<ChainSpec, MoleculeError> {
        let machine = self.machine();
        let mut stages = Vec::with_capacity(funcs.len());
        for func in funcs {
            let def = self
                .molecule
                .registry()
                .get(func)
                .ok_or_else(|| MoleculeError::UnknownFunction(func.clone()))?;
            let node =
                self.owner_of(func).ok_or_else(|| MoleculeError::NoCapacity(func.clone()))?;
            let pu = machine
                .node_pus(node)
                .into_iter()
                .find(|&pu| {
                    machine.pu(pu).is_some_and(|spec| def.supports(spec.kind))
                        && Scheduler::pu_has_capacity(machine, pu, &def)
                })
                .ok_or_else(|| MoleculeError::NoCapacity(func.clone()))?;
            stages.push(ChainStage { func: func.clone(), pu });
        }
        Ok(ChainSpec::new(name, stages, CommMethod::DirectIpc))
    }
}

impl std::fmt::Debug for RackFront {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sh = self.shared.lock();
        f.debug_struct("RackFront")
            .field("nodes", &self.gateways.len())
            .field("live", &sh.ring.len())
            .field("stats", &sh.stats)
            .finish()
    }
}
