//! Property tests of the consistent-hash ring the rack front routes with:
//! placement balance within a constant factor of fair across 1–16 nodes,
//! and minimal reassignment (< 2/N of keys) when a node joins or leaves —
//! with every move explained by the membership change, never a shuffle
//! between surviving nodes.

use std::collections::BTreeMap;

use hetsim::pu::NodeId;
use molecule_rack::{HashRing, DEFAULT_VNODES};
use proptest::prelude::*;

const KEYS: usize = 4_000;

fn keys(salt: u64) -> Vec<String> {
    (0..KEYS).map(|i| format!("func-{salt}-{i}")).collect()
}

fn owners(ring: &HashRing, keys: &[String]) -> Vec<NodeId> {
    keys.iter().map(|k| ring.node_for(k).expect("non-empty ring")).collect()
}

fn shares(owners: &[NodeId]) -> BTreeMap<NodeId, usize> {
    let mut counts = BTreeMap::new();
    for &node in owners {
        *counts.entry(node).or_insert(0usize) += 1;
    }
    counts
}

proptest! {
    /// Every node of a 1–16-node ring gets a share of the keyspace within
    /// a constant factor of fair: no node starves, none takes over.
    #[test]
    fn placement_stays_balanced_across_1_to_16_nodes(
        nodes in 1usize..17,
        salt in 0u64..1000,
    ) {
        let ring = HashRing::with_nodes(DEFAULT_VNODES, (0..nodes as u16).map(NodeId));
        let counts = shares(&owners(&ring, &keys(salt)));
        prop_assert_eq!(counts.len(), nodes, "some node owns no keys");
        let fair = KEYS as f64 / nodes as f64;
        for (&node, &count) in &counts {
            let ratio = count as f64 / fair;
            prop_assert!(
                (0.4..=2.0).contains(&ratio),
                "{} holds {} of {} keys ({}x fair) on a {}-node ring",
                node, count, KEYS, ratio, nodes
            );
        }
    }

    /// A node joining an N-node ring captures some keys but reassigns
    /// fewer than 2/(N+1) of them, and every reassigned key moves *to*
    /// the joiner — survivors never trade keys among themselves.
    #[test]
    fn node_join_reassigns_less_than_two_over_n(
        nodes in 1usize..16,
        salt in 0u64..1000,
    ) {
        let keys = keys(salt);
        let mut ring = HashRing::with_nodes(DEFAULT_VNODES, (0..nodes as u16).map(NodeId));
        let before = owners(&ring, &keys);
        let joiner = NodeId(nodes as u16);
        ring.add(joiner);
        let after = owners(&ring, &keys);
        let mut moved = 0usize;
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                moved += 1;
                prop_assert_eq!(*a, joiner, "a key moved between surviving nodes on join");
            }
        }
        prop_assert!(moved > 0, "the joiner captured nothing");
        let bound = 2.0 / (nodes + 1) as f64;
        prop_assert!(
            (moved as f64 / KEYS as f64) < bound,
            "join moved {}/{} keys, bound {}",
            moved, KEYS, bound
        );
    }

    /// A node leaving an N-node ring orphans only its own keys: fewer than
    /// 2/N of all keys move, and keys owned by survivors stay put.
    #[test]
    fn node_leave_reassigns_less_than_two_over_n(
        nodes in 2usize..17,
        salt in 0u64..1000,
    ) {
        let keys = keys(salt);
        let mut ring = HashRing::with_nodes(DEFAULT_VNODES, (0..nodes as u16).map(NodeId));
        let before = owners(&ring, &keys);
        let leaver = NodeId((nodes as u16) / 2);
        ring.remove(leaver);
        let after = owners(&ring, &keys);
        let mut moved = 0usize;
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                moved += 1;
                prop_assert_eq!(*b, leaver, "a survivor's key moved on leave");
            }
            prop_assert!(*a != leaver, "a key still routes to the removed node");
        }
        let bound = 2.0 / nodes as f64;
        prop_assert!(
            (moved as f64 / KEYS as f64) < bound,
            "leave moved {}/{} keys, bound {}",
            moved, KEYS, bound
        );
    }
}
