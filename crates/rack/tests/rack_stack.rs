//! End-to-end tests of the rack control plane: consistent-hash routing to
//! node-scoped gateways, the dead-node sweep that purges every surviving
//! gateway, and the zero-copy descriptor path on cross-node DAG edges.

use bytes::Bytes;
use hetsim::engine::Simulation;
use hetsim::pu::{NodeId, PuId, PuKind};
use hetsim::topology::Machine;
use molecule_core::dag::{run_chain, ChainSpec, ChainStage, CommMethod};
use molecule_core::function::FunctionDef;
use molecule_core::{Molecule, MoleculeConfig};
use molecule_rack::{RackConfig, RackFront};
use molecule_sched::gateway::{JobOutcome, SubmitOpts};
use molecule_state::{RegionSpec, StateLayer};
use vsandbox::spec::{FuncId, LangRuntime};

/// Finds a function name the ring assigns to `node`.
fn func_owned_by(front: &RackFront, node: NodeId, tag: &str) -> FuncId {
    (0..1000u32)
        .map(|i| FuncId::from(format!("{tag}-{i}")))
        .find(|f| front.owner_of(f) == Some(node))
        .expect("some key maps to every node")
}

fn def(id: &FuncId) -> FunctionDef {
    FunctionDef::builder(id.as_str(), LangRuntime::Python)
        .profiles(&[PuKind::Cpu, PuKind::Dpu])
        .exec_ms(1.0)
        .build()
}

#[test]
fn requests_route_to_their_ring_owners_node() {
    let machine = Machine::rack(2, 1);
    let molecule = Molecule::launch(machine.clone(), MoleculeConfig::default());
    let front = RackFront::deploy(molecule.clone(), RackConfig::default());

    let local = func_owned_by(&front, NodeId(0), "local");
    let remote = func_owned_by(&front, NodeId(1), "remote");
    molecule.register_function(def(&local));
    molecule.register_function(def(&remote));

    let mut sim = Simulation::new();
    let f = front.clone();
    let m = machine.clone();
    sim.spawn("driver", move |ctx| {
        f.bootstrap(ctx).expect("bootstrap");
        f.start(ctx);
        for (func, node) in [(&local, NodeId(0)), (&remote, NodeId(1))] {
            for _ in 0..3 {
                match f.invoke(ctx, func, 1024, SubmitOpts::default()).expect("invoke") {
                    JobOutcome::Completed { pu, .. } => {
                        assert_eq!(m.node_of(pu), node, "{func} served off its owner node");
                    }
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        }
        f.shutdown();
    });
    sim.run().expect("simulation");
    let stats = front.stats();
    assert_eq!(stats.routed, 6);
    assert_eq!(stats.forwarded, 3, "the remote owner pays the fabric hop per request");
    assert_eq!(stats.node_deaths, 0);
}

#[test]
fn chain_stages_run_on_their_owner_nodes() {
    let machine = Machine::rack(4, 1);
    let molecule = Molecule::launch(machine.clone(), MoleculeConfig::default());
    let front = RackFront::deploy(molecule.clone(), RackConfig::default());
    let a = func_owned_by(&front, NodeId(1), "stage-a");
    let b = func_owned_by(&front, NodeId(3), "stage-b");
    molecule.register_function(def(&a));
    molecule.register_function(def(&b));
    let spec = front.plan_chain("cross", &[a.clone(), b.clone()]).expect("plan");
    assert_eq!(machine.node_of(spec.stages[0].pu), NodeId(1));
    assert_eq!(machine.node_of(spec.stages[1].pu), NodeId(3));
}

/// The tentpole data-plane property: a cross-node DAG edge carrying at
/// least the calibrated segment threshold travels as a descriptor (payload
/// placed once in the writer node's arena, resolved once by the reader),
/// not as staged copies over the fabric.
#[test]
fn cross_node_chain_edges_take_the_descriptor_path() {
    let machine = Machine::rack(2, 1);
    let molecule = Molecule::launch(machine.clone(), MoleculeConfig::default());
    let payload = 32 * 1024u64;
    let big = FunctionDef::builder("edge-big", LangRuntime::Python)
        .profiles(&[PuKind::Cpu, PuKind::Dpu])
        .exec_ms(1.0)
        .output_bytes(payload)
        .build();
    let sink = FunctionDef::builder("edge-sink", LangRuntime::Python)
        .profiles(&[PuKind::Cpu, PuKind::Dpu])
        .exec_ms(1.0)
        .output_bytes(64)
        .build();
    molecule.register_function(big.clone());
    molecule.register_function(sink.clone());

    // Stage 0 on node 0's DPU, stage 1 on node 1's DPU: the 32 KiB edge
    // crosses the fabric.
    let spec = ChainSpec::new(
        "fabric-edge",
        vec![ChainStage::new(big.id.clone(), PuId(1)), ChainStage::new(sink.id.clone(), PuId(3))],
        CommMethod::DirectIpc,
    )
    .input_bytes(payload)
    .rounds(2);

    let mut sim = Simulation::new();
    let mol = molecule.clone();
    sim.spawn("driver", move |ctx| {
        mol.bootstrap(ctx).expect("bootstrap");
        let before = mol.cluster().stats();
        run_chain(&mol, ctx, &spec).expect("chain");
        let after = mol.cluster().stats();
        assert!(
            after.descriptor_handoffs > before.descriptor_handoffs,
            "large cross-node edges must hand off descriptors"
        );
        assert!(
            after.bytes_elided > before.bytes_elided,
            "descriptor hand-off must elide payload bytes on the fabric"
        );
        assert!(
            after.fabric_transfers > before.fabric_transfers,
            "the edge must actually cross the rack fabric"
        );
    });
    sim.run().expect("simulation");
    assert_eq!(molecule.cluster().outstanding_segments(), 0, "every descriptor resolved");
}

/// Satellite regression: a node death must purge the dead node's PUs from
/// *every* surviving gateway — region directories, warm pools and
/// placement eligibility — not just the gateway that noticed.
#[test]
fn node_death_sweeps_every_surviving_gateways_indexes() {
    let machine = Machine::rack(2, 1);
    let molecule = Molecule::launch(machine.clone(), MoleculeConfig::default());
    let front = RackFront::deploy(molecule.clone(), RackConfig::default());
    let layer = StateLayer::new(molecule.cluster().clone());
    front.attach_state_layer(&layer);

    let local = func_owned_by(&front, NodeId(0), "surv");
    let remote = func_owned_by(&front, NodeId(1), "dead");
    molecule.register_function(def(&local));
    molecule.register_function(def(&remote));

    let mut sim = Simulation::new();
    let f = front.clone();
    let lay = layer.clone();
    let m = machine.clone();
    sim.spawn("driver", move |ctx| {
        f.bootstrap(ctx).expect("bootstrap");
        f.start(ctx);

        // A region mastered on node 1's DPU, replicated to node 0: every
        // gateway's directory learns both hosts through the fan-out.
        lay.create_region(ctx, PuId(3), RegionSpec::new("weights", 4)).expect("create");
        lay.attach(ctx, PuId(1), "weights").expect("attach");
        lay.write(ctx, PuId(3), "weights", 0, &[7u8; 64], None).expect("write");
        lay.commit(ctx, PuId(3), "weights").expect("commit");
        for gw in f.gateways() {
            let hosts = gw.api().region_directory().hosts("weights");
            assert!(hosts.contains(&PuId(3)), "directory missing the master replica");
            assert!(hosts.contains(&PuId(1)), "directory missing the node-0 replica");
        }
        // Warm an instance of the remote function on node 1 so its pool
        // has something to purge.
        f.gateway(NodeId(1)).api().prewarm(ctx, &remote, PuId(3)).expect("prewarm");
        assert_eq!(f.gateway(NodeId(1)).api().warm_idle_count(&remote, PuId(3)), 1);

        // Node 1 dies; the sweep must reach every surviving gateway.
        machine_kill_node(&m, ctx.now(), NodeId(1));
        let swept = f.handle_node_death(ctx, NodeId(1));
        assert_eq!(swept, 2, "both node-1 PUs swept");
        assert_eq!(f.handle_node_death(ctx, NodeId(1)), 0, "idempotent");

        for gw in f.gateways() {
            let hosts = gw.api().region_directory().hosts("weights");
            assert!(!hosts.contains(&PuId(3)), "a gateway still lists a dead region host");
            assert!(!hosts.contains(&PuId(2)), "a gateway still lists a dead region host");
            let avoided = gw.api().avoided_pus();
            assert!(avoided.contains(&PuId(2)) && avoided.contains(&PuId(3)));
        }
        assert_eq!(f.gateway(NodeId(1)).api().warm_idle_count(&remote, PuId(3)), 0);
        assert_eq!(f.live_nodes(), vec![NodeId(0)]);

        // The dead node's keys fall through to the survivor; traffic keeps
        // completing with zero loss.
        for _ in 0..3 {
            match f.invoke(ctx, &remote, 1024, SubmitOpts::default()).expect("failover invoke") {
                JobOutcome::Completed { pu, .. } => assert_eq!(m.node_of(pu), NodeId(0)),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        f.shutdown();
    });
    sim.run().expect("simulation");
    assert_eq!(front.stats().node_deaths, 1);
}

/// The forward path notices an unreachable owner by itself: the probe over
/// the fabric times out, the front sweeps the node and re-routes.
#[test]
fn failed_forward_probe_triggers_the_sweep_and_reroutes() {
    let machine = Machine::rack(2, 1);
    let molecule = Molecule::launch(machine.clone(), MoleculeConfig::default());
    let front = RackFront::deploy(molecule.clone(), RackConfig::default());
    let remote = func_owned_by(&front, NodeId(1), "probe");
    molecule.register_function(def(&remote));

    let mut sim = Simulation::new();
    let f = front.clone();
    let m = machine.clone();
    sim.spawn("driver", move |ctx| {
        f.bootstrap(ctx).expect("bootstrap");
        f.start(ctx);
        machine_kill_node(&m, ctx.now(), NodeId(1));
        match f.invoke(ctx, &remote, 1024, SubmitOpts::default()).expect("rerouted invoke") {
            JobOutcome::Completed { pu, .. } => assert_eq!(m.node_of(pu), NodeId(0)),
            other => panic!("unexpected outcome {other:?}"),
        }
        f.shutdown();
    });
    sim.run().expect("simulation");
    let stats = front.stats();
    assert_eq!(stats.node_deaths, 1, "the failed probe swept the node");
    assert_eq!(stats.rerouted, 1);
}

/// Region sync across the fabric stays zero-copy: a committed page set
/// pulled by a replica on another node rides a parked segment descriptor,
/// resolved once from the master node's arena.
#[test]
fn cross_node_region_pull_stays_zero_copy() {
    let machine = Machine::rack(2, 1);
    let molecule = Molecule::launch(machine.clone(), MoleculeConfig::default());
    let layer = StateLayer::new(molecule.cluster().clone());

    let mut sim = Simulation::new();
    let mol = molecule.clone();
    let lay = layer.clone();
    sim.spawn("driver", move |ctx| {
        mol.bootstrap(ctx).expect("bootstrap");
        // 8 pages = 32 KiB: a full-region sync clears the segment threshold.
        lay.create_region(ctx, PuId(1), RegionSpec::new("model", 8)).expect("create");
        lay.attach(ctx, PuId(3), "model").expect("attach across the fabric");
        let blob = Bytes::from(vec![0x5A; 32 * 1024]);
        lay.write(ctx, PuId(1), "model", 0, &blob, None).expect("write");
        let before = mol.cluster().stats();
        lay.commit(ctx, PuId(1), "model").expect("commit");
        lay.pull(ctx, PuId(3), "model").expect("pull");
        let after = mol.cluster().stats();
        assert!(
            after.bytes_elided > before.bytes_elided,
            "cross-node region sync must ride the descriptor path"
        );
        let got = lay.read(ctx, PuId(3), "model", 0, 64).expect("read");
        assert!(got.iter().all(|&b| b == 0x5A), "replica content out of sync");
    });
    sim.run().expect("simulation");
    assert_eq!(molecule.cluster().outstanding_segments(), 0);
}

fn machine_kill_node(machine: &Machine, now: hetsim::time::SimTime, node: NodeId) {
    let plane = machine.fault_plane();
    for pu in machine.node_pus(node) {
        plane.kill_pu(now, pu);
    }
}
