//! XPUcall transports and their cost model (paper Fig. 7).
//!
//! An XPUcall is how a user process talks to its local XPU-Shim daemon.
//! Three implementations exist, in increasing order of optimization:
//!
//! 1. **Base** — request and response each travel over a FIFO (two IPC
//!    segments). ~100 µs on BlueField-1, ~20 µs on the host CPU (§5).
//! 2. **Mpsc** — requests go through a shared multi-producer single-consumer
//!    queue that the shim polls; only the response uses a FIFO (one segment).
//! 3. **MpscPoll** — the user process additionally polls shared memory for
//!    the response, eliminating IPC entirely. The paper's default on devices.

use core::fmt;

use hetsim::calib::{OsCosts, XpuCallCosts};
use hetsim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Which Fig. 7 implementation a shim instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum XcallTransport {
    /// FIFO request + FIFO response (Fig. 7-a).
    Base,
    /// Shared MPSC queue request + FIFO response (Fig. 7-b).
    Mpsc,
    /// Shared MPSC queue request + polled shared-memory response (Fig. 7-c).
    /// The evaluation's default on devices.
    #[default]
    MpscPoll,
}

impl XcallTransport {
    /// All transports, in the order Fig. 8 plots them.
    pub const ALL: [XcallTransport; 3] =
        [XcallTransport::Base, XcallTransport::Mpsc, XcallTransport::MpscPoll];

    /// Short machine-readable name, used as a metrics label.
    pub fn name(self) -> &'static str {
        match self {
            XcallTransport::Base => "base",
            XcallTransport::Mpsc => "mpsc",
            XcallTransport::MpscPoll => "mpsc_poll",
        }
    }

    /// The time a user process spends performing one XPUcall carrying
    /// `payload_bytes` of arguments, excluding any interconnect transfer.
    pub fn invoke_cost(self, os: &OsCosts, xc: &XpuCallCosts, payload_bytes: u64) -> SimDuration {
        let staged = SimDuration::from_nanos((xc.shm_per_byte_ns * payload_bytes as f64) as u64);
        let polled = SimDuration::from_nanos((xc.poll_per_byte_ns * payload_bytes as f64) as u64);
        match self {
            XcallTransport::Base => os.ipc_segment * 2 + xc.processing + staged,
            XcallTransport::Mpsc => {
                xc.mpsc_enqueue + xc.shim_pickup + xc.processing + os.ipc_segment + staged
            }
            XcallTransport::MpscPoll => {
                xc.mpsc_enqueue
                    + xc.shim_pickup
                    + xc.processing
                    + xc.shm_response
                    + xc.user_poll
                    + polled
            }
        }
    }

    /// The marginal cost of an XPUcall that shares a doorbell with a call
    /// issued to the same peer moments earlier: queue admission, shim
    /// processing and payload staging are still paid, but the wakeup /
    /// response machinery (`ipc_segment`, shm response, user poll) is
    /// amortized across the coalesced batch. Strictly cheaper than
    /// [`XcallTransport::invoke_cost`] for every transport.
    pub fn coalesced_cost(
        self,
        os: &OsCosts,
        xc: &XpuCallCosts,
        payload_bytes: u64,
    ) -> SimDuration {
        let staged = SimDuration::from_nanos((xc.shm_per_byte_ns * payload_bytes as f64) as u64);
        let polled = SimDuration::from_nanos((xc.poll_per_byte_ns * payload_bytes as f64) as u64);
        let _ = os;
        match self {
            XcallTransport::Base => xc.processing + staged,
            XcallTransport::Mpsc => xc.mpsc_enqueue + xc.processing + staged,
            XcallTransport::MpscPoll => xc.mpsc_enqueue + xc.processing + polled,
        }
    }
}

/// Upper byte bounds of the payload-size buckets the adaptive selector keys
/// its per-link estimates on (the last bucket is open-ended).
pub const PAYLOAD_BUCKETS: [u64; 7] = [64, 256, 1024, 4096, 16_384, 65_536, u64::MAX];

/// The bucket index a payload of `bytes` falls into.
pub fn payload_bucket(bytes: u64) -> usize {
    PAYLOAD_BUCKETS.iter().position(|&hi| bytes <= hi).unwrap_or(PAYLOAD_BUCKETS.len() - 1)
}

/// A representative payload size for seeding a bucket's cost estimate: the
/// bucket's upper bound (conservative), or 256 KiB for the open-ended tail.
pub fn bucket_representative(bucket: usize) -> u64 {
    let hi = PAYLOAD_BUCKETS[bucket.min(PAYLOAD_BUCKETS.len() - 1)];
    if hi == u64::MAX {
        256 * 1024
    } else {
        hi
    }
}

impl fmt::Display for XcallTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            XcallTransport::Base => "nIPC-Base",
            XcallTransport::Mpsc => "nIPC-MPSC",
            XcallTransport::MpscPoll => "nIPC-Poll",
        };
        f.write_str(s)
    }
}

/// The XPUcall vocabulary of Table 2 (used for dispatch accounting and
/// tracing; the cluster exposes one typed method per call).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XpuCallKind {
    /// `grant_cap(xpu_pid, obj_id, perm)`
    GrantCap,
    /// `revoke_cap(xpu_pid, obj_id, perm)`
    RevokeCap,
    /// `xfifo_init(local_uuid, xpu_uuid)`
    XfifoInit,
    /// `xfifo_connect(xpu_uuid)`
    XfifoConnect,
    /// `xfifo_close(xpu_fd)`
    XfifoClose,
    /// `xfifo_read(xpu_fd, buf, length)`
    XfifoRead,
    /// `xfifo_write(xpu_fd, buf, length)`
    XfifoWrite,
    /// `xSpawn(PU_id, path, argv, envp, capv)`
    XSpawn,
    /// `get_xpupid()`
    GetXpuPid,
}

impl fmt::Display for XpuCallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            XpuCallKind::GrantCap => "grant_cap",
            XpuCallKind::RevokeCap => "revoke_cap",
            XpuCallKind::XfifoInit => "xfifo_init",
            XpuCallKind::XfifoConnect => "xfifo_connect",
            XpuCallKind::XfifoClose => "xfifo_close",
            XpuCallKind::XfifoRead => "xfifo_read",
            XpuCallKind::XfifoWrite => "xfifo_write",
            XpuCallKind::XSpawn => "xSpawn",
            XpuCallKind::GetXpuPid => "get_xpupid",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::calib::Calibration;

    #[test]
    fn base_transport_matches_section5_costs() {
        let c = Calibration::paper_server();
        let dpu = XcallTransport::Base.invoke_cost(&c.dpu_bf1_os, &c.xcall_device, 16);
        let cpu = XcallTransport::Base.invoke_cost(&c.cpu_os, &c.xcall_cpu, 16);
        assert!((95.0..=105.0).contains(&dpu.as_micros_f64()), "DPU base {dpu}");
        assert!((17.0..=23.0).contains(&cpu.as_micros_f64()), "CPU base {cpu}");
    }

    #[test]
    fn optimization_ladder_strictly_improves_on_devices() {
        let c = Calibration::paper_server();
        for size in [16u64, 256, 2048] {
            let base = XcallTransport::Base.invoke_cost(&c.dpu_bf1_os, &c.xcall_device, size);
            let mpsc = XcallTransport::Mpsc.invoke_cost(&c.dpu_bf1_os, &c.xcall_device, size);
            let poll = XcallTransport::MpscPoll.invoke_cost(&c.dpu_bf1_os, &c.xcall_device, size);
            assert!(base > mpsc, "MPSC must beat Base at {size}B");
            assert!(mpsc > poll, "Poll must beat MPSC at {size}B");
        }
    }

    #[test]
    fn poll_transport_beats_local_linux_fifo_on_dpu() {
        // Fig. 8: "nIPC-Polling ... is even better than Linux IPC (on DPU)
        // because it bypasses the slow kernel on the device".
        let c = Calibration::paper_server();
        for size in [16u64, 512, 2048] {
            let poll = XcallTransport::MpscPoll.invoke_cost(&c.dpu_bf1_os, &c.xcall_device, size);
            let linux = c.dpu_bf1_os.fifo_latency(size);
            assert!(poll < linux, "poll {poll} should beat Linux DPU fifo {linux} at {size}B");
        }
    }

    #[test]
    fn payload_size_matters_most_for_base() {
        let c = Calibration::paper_server();
        let grow = |t: XcallTransport| {
            let small = t.invoke_cost(&c.dpu_bf1_os, &c.xcall_device, 16);
            let large = t.invoke_cost(&c.dpu_bf1_os, &c.xcall_device, 2048);
            large - small
        };
        assert!(grow(XcallTransport::Base) > grow(XcallTransport::MpscPoll));
    }

    #[test]
    fn coalesced_cost_is_strictly_cheaper_for_every_transport() {
        let c = Calibration::paper_server();
        for (os, xc) in [(&c.dpu_bf1_os, &c.xcall_device), (&c.cpu_os, &c.xcall_cpu)] {
            for size in [0u64, 16, 2048, 65_536] {
                for t in XcallTransport::ALL {
                    assert!(
                        t.coalesced_cost(os, xc, size) < t.invoke_cost(os, xc, size),
                        "{t} coalesced must undercut the full doorbell at {size}B"
                    );
                }
            }
        }
    }

    #[test]
    fn payload_buckets_are_monotone_and_cover_all_sizes() {
        assert_eq!(payload_bucket(0), 0);
        assert_eq!(payload_bucket(64), 0);
        assert_eq!(payload_bucket(65), 1);
        assert_eq!(payload_bucket(4096), 3);
        assert_eq!(payload_bucket(1 << 20), 6);
        for b in 0..PAYLOAD_BUCKETS.len() {
            assert_eq!(payload_bucket(bucket_representative(b)), b);
        }
    }

    #[test]
    fn display_names_match_fig8_legend() {
        assert_eq!(XcallTransport::Base.to_string(), "nIPC-Base");
        assert_eq!(XcallTransport::Mpsc.to_string(), "nIPC-MPSC");
        assert_eq!(XcallTransport::MpscPoll.to_string(), "nIPC-Poll");
        assert_eq!(XpuCallKind::XfifoWrite.to_string(), "xfifo_write");
    }
}
