//! Per-link shared-segment arena for zero-copy payload hand-off.
//!
//! Large nIPC writes do not stage their payload through the XPUcall shared
//! memory and again through the FIFO: the writer places the bytes **once**
//! in a segment slot registered for the (writer PU, reader PU) link, and the
//! FIFO carries only a small capability-guarded [`SegDescriptor`]. The
//! reader's shim resolves the descriptor when the message is consumed —
//! the same one-copy discipline the FPGA runtime gets from DRAM data
//! retention (paper Fig. 13), generalized to the CPU↔DPU RDMA legs.
//!
//! Descriptors are one-shot: resolving a slot consumes it, and a descriptor
//! whose token or FIFO does not match the parked slot is rejected with
//! [`ShimError::BadDescriptor`], so a forged or replayed descriptor cannot
//! read another link's payload.

use std::collections::HashMap;

use bytes::Bytes;
use hetsim::pu::PuId;
use parking_lot::Mutex;

use crate::error::ShimError;
use crate::id::GlobalUuid;

/// A capability-guarded reference to a payload parked in a shared-segment
/// slot. This is what travels through the FIFO instead of the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegDescriptor {
    pub(crate) slot: u64,
    pub(crate) len: u64,
    pub(crate) token: u64,
    /// Rack node whose arena parks the payload. Descriptors travel across
    /// node boundaries; the reader resolves against the *owning* node's
    /// arena so cross-node hand-off stays a single placement.
    pub(crate) node: u16,
}

impl SegDescriptor {
    /// Length in bytes of the parked payload.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the parked payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

struct SegSlot {
    bytes: Bytes,
    token: u64,
    fifo: GlobalUuid,
    #[cfg_attr(not(test), allow(dead_code))]
    link: (PuId, PuId),
}

#[derive(Default)]
struct ArenaState {
    slots: HashMap<u64, SegSlot>,
    next_slot: u64,
    next_token: u64,
}

/// The cluster-wide arena of shared-segment slots, keyed by slot id and
/// guarded by per-slot capability tokens.
#[derive(Default)]
pub(crate) struct SegmentArena {
    inner: Mutex<ArenaState>,
}

/// SplitMix64: turns the sequential slot counter into an unguessable-looking
/// but fully deterministic capability token.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SegmentArena {
    /// Parks `bytes` in a fresh slot on the `from → to` link for `fifo` and
    /// returns the descriptor to send in the payload's place.
    pub(crate) fn place(
        &self,
        from: PuId,
        to: PuId,
        fifo: GlobalUuid,
        bytes: Bytes,
    ) -> SegDescriptor {
        let mut st = self.inner.lock();
        let slot = st.next_slot;
        st.next_slot += 1;
        st.next_token += 1;
        let token = mix64(st.next_token);
        let len = bytes.len() as u64;
        st.slots.insert(slot, SegSlot { bytes, token, fifo, link: (from, to) });
        SegDescriptor { slot, len, token, node: 0 }
    }

    /// Consumes a descriptor on behalf of `fifo`'s reader and returns the
    /// parked payload. One-shot: the slot is freed.
    ///
    /// # Errors
    ///
    /// [`ShimError::BadDescriptor`] when the slot does not exist (stale or
    /// replayed descriptor), the token mismatches (forged descriptor), or
    /// the slot was parked for a different FIFO.
    pub(crate) fn resolve(
        &self,
        fifo: &GlobalUuid,
        desc: &SegDescriptor,
    ) -> Result<Bytes, ShimError> {
        let mut st = self.inner.lock();
        let ok = st
            .slots
            .get(&desc.slot)
            .is_some_and(|slot| slot.token == desc.token && slot.fifo == *fifo);
        if !ok {
            return Err(ShimError::BadDescriptor);
        }
        Ok(st.slots.remove(&desc.slot).expect("checked above").bytes)
    }

    /// Frees every slot parked for `fifo` (close or crash reclamation) and
    /// returns how many were dropped.
    pub(crate) fn reclaim_fifo(&self, fifo: &GlobalUuid) -> usize {
        let mut st = self.inner.lock();
        let before = st.slots.len();
        st.slots.retain(|_, slot| slot.fifo != *fifo);
        before - st.slots.len()
    }

    /// Slots currently parked and not yet resolved.
    pub(crate) fn outstanding(&self) -> usize {
        self.inner.lock().slots.len()
    }

    /// Parked-slot counts per FIFO, sorted by UUID — deterministic input for
    /// the arena-balance invariant oracle.
    pub(crate) fn parked_by_fifo(&self) -> Vec<(GlobalUuid, usize)> {
        let st = self.inner.lock();
        let mut counts: HashMap<&GlobalUuid, usize> = HashMap::new();
        for slot in st.slots.values() {
            *counts.entry(&slot.fifo).or_default() += 1;
        }
        let mut out: Vec<(GlobalUuid, usize)> =
            counts.into_iter().map(|(uuid, n)| (uuid.clone(), n)).collect();
        out.sort();
        out
    }

    /// Slots currently parked on the `from → to` link.
    #[cfg(test)]
    pub(crate) fn outstanding_on(&self, from: PuId, to: PuId) -> usize {
        self.inner.lock().slots.values().filter(|s| s.link == (from, to)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uuid(n: u64) -> GlobalUuid {
        GlobalUuid::new(format!("fifo-{n}"))
    }

    #[test]
    fn place_then_resolve_roundtrips_and_consumes_the_slot() {
        let arena = SegmentArena::default();
        let payload = Bytes::from(vec![7u8; 1024]);
        let desc = arena.place(PuId(1), PuId(0), uuid(9), payload.clone());
        assert_eq!(desc.len(), 1024);
        assert_eq!(arena.outstanding(), 1);
        assert_eq!(arena.outstanding_on(PuId(1), PuId(0)), 1);
        let got = arena.resolve(&uuid(9), &desc).unwrap();
        assert_eq!(got, payload);
        assert_eq!(arena.outstanding(), 0);
        // One-shot: a replayed descriptor is dead.
        assert_eq!(arena.resolve(&uuid(9), &desc), Err(ShimError::BadDescriptor));
    }

    #[test]
    fn forged_token_and_wrong_fifo_are_rejected_without_freeing() {
        let arena = SegmentArena::default();
        let desc = arena.place(PuId(1), PuId(0), uuid(9), Bytes::from_static(b"secret"));
        let forged = SegDescriptor { token: desc.token ^ 1, ..desc.clone() };
        assert_eq!(arena.resolve(&uuid(9), &forged), Err(ShimError::BadDescriptor));
        assert_eq!(arena.resolve(&uuid(8), &desc), Err(ShimError::BadDescriptor));
        // The failed attempts must not have consumed the slot.
        assert_eq!(arena.outstanding(), 1);
        assert!(arena.resolve(&uuid(9), &desc).is_ok());
    }

    #[test]
    fn reclaim_drops_only_the_fifos_slots() {
        let arena = SegmentArena::default();
        let d1 = arena.place(PuId(1), PuId(0), uuid(1), Bytes::from_static(b"a"));
        let _d2 = arena.place(PuId(2), PuId(0), uuid(2), Bytes::from_static(b"b"));
        assert_eq!(arena.reclaim_fifo(&uuid(2)), 1);
        assert_eq!(arena.outstanding(), 1);
        assert!(arena.resolve(&uuid(1), &d1).is_ok());
    }

    #[test]
    fn tokens_are_unique_across_slots() {
        let arena = SegmentArena::default();
        let a = arena.place(PuId(1), PuId(0), uuid(1), Bytes::new());
        let b = arena.place(PuId(1), PuId(0), uuid(1), Bytes::new());
        assert_ne!(a.token, b.token);
        assert_ne!(a.slot, b.slot);
        assert!(a.is_empty());
    }
}
