//! XPU-FIFO handles (paper §3.3).
//!
//! An XPU-FIFO is a FIFO with a *globally unique* UUID: any process on any
//! PU that holds the right capability can connect and write to it, while the
//! owner reads from it locally. Same-PU writes cost a local FIFO hop;
//! cross-PU writes go through an XPUcall plus the interconnect (nIPC).

use std::fmt;

use bytes::Bytes;
use hetsim::engine::{ProcCtx, RecvError, RecvTimeoutError, SimReceiver, TryRecvError};
use hetsim::time::SimDuration;
use telemetry::SpanContext;

use crate::cluster::ShimCluster;
use crate::error::ShimError;
use crate::id::{GlobalUuid, ObjId, XpuPid};
use crate::segment::SegDescriptor;

/// What a FIFO message carries: the payload inline, or — for large writes on
/// the zero-copy path — a capability-guarded descriptor pointing at a
/// shared-segment slot the reader's shim resolves on consumption.
#[derive(Debug, Clone)]
pub(crate) enum FifoPayload {
    Inline(Bytes),
    Descriptor(SegDescriptor),
}

/// The unit travelling through an XPU-FIFO: the payload plus the telemetry
/// span context piggybacked on every nIPC message, so a trace follows the
/// request across PUs.
#[derive(Debug, Clone)]
pub(crate) struct FifoMsg {
    pub payload: FifoPayload,
    pub span: Option<SpanContext>,
}

/// Reading end of an XPU-FIFO, held by the process that called `xfifo_init`.
pub struct XpuFifoReader {
    pub(crate) cluster: ShimCluster,
    pub(crate) uuid: GlobalUuid,
    pub(crate) obj: ObjId,
    pub(crate) owner: XpuPid,
    pub(crate) rx: SimReceiver<FifoMsg>,
}

impl fmt::Debug for XpuFifoReader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("XpuFifoReader")
            .field("uuid", &self.uuid)
            .field("obj", &self.obj)
            .field("owner", &self.owner)
            .finish()
    }
}

impl XpuFifoReader {
    /// The FIFO's global UUID.
    pub fn uuid(&self) -> &GlobalUuid {
        &self.uuid
    }

    /// The distributed object backing this FIFO (grant capabilities on it).
    pub fn obj(&self) -> ObjId {
        self.obj
    }

    /// `xfifo_read`: blocks until a message arrives.
    ///
    /// A message carrying a piggybacked span context adopts it as the
    /// reader's ambient trace context, continuing the sender's trace.
    ///
    /// # Errors
    ///
    /// [`ShimError::FifoClosed`] when every writer is gone and the queue is
    /// drained.
    pub fn read(&self, ctx: &mut ProcCtx) -> Result<Bytes, ShimError> {
        match self.rx.recv(ctx) {
            Ok(msg) => self.finish_read(ctx, msg),
            Err(RecvError::Disconnected) => Err(ShimError::FifoClosed),
        }
    }

    /// `xfifo_read` with a virtual-time deadline.
    ///
    /// # Errors
    ///
    /// [`ShimError::FifoTimeout`] on expiry, [`ShimError::FifoClosed`] when
    /// every writer is gone.
    pub fn read_timeout(
        &self,
        ctx: &mut ProcCtx,
        timeout: SimDuration,
    ) -> Result<Bytes, ShimError> {
        match self.rx.recv_timeout(ctx, timeout) {
            Ok(msg) => self.finish_read(ctx, msg),
            Err(RecvTimeoutError::Timeout) => Err(ShimError::FifoTimeout),
            Err(RecvTimeoutError::Disconnected) => Err(ShimError::FifoClosed),
        }
    }

    /// Non-blocking `xfifo_read`: returns immediately.
    ///
    /// # Errors
    ///
    /// [`ShimError::WouldBlock`] when nothing is queued (the FIFO is still
    /// open — retry later), [`ShimError::FifoClosed`] when every writer is
    /// gone and the queue is drained.
    pub fn try_read(&self, ctx: &mut ProcCtx) -> Result<Bytes, ShimError> {
        match self.rx.try_recv() {
            Ok(msg) => self.finish_read(ctx, msg),
            Err(TryRecvError::Empty) => Err(ShimError::WouldBlock),
            Err(TryRecvError::Disconnected) => Err(ShimError::FifoClosed),
        }
    }

    fn finish_read(&self, ctx: &mut ProcCtx, msg: FifoMsg) -> Result<Bytes, ShimError> {
        ctx.sleep(self.cluster.os_costs_of(self.owner.pu).syscall);
        let payload = match msg.payload {
            FifoPayload::Inline(bytes) => bytes,
            // Zero-copy hand-off: the message carried a descriptor; attach
            // the shared-segment slot (cheaper than an ipc_segment delivery)
            // and consume it. A forged or replayed descriptor fails here.
            FifoPayload::Descriptor(desc) => {
                ctx.sleep(self.cluster.segment_costs().map);
                self.cluster.resolve_descriptor(&self.uuid, &desc)?
            }
        };
        if msg.span.is_some() {
            ctx.set_trace_ctx(msg.span);
        }
        telemetry::with(|r| {
            r.instant(
                self.owner.pu.0,
                ctx.now().as_nanos(),
                &format!("xfifo-read {}", self.uuid),
                msg.span,
            );
        });
        Ok(payload)
    }

    /// `xfifo_close` from the owner side: destroys the FIFO object.
    ///
    /// Resources are revoked immediately; the UUID reclamation is
    /// synchronized *lazily* to other PUs (batched — §5 "Lazy
    /// synchronization").
    ///
    /// # Errors
    ///
    /// [`ShimError::UnknownUuid`] if the FIFO was already closed.
    pub fn close(self, ctx: &mut ProcCtx) -> Result<(), ShimError> {
        self.cluster.close_fifo(ctx, &self.uuid, self.owner)
    }

    /// Number of buffered messages.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

/// Writing end of an XPU-FIFO, obtained via `xfifo_connect`.
#[derive(Clone)]
pub struct XpuFifoWriter {
    pub(crate) cluster: ShimCluster,
    pub(crate) uuid: GlobalUuid,
    pub(crate) obj: ObjId,
    /// The connected (writing) process.
    pub(crate) connected_as: XpuPid,
    /// The PU where the FIFO (and its reader) lives.
    pub(crate) owner_pu: hetsim::pu::PuId,
}

impl fmt::Debug for XpuFifoWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("XpuFifoWriter")
            .field("uuid", &self.uuid)
            .field("connected_as", &self.connected_as)
            .field("owner_pu", &self.owner_pu)
            .finish()
    }
}

impl XpuFifoWriter {
    /// The FIFO's global UUID.
    pub fn uuid(&self) -> &GlobalUuid {
        &self.uuid
    }

    /// The distributed object backing this FIFO.
    pub fn obj(&self) -> ObjId {
        self.obj
    }

    /// `xfifo_write`: sends `payload` into the FIFO.
    ///
    /// Same-PU writes cost one local FIFO hop; cross-PU writes cost an
    /// XPUcall on the writer's PU plus the interconnect transfer and the
    /// remote shim's delivery (this is nIPC, Fig. 4). Permissions are
    /// re-checked on every write so revocation takes effect immediately.
    ///
    /// # Errors
    ///
    /// [`ShimError::Cap`] on permission failure, [`ShimError::FifoClosed`]
    /// if the FIFO's reader is gone.
    pub fn write(&self, ctx: &mut ProcCtx, payload: Bytes) -> Result<(), ShimError> {
        self.cluster.write_fifo(ctx, self, payload)
    }

    /// `xfifo_write` with exponential backoff.
    ///
    /// Retryable failures (xcall timeouts from a hung or partitioned peer)
    /// are retried under the cluster's [`RetryPolicy`]. Delivery stays
    /// fire-and-forget: `Ok` means sent, not arrived, and re-sending the
    /// same payload is always allowed — so the protocol is at-least-once.
    /// Callers that need exactly-once embed an idempotency key (from
    /// [`ShimCluster::fresh_idempotency_key`]) in the payload and let the
    /// receiver dedup on it.
    ///
    /// [`RetryPolicy`]: crate::cluster::RetryPolicy
    /// [`ShimCluster::fresh_idempotency_key`]: crate::cluster::ShimCluster::fresh_idempotency_key
    ///
    /// # Errors
    ///
    /// [`ShimError::PeerDead`] (not retried — fail over instead), or the
    /// last retryable error once attempts are exhausted.
    pub fn write_with_retry(&self, ctx: &mut ProcCtx, payload: Bytes) -> Result<(), ShimError> {
        self.cluster.write_fifo_retrying(ctx, self, payload)
    }
}
