//! Error type for XPU-Shim operations.

use core::fmt;

use hetsim::pu::PuId;

use molecule_tenancy::TenantId;

use crate::cap::CapError;
use crate::id::{GlobalUuid, ObjId};

/// Errors surfaced by XPUcalls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShimError {
    /// A capability check or capability operation failed.
    Cap(CapError),
    /// The global UUID is already taken (`xfifo_init` collision).
    UuidTaken(GlobalUuid),
    /// No FIFO with this UUID exists (never created, or closed).
    UnknownUuid(GlobalUuid),
    /// The FIFO's reader is gone (or all writers, when reading).
    FifoClosed,
    /// A timed FIFO read expired.
    FifoTimeout,
    /// An XPUcall to a hung or partitioned peer exceeded the configured
    /// timeout. The peer may still be alive: retrying is reasonable.
    XcallTimeout(PuId),
    /// The peer PU is crashed: the call can never succeed and the caller
    /// should fail over instead of retrying.
    PeerDead(PuId),
    /// A non-blocking read found nothing queued (the FIFO is still open).
    WouldBlock,
    /// The PU has no shim (not a general-purpose PU and no host to virtualize
    /// on).
    NoShimOn(PuId),
    /// The target PU of an `xSpawn` does not exist.
    NoSuchPu(PuId),
    /// A zero-copy segment descriptor failed its capability check on the
    /// reader side: forged token, wrong FIFO, or the slot was reclaimed.
    BadDescriptor,
    /// The operation would cross a tenant boundary (e.g. granting a
    /// capability on one tenant's object to another tenant's process).
    /// Denied by construction; never retryable.
    TenantDenied {
        /// The object whose domain would be breached.
        obj: ObjId,
        /// The tenant owning the object.
        owner: TenantId,
        /// The tenant that tried to receive access.
        to: TenantId,
    },
}

impl ShimError {
    /// True for transient failures where a backoff-and-retry may succeed
    /// (timeouts and would-block). Peer-dead, capability and UUID errors are
    /// permanent: retrying them is wasted work.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ShimError::FifoTimeout | ShimError::XcallTimeout(_) | ShimError::WouldBlock)
    }
}

impl fmt::Display for ShimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShimError::Cap(e) => write!(f, "capability error: {e}"),
            ShimError::UuidTaken(u) => write!(f, "xpu-fifo uuid already taken: {u}"),
            ShimError::UnknownUuid(u) => write!(f, "unknown xpu-fifo uuid: {u}"),
            ShimError::FifoClosed => f.write_str("xpu-fifo closed"),
            ShimError::FifoTimeout => f.write_str("xpu-fifo read timed out"),
            ShimError::XcallTimeout(pu) => write!(f, "xpucall to {pu} timed out"),
            ShimError::PeerDead(pu) => write!(f, "peer {pu} is dead"),
            ShimError::WouldBlock => f.write_str("xpu-fifo empty (would block)"),
            ShimError::NoShimOn(pu) => write!(f, "no xpu-shim instance on {pu}"),
            ShimError::NoSuchPu(pu) => write!(f, "no such pu: {pu}"),
            ShimError::BadDescriptor => f.write_str("segment descriptor failed capability check"),
            ShimError::TenantDenied { obj, owner, to } => {
                write!(f, "tenant isolation: {obj} belongs to {owner}, cannot cross into {to}")
            }
        }
    }
}

impl std::error::Error for ShimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShimError::Cap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CapError> for ShimError {
    fn from(e: CapError) -> ShimError {
        match e {
            // The tenant breach keeps its typed identity across the layer
            // boundary: callers match `TenantDenied`, not a generic cap
            // failure.
            CapError::TenantMismatch { obj, owner, to } => {
                ShimError::TenantDenied { obj, owner, to }
            }
            other => ShimError::Cap(other),
        }
    }
}
