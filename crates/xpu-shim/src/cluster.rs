//! The distributed shim: one logical XPU-Shim instance per PU, kept
//! consistent by explicit message passing (paper §3.1, §5).
//!
//! [`ShimCluster`] is the whole distributed system; [`XpuShim`] is the view
//! from one PU. Accelerators (FPGA/GPU) cannot run a shim, so their shim is
//! *virtual*: hosted on the host CPU (paper §4.1), which is also where their
//! XPUcall costs are charged.
//!
//! Synchronization strategies (§5) are modelled faithfully in both state and
//! cost:
//! * **static partitioning** — process ids embed the PU id, so
//!   `attach_process` sends no messages;
//! * **immediate synchronization** — `xfifo_init` and every capability
//!   update broadcast to all peer shims and wait for acknowledgement, so
//!   later checks are purely local;
//! * **lazy synchronization** — UUID reclamation after `xfifo_close` is
//!   queued and flushed in batches.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use hetsim::calib::{OsCosts, SegmentCosts};
use hetsim::engine::{ProcCtx, SimSender};
use hetsim::pu::{PuId, PuModel};
use hetsim::time::{SimDuration, SimTime};
use hetsim::topology::Machine;
use molecule_tenancy::TenantId;
use parking_lot::Mutex;

use crate::cap::{CapError, CapTable, ObjKind, Perm};
use crate::error::ShimError;
use crate::fifo::{FifoMsg, FifoPayload, XpuFifoReader, XpuFifoWriter};
use crate::id::{GlobalUuid, ObjId, XpuPid};
use crate::segment::{SegDescriptor, SegmentArena};
use crate::xcall::{bucket_representative, payload_bucket, XcallTransport};

/// Exponential-backoff retry policy for idempotency-keyed XPUcalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// Sleep before the first retry.
    pub backoff_base: SimDuration,
    /// Multiplier applied to the backoff after every failed retry.
    pub backoff_factor: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: SimDuration::from_micros(50),
            backoff_factor: 2,
        }
    }
}

/// How the shim picks an XPUcall transport for each call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportPolicy {
    /// One statically pinned transport per PU class — the pre-adaptive
    /// behaviour, kept as the bench baseline via [`ShimConfig::pinned`].
    Pinned {
        /// Transport on device PUs (DPUs/SmartNICs).
        device: XcallTransport,
        /// Transport on the host CPU (and virtual shims hosted there).
        cpu: XcallTransport,
    },
    /// Per-(link, payload-size-bucket) selection: each `(caller PU, peer PU,
    /// size bucket)` keeps one cost estimate per transport, seeded from the
    /// calibration table and refined by an EWMA of observed call times, and
    /// every call takes the cheapest current estimate.
    Adaptive,
}

/// Cluster-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShimConfig {
    /// Transport selection policy. The default is [`TransportPolicy::
    /// Adaptive`]; [`ShimConfig::pinned`] restores the static pinning
    /// (Poll on devices, Base on the CPU) the paper evaluates.
    pub transport: TransportPolicy,
    /// Zero-copy hand-off: writes of at least the calibrated
    /// `segment.min_payload` place their bytes once in a shared-segment slot
    /// and send a capability-guarded descriptor through the FIFO instead of
    /// staging the payload through the XPUcall.
    pub zero_copy: bool,
    /// Doorbell coalescing window: a cross-PU write that follows another
    /// write on the same (source, destination) link within this window
    /// shares its doorbell/wakeup and pays only the marginal
    /// [`XcallTransport::coalesced_cost`]. `ZERO` disables coalescing.
    pub coalesce_window: SimDuration,
    /// How many deferred UUID reclamations accumulate before a lazy flush.
    pub lazy_batch: usize,
    /// How long an XPUcall waits on an unresponsive peer before surfacing
    /// [`ShimError::XcallTimeout`] / [`ShimError::PeerDead`].
    pub xcall_timeout: SimDuration,
    /// Backoff policy for [`crate::fifo::XpuFifoWriter::write_with_retry`].
    pub retry: RetryPolicy,
    /// Dead-PU reclamation sweeps at most this many resources (processes or
    /// UUIDs) per burst before yielding to the engine, so a 10k-sandbox PU
    /// death is an amortized sweep rather than a stop-the-world walk.
    pub reclaim_batch: usize,
    /// Virtual time charged between reclamation bursts — the yield that lets
    /// unrelated invokes interleave with a large sweep. Small reclaims
    /// (fewer resources than one batch) never pay it, preserving the
    /// fault-recovery latencies measured before batching existed.
    pub reclaim_batch_pause: SimDuration,
}

impl Default for ShimConfig {
    fn default() -> Self {
        ShimConfig {
            transport: TransportPolicy::Adaptive,
            zero_copy: true,
            coalesce_window: SimDuration::from_micros(25),
            lazy_batch: 8,
            xcall_timeout: SimDuration::from_micros(200),
            retry: RetryPolicy::default(),
            reclaim_batch: 256,
            reclaim_batch_pause: SimDuration::from_nanos(500),
        }
    }
}

impl ShimConfig {
    /// The statically pinned data plane the paper evaluates (and the seed of
    /// this repo shipped): Poll transport on devices, Base on the CPU, no
    /// zero-copy hand-off, no doorbell coalescing. The bench baseline.
    pub fn pinned() -> ShimConfig {
        ShimConfig::pinned_with(XcallTransport::MpscPoll, XcallTransport::Base)
    }

    /// A pinned data plane with explicit per-class transports (Fig. 8 runs
    /// one series per transport).
    pub fn pinned_with(device: XcallTransport, cpu: XcallTransport) -> ShimConfig {
        ShimConfig {
            transport: TransportPolicy::Pinned { device, cpu },
            zero_copy: false,
            coalesce_window: SimDuration::ZERO,
            ..ShimConfig::default()
        }
    }
}

/// Counters describing the cluster's synchronization traffic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShimStats {
    /// Total XPUcalls served.
    pub xpucalls: u64,
    /// Point-to-point synchronization messages sent between shims.
    pub sync_messages: u64,
    /// Lazy-queue flushes performed.
    pub lazy_flushes: u64,
    /// Reclamations currently parked in the lazy queue.
    pub lazy_pending: u64,
    /// Cross-PU transfers that had to be forwarded by the host CPU.
    pub intercepted_transfers: u64,
    /// Cross-node transfers that crossed the rack fabric.
    pub fabric_transfers: u64,
    /// Keyed writes re-attempted after a retryable failure.
    pub xcall_retries: u64,
    /// Messages silently dropped by the fault plane.
    pub dropped_messages: u64,
    /// Messages delivered twice by the fault plane.
    pub duplicated_messages: u64,
    /// FIFO UUIDs reclaimed through the crash path (each exactly once).
    pub reclaimed_uuids: u64,
    /// Dead-PU reclamation sweeps performed.
    pub pu_reclaims: u64,
    /// Bounded bursts the amortized dead-PU sweeps were split into.
    pub reclaim_batches: u64,
    /// Cross-PU writes that shared a doorbell within the coalescing window
    /// (each paid only the marginal coalesced cost).
    pub batched_xcalls: u64,
    /// Large writes handed off as zero-copy segment descriptors.
    pub descriptor_handoffs: u64,
    /// Payload bytes that skipped XPUcall staging via the descriptor path.
    pub bytes_elided: u64,
}

/// A live FIFO as seen by [`ShimCluster::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FifoSnapshot {
    /// The FIFO's global UUID.
    pub uuid: GlobalUuid,
    /// The distributed object guarding it.
    pub obj: ObjId,
    /// The process that created (and reads) it.
    pub owner: XpuPid,
}

/// A live shared-state region as seen by [`ShimCluster::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RegionSnapshot {
    /// The region's global UUID.
    pub uuid: GlobalUuid,
    /// The distributed object guarding it.
    pub obj: ObjId,
    /// The region's current master process.
    pub owner: XpuPid,
}

/// A deterministic, fully-sorted snapshot of the cluster's control-plane
/// state, taken atomically under the state lock. This is what simcheck's
/// invariant oracles inspect after every engine step: every collection is
/// sorted so two snapshots of identical state compare equal bit-for-bit
/// regardless of `HashMap` iteration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSnapshot {
    /// Every `(process, object, permission)` capability triple, sorted.
    pub caps: Vec<(XpuPid, ObjId, Perm)>,
    /// Every registered process (with a `CAP_Group`), sorted.
    pub procs: Vec<XpuPid>,
    /// All live distributed object ids, sorted.
    pub objects: Vec<ObjId>,
    /// Every process's tenant domain, sorted by pid.
    pub tenants: Vec<(XpuPid, TenantId)>,
    /// Every object's tenant domain, sorted by object id.
    pub object_tenants: Vec<(ObjId, TenantId)>,
    /// All live FIFOs, sorted by UUID.
    pub fifos: Vec<FifoSnapshot>,
    /// All live shared-state regions, sorted by UUID.
    pub regions: Vec<RegionSnapshot>,
    /// UUIDs reclaimed through the crash path, sorted.
    pub reclaimed: Vec<GlobalUuid>,
    /// UUID frees parked in the lazy queue, sorted.
    pub lazy_pending: Vec<GlobalUuid>,
    /// The `reclaimed_uuids` stats counter (must equal `reclaimed.len()`).
    pub reclaimed_count: u64,
    /// Parked zero-copy slots per FIFO, sorted by UUID.
    pub parked_segments: Vec<(GlobalUuid, usize)>,
    /// Total parked zero-copy slots.
    pub outstanding_segments: usize,
}

struct FifoEntry {
    obj: ObjId,
    owner: XpuPid,
    tx: SimSender<FifoMsg>,
    /// Latest scheduled arrival into this FIFO: a later (cheaper — coalesced
    /// or descriptor-carrying) write is clamped to arrive no earlier, so the
    /// adaptive data plane can never reorder a FIFO's messages.
    last_arrival: SimTime,
}

/// A registered shared-state region: the guard object plus the process that
/// currently masters it. The payload bytes never live here — tier-2 sync
/// moves them through the segment arena; this entry is only the
/// capability-guarded name.
struct RegionEntry {
    obj: ObjId,
    owner: XpuPid,
}

struct ClusterState {
    caps: CapTable,
    next_local: HashMap<PuId, u32>,
    fifos: HashMap<GlobalUuid, FifoEntry>,
    regions: HashMap<GlobalUuid, RegionEntry>,
    lazy_queue: Vec<GlobalUuid>,
    stats: ShimStats,
    next_key: u64,
    /// UUIDs already reclaimed through the crash path — the guard that makes
    /// reclamation exactly-once even when the UUID-free message duplicates.
    reclaimed: HashSet<GlobalUuid>,
    /// Per-PU index over `fifos` (keyed by owner PU): the crash sweep reads
    /// the dead PU's own UUID set instead of filtering every live FIFO.
    fifos_by_pu: HashMap<PuId, HashSet<GlobalUuid>>,
    /// Per-PU index over `regions`, same purpose.
    regions_by_pu: HashMap<PuId, HashSet<GlobalUuid>>,
    /// When each (source, destination) link's doorbell last rang: writes
    /// landing within the coalescing window of the ring share that wakeup.
    doorbells: HashMap<(PuId, PuId), SimTime>,
}

impl ClusterState {
    /// All `fifos`/`regions` mutations go through these four helpers so the
    /// per-PU indices can never drift from the primary maps.
    fn insert_fifo(&mut self, uuid: GlobalUuid, entry: FifoEntry) {
        self.fifos_by_pu.entry(entry.owner.pu).or_default().insert(uuid.clone());
        self.fifos.insert(uuid, entry);
    }

    fn remove_fifo(&mut self, uuid: &GlobalUuid) -> Option<FifoEntry> {
        let entry = self.fifos.remove(uuid)?;
        if let Some(set) = self.fifos_by_pu.get_mut(&entry.owner.pu) {
            set.remove(uuid);
            if set.is_empty() {
                self.fifos_by_pu.remove(&entry.owner.pu);
            }
        }
        Some(entry)
    }

    fn insert_region(&mut self, uuid: GlobalUuid, entry: RegionEntry) {
        self.regions_by_pu.entry(entry.owner.pu).or_default().insert(uuid.clone());
        self.regions.insert(uuid, entry);
    }

    fn remove_region(&mut self, uuid: &GlobalUuid) -> Option<RegionEntry> {
        let entry = self.regions.remove(uuid)?;
        if let Some(set) = self.regions_by_pu.get_mut(&entry.owner.pu) {
            set.remove(uuid);
            if set.is_empty() {
                self.regions_by_pu.remove(&entry.owner.pu);
            }
        }
        Some(entry)
    }
}

/// Per-(link, payload-size-bucket) cost estimates for the adaptive selector:
/// one EWMA per transport, seeded from the calibration table on first use.
#[derive(Default)]
struct AdaptiveState {
    est: HashMap<(PuId, PuId, usize), [f64; 3]>,
}

struct ClusterInner {
    machine: Machine,
    config: ShimConfig,
    /// General-purpose PUs — the ones that run a real shim daemon.
    gp_pus: Vec<PuId>,
    state: Mutex<ClusterState>,
    /// Shared-segment arenas backing zero-copy descriptor hand-offs: one per
    /// rack node, indexed by [`hetsim::pu::NodeId::raw`]. A descriptor is
    /// parked in its *writer's* node arena and carries that node id, so the
    /// reader's resolve fault lands on the owning node's arena exactly once.
    arenas: Vec<SegmentArena>,
    adaptive: Mutex<AdaptiveState>,
}

/// The distributed XPU-Shim deployment on one machine.
///
/// Cheap to clone; clones share state.
///
/// # Examples
///
/// ```
/// use hetsim::topology::Machine;
/// use xpu_shim::cluster::{ShimCluster, ShimConfig};
///
/// let machine = Machine::paper_cpu_dpu_server();
/// let cluster = ShimCluster::deploy(machine, ShimConfig::default());
/// assert_eq!(cluster.shim_count(), 3); // CPU + 2 DPUs
/// ```
#[derive(Clone)]
pub struct ShimCluster {
    inner: Arc<ClusterInner>,
}

impl fmt::Debug for ShimCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShimCluster")
            .field("shims", &self.inner.gp_pus.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ShimCluster {
    /// Deploys one shim per general-purpose PU of `machine`.
    pub fn deploy(machine: Machine, config: ShimConfig) -> ShimCluster {
        let gp_pus =
            machine.pus().iter().filter(|p| p.kind.is_general_purpose()).map(|p| p.id).collect();
        let arenas = (0..machine.node_count()).map(|_| SegmentArena::default()).collect();
        ShimCluster {
            inner: Arc::new(ClusterInner {
                machine,
                config,
                gp_pus,
                state: Mutex::new(ClusterState {
                    caps: CapTable::new(),
                    next_local: HashMap::new(),
                    fifos: HashMap::new(),
                    regions: HashMap::new(),
                    lazy_queue: Vec::new(),
                    stats: ShimStats::default(),
                    next_key: 0,
                    reclaimed: HashSet::new(),
                    fifos_by_pu: HashMap::new(),
                    regions_by_pu: HashMap::new(),
                    doorbells: HashMap::new(),
                }),
                arenas,
                adaptive: Mutex::new(AdaptiveState::default()),
            }),
        }
    }

    /// The machine this cluster runs on.
    pub fn machine(&self) -> &Machine {
        &self.inner.machine
    }

    /// The cluster configuration.
    pub fn config(&self) -> ShimConfig {
        self.inner.config
    }

    /// Number of real (non-virtual) shim instances.
    pub fn shim_count(&self) -> usize {
        self.inner.gp_pus.len()
    }

    /// The shim serving PU `pu`. For accelerators this is the *virtual*
    /// instance hosted on the host CPU.
    ///
    /// # Errors
    ///
    /// [`ShimError::NoSuchPu`] if the PU does not exist.
    pub fn shim_on(&self, pu: PuId) -> Result<XpuShim, ShimError> {
        let spec = self.inner.machine.pu(pu).ok_or(ShimError::NoSuchPu(pu))?;
        let host = if spec.kind.is_general_purpose() { pu } else { self.inner.machine.host_cpu() };
        Ok(XpuShim { cluster: self.clone(), pu, host })
    }

    /// Synchronization counters.
    pub fn stats(&self) -> ShimStats {
        let st = self.inner.state.lock();
        let mut stats = st.stats;
        stats.lazy_pending = st.lazy_queue.len() as u64;
        stats
    }

    /// Takes a deterministic [`ClusterSnapshot`] of the control-plane state.
    ///
    /// The capability table, FIFO registry, reclamation set and lazy queue
    /// are read under one lock acquisition, so the snapshot is a consistent
    /// cut; the segment arena is sampled right after (it has its own lock,
    /// and only the scheduler thread mutates between engine steps — which is
    /// when the invariant oracles call this).
    pub fn snapshot(&self) -> ClusterSnapshot {
        let (
            caps,
            procs,
            objects,
            tenants,
            object_tenants,
            fifos,
            regions,
            reclaimed,
            lazy_pending,
            reclaimed_count,
        ) = {
            let st = self.inner.state.lock();
            let mut fifos: Vec<FifoSnapshot> = st
                .fifos
                .iter()
                .map(|(uuid, e)| FifoSnapshot { uuid: uuid.clone(), obj: e.obj, owner: e.owner })
                .collect();
            fifos.sort();
            let mut regions: Vec<RegionSnapshot> = st
                .regions
                .iter()
                .map(|(uuid, e)| RegionSnapshot { uuid: uuid.clone(), obj: e.obj, owner: e.owner })
                .collect();
            regions.sort();
            let mut reclaimed: Vec<GlobalUuid> = st.reclaimed.iter().cloned().collect();
            reclaimed.sort();
            let mut lazy_pending = st.lazy_queue.clone();
            lazy_pending.sort();
            (
                st.caps.entries(),
                st.caps.process_ids(),
                st.caps.object_ids(),
                st.caps.tenant_entries(),
                st.caps.object_tenant_entries(),
                fifos,
                regions,
                reclaimed,
                lazy_pending,
                st.stats.reclaimed_uuids,
            )
        };
        ClusterSnapshot {
            caps,
            procs,
            objects,
            tenants,
            object_tenants,
            fifos,
            regions,
            reclaimed,
            lazy_pending,
            reclaimed_count,
            parked_segments: self.parked_segments_by_fifo(),
            outstanding_segments: self.outstanding_segments(),
        }
    }

    /// Parks `bytes` in the *writer's* node arena and returns a descriptor
    /// stamped with the owning node's id, so cross-node readers resolve
    /// their fault back to that arena (and only that arena), exactly once.
    fn place_segment(&self, from: PuId, to: PuId, fifo: GlobalUuid, bytes: Bytes) -> SegDescriptor {
        let node = self.inner.machine.node_of(from).raw();
        let mut desc = self.inner.arenas[node as usize].place(from, to, fifo, bytes);
        desc.node = node;
        desc
    }

    /// The arena owning `desc`'s slot, per the node id the descriptor
    /// carries. A node id that names no arena is a forged/corrupt
    /// descriptor.
    fn arena_of(&self, desc: &SegDescriptor) -> Result<&SegmentArena, ShimError> {
        self.inner.arenas.get(desc.node as usize).ok_or(ShimError::BadDescriptor)
    }

    /// Frees every slot parked for `fifo` across all node arenas.
    fn reclaim_fifo_segments(&self, fifo: &GlobalUuid) -> usize {
        self.inner.arenas.iter().map(|a| a.reclaim_fifo(fifo)).sum()
    }

    /// Parked-slot counts per FIFO merged across node arenas, sorted.
    fn parked_segments_by_fifo(&self) -> Vec<(GlobalUuid, usize)> {
        let mut merged: std::collections::BTreeMap<GlobalUuid, usize> =
            std::collections::BTreeMap::new();
        for arena in &self.inner.arenas {
            for (uuid, n) in arena.parked_by_fifo() {
                *merged.entry(uuid).or_default() += n;
            }
        }
        merged.into_iter().collect()
    }

    pub(crate) fn os_costs_of(&self, pu: PuId) -> OsCosts {
        let model = self.inner.machine.pu(pu).map_or(PuModel::Xeon8160, |p| p.model);
        self.inner.machine.calibration().os_costs(model)
    }

    fn model_of(&self, pu: PuId) -> PuModel {
        self.inner.machine.pu(pu).map_or(PuModel::Xeon8160, |p| p.model)
    }

    /// The zero-copy hand-off cost table.
    pub(crate) fn segment_costs(&self) -> SegmentCosts {
        self.inner.machine.calibration().segment
    }

    /// Resolves a segment descriptor for `fifo`'s reader, consuming the slot.
    pub(crate) fn resolve_descriptor(
        &self,
        fifo: &GlobalUuid,
        desc: &SegDescriptor,
    ) -> Result<Bytes, ShimError> {
        let bytes = self.arena_of(desc)?.resolve(fifo, desc)?;
        telemetry::with(|r| r.metrics().counter_add("shim.descriptors_resolved", 1));
        Ok(bytes)
    }

    /// Shared-segment slots placed but not yet resolved (descriptor still in
    /// flight, or leaked by a dropped doorbell until the FIFO reclaims),
    /// summed across every node's arena.
    pub fn outstanding_segments(&self) -> usize {
        self.inner.arenas.iter().map(|a| a.outstanding()).sum()
    }

    /// The transport the configured policy picks for an XPUcall issued on
    /// `from` toward `to` carrying `payload` bytes. Read-only: does not seed
    /// or refine adaptive estimates.
    pub fn transport_choice(&self, from: PuId, to: PuId, payload: u64) -> XcallTransport {
        match self.inner.config.transport {
            TransportPolicy::Pinned { device, cpu } => match self.model_of(from) {
                PuModel::BlueField1 | PuModel::BlueField2 | PuModel::GenericSmartNic => device,
                _ => cpu,
            },
            TransportPolicy::Adaptive => {
                let bucket = payload_bucket(payload);
                let ad = self.inner.adaptive.lock();
                match ad.est.get(&(from, to, bucket)) {
                    Some(est) => Self::argmin_transport(est),
                    None => Self::argmin_transport(&self.seed_estimates(from, bucket)),
                }
            }
        }
    }

    fn argmin_transport(est: &[f64; 3]) -> XcallTransport {
        let mut best = 0;
        for i in 1..est.len() {
            if est[i] < est[best] {
                best = i;
            }
        }
        XcallTransport::ALL[best]
    }

    /// Calibration-seeded estimates for every transport on `(from, bucket)`:
    /// the invoke cost at the bucket's representative payload size.
    fn seed_estimates(&self, from: PuId, bucket: usize) -> [f64; 3] {
        let model = self.model_of(from);
        let calib = self.inner.machine.calibration();
        let os = calib.os_costs(model);
        let xc = calib.xcall_costs(model);
        let repr = bucket_representative(bucket);
        let mut est = [0.0f64; 3];
        for (i, t) in XcallTransport::ALL.iter().enumerate() {
            est[i] = t.invoke_cost(&os, &xc, repr).as_nanos() as f64;
        }
        est
    }

    /// Picks the transport for one call, seeding the adaptive estimates for
    /// the (link, bucket) on first use.
    fn select_transport(&self, from: PuId, to: PuId, payload: u64) -> XcallTransport {
        match self.inner.config.transport {
            TransportPolicy::Pinned { .. } => self.transport_choice(from, to, payload),
            TransportPolicy::Adaptive => {
                let bucket = payload_bucket(payload);
                let mut ad = self.inner.adaptive.lock();
                let est = match ad.est.get(&(from, to, bucket)) {
                    Some(est) => *est,
                    None => {
                        let seeded = self.seed_estimates(from, bucket);
                        ad.est.insert((from, to, bucket), seeded);
                        seeded
                    }
                };
                Self::argmin_transport(&est)
            }
        }
    }

    /// Folds one observed call time into the used transport's EWMA for the
    /// (link, bucket), so a link whose calls stall (hangs, degradation)
    /// drifts away from its calibrated seed.
    fn record_observation(
        &self,
        from: PuId,
        to: PuId,
        payload: u64,
        transport: XcallTransport,
        observed: SimDuration,
    ) {
        if !matches!(self.inner.config.transport, TransportPolicy::Adaptive) {
            return;
        }
        const ALPHA: f64 = 0.2;
        let bucket = payload_bucket(payload);
        let idx = XcallTransport::ALL.iter().position(|t| *t == transport).unwrap_or(0);
        let mut ad = self.inner.adaptive.lock();
        if let Some(est) = ad.est.get_mut(&(from, to, bucket)) {
            est[idx] = (1.0 - ALPHA) * est[idx] + ALPHA * observed.as_nanos() as f64;
        }
    }

    /// Models a fault on the shim daemon serving `host`, if any: a dead host
    /// makes the call hang until the timeout and fail; a hang window stalls
    /// the caller (and fails the call if the window outlasts the timeout).
    /// Zero-cost while the fault plane is quiet.
    fn check_host_fault(&self, ctx: &mut ProcCtx, host: PuId) -> Result<(), ShimError> {
        let plane = self.inner.machine.fault_plane();
        if plane.is_quiet() {
            return Ok(());
        }
        let timeout = self.inner.config.xcall_timeout;
        if plane.is_dead(host) {
            ctx.sleep(timeout);
            telemetry::with(|r| r.metrics().counter_add("shim.xcall_peer_dead", 1));
            return Err(ShimError::PeerDead(host));
        }
        if let Some(until) = plane.hang_until(ctx.now(), host) {
            let stall = until - ctx.now();
            if stall > timeout {
                ctx.sleep(timeout);
                telemetry::with(|r| r.metrics().counter_add("shim.xcall_timeouts", 1));
                return Err(ShimError::XcallTimeout(host));
            }
            // The shim daemon recovers within the deadline: the call just
            // stalls for the remainder of the hang window.
            ctx.sleep(stall);
        }
        Ok(())
    }

    fn charge_xpucall(
        &self,
        ctx: &mut ProcCtx,
        host: PuId,
        peer: PuId,
        payload: u64,
    ) -> Result<(), ShimError> {
        self.charge_xpucall_inner(ctx, host, peer, payload, false)
    }

    fn charge_xpucall_inner(
        &self,
        ctx: &mut ProcCtx,
        host: PuId,
        peer: PuId,
        payload: u64,
        coalesced: bool,
    ) -> Result<(), ShimError> {
        let t_start = ctx.now();
        self.check_host_fault(ctx, host)?;
        let transport = self.select_transport(host, peer, payload);
        let cost = {
            let model = self.model_of(host);
            let calib = self.inner.machine.calibration();
            let os = calib.os_costs(model);
            let xc = calib.xcall_costs(model);
            if coalesced {
                transport.coalesced_cost(&os, &xc, payload)
            } else {
                transport.invoke_cost(&os, &xc, payload)
            }
        };
        {
            let mut st = self.inner.state.lock();
            st.stats.xpucalls += 1;
            if coalesced {
                st.stats.batched_xcalls += 1;
            }
        }
        let t0 = ctx.now();
        ctx.sleep(cost);
        // The adaptive selector learns from the full observed call time,
        // fault stalls included — a sick link drifts its in-use transport's
        // estimate upward. Coalesced calls are skipped: their marginal cost
        // would bias the full-doorbell estimate downward.
        if !coalesced {
            self.record_observation(host, peer, payload, transport, ctx.now() - t_start);
        }
        // The XPUcall request carries the caller's span context: the call
        // span joins the ambient trace as a child.
        telemetry::with(|r| {
            r.complete_span(
                host.0,
                t0.as_nanos(),
                ctx.now().as_nanos(),
                "xpucall",
                ctx.trace_ctx(),
            );
            r.metrics().counter_add(&format!("shim.xpucalls.{}", transport.name()), 1);
            if coalesced {
                r.metrics().counter_add("shim.batched_xcalls", 1);
            }
            r.metrics().observe_ns("shim.xpucall_ns", cost.as_nanos());
        });
        Ok(())
    }

    /// Immediate synchronization: broadcast an update from `from` to every
    /// peer shim and wait for the slowest acknowledgement.
    fn sync_immediate(&self, ctx: &mut ProcCtx, from: PuId) {
        const SYNC_MSG_BYTES: u64 = 64;
        let mut worst = SimDuration::ZERO;
        let mut peers = 0u64;
        for &pu in &self.inner.gp_pus {
            if pu == from {
                continue;
            }
            peers += 1;
            let rtt = self.inner.machine.route(from, pu).transfer_time(SYNC_MSG_BYTES) * 2;
            worst = worst.max(rtt);
        }
        self.inner.state.lock().stats.sync_messages += peers;
        let t0 = ctx.now();
        ctx.sleep(worst);
        telemetry::with(|r| {
            r.complete_span(
                from.0,
                t0.as_nanos(),
                ctx.now().as_nanos(),
                "sync-immediate",
                ctx.trace_ctx(),
            );
            r.metrics().counter_add("shim.sync_messages", peers);
        });
    }

    /// Lazy synchronization: queue a reclamation; flush in batches.
    fn sync_lazy(&self, ctx: &mut ProcCtx, from: PuId, uuid: GlobalUuid) {
        let flush = {
            let mut st = self.inner.state.lock();
            st.lazy_queue.push(uuid);
            st.lazy_queue.len() >= self.inner.config.lazy_batch
        };
        if flush {
            self.flush_lazy(ctx, from);
        }
    }

    /// Forces the lazy queue to flush (e.g. on shutdown).
    pub fn flush_lazy(&self, ctx: &mut ProcCtx, from: PuId) {
        {
            let mut st = self.inner.state.lock();
            if st.lazy_queue.is_empty() {
                return;
            }
            st.lazy_queue.clear();
            st.stats.lazy_flushes += 1;
            st.stats.sync_messages += (self.inner.gp_pus.len() as u64).saturating_sub(1);
        }
        telemetry::with(|r| {
            r.instant(from.0, ctx.now().as_nanos(), "lazy-flush", ctx.trace_ctx());
            r.metrics().counter_add("shim.lazy_flushes", 1);
        });
        // One batched broadcast, regardless of how many entries flushed.
        self.sync_broadcast_cost(ctx, from);
    }

    fn sync_broadcast_cost(&self, ctx: &mut ProcCtx, from: PuId) {
        const BATCH_BYTES: u64 = 512;
        let mut worst = SimDuration::ZERO;
        for &pu in &self.inner.gp_pus {
            if pu == from {
                continue;
            }
            worst = worst.max(self.inner.machine.route(from, pu).transfer_time(BATCH_BYTES));
        }
        ctx.sleep(worst);
    }

    // ---- operations backing XpuShim / fifo handles ----

    pub(crate) fn attach_process(&self, pu: PuId, host: PuId) -> XpuPid {
        self.attach_process_as(pu, host, TenantId::SYSTEM)
    }

    pub(crate) fn attach_process_as(&self, pu: PuId, host: PuId, tenant: TenantId) -> XpuPid {
        // Static partitioning (§5): the PU id is baked into the pid, so no
        // cross-PU messages are needed. The tenant tag rides in the local
        // CAP_Group registration and syncs with it.
        let _ = host;
        let mut st = self.inner.state.lock();
        let counter = st.next_local.entry(pu).or_insert(0);
        *counter += 1;
        let pid = XpuPid { pu, local: *counter };
        st.caps.register_process_for(pid, tenant);
        pid
    }

    /// The tenant domain `pid` was attached into.
    pub fn tenant_of(&self, pid: XpuPid) -> TenantId {
        self.inner.state.lock().caps.tenant_of(pid)
    }

    pub(crate) fn detach_process(&self, pid: XpuPid) {
        self.inner.state.lock().caps.remove_process(pid);
    }

    pub(crate) fn grant_cap(
        &self,
        ctx: &mut ProcCtx,
        host: PuId,
        actor: XpuPid,
        to: XpuPid,
        obj: ObjId,
        perm: Perm,
    ) -> Result<(), ShimError> {
        self.charge_xpucall(ctx, host, host, 32)?;
        if let Err(e) = self.inner.state.lock().caps.grant(actor, to, obj, perm) {
            if let CapError::TenantMismatch { owner, .. } = e {
                telemetry::counter_add_tenant("shim.tenant_denied", owner.raw(), 1);
            }
            return Err(e.into());
        }
        // Capability updates are synchronized immediately so checks are
        // always local (§5).
        self.sync_immediate(ctx, host);
        Ok(())
    }

    pub(crate) fn revoke_cap(
        &self,
        ctx: &mut ProcCtx,
        host: PuId,
        actor: XpuPid,
        from: XpuPid,
        obj: ObjId,
        perm: Perm,
    ) -> Result<(), ShimError> {
        self.charge_xpucall(ctx, host, host, 32)?;
        self.inner.state.lock().caps.revoke(actor, from, obj, perm)?;
        self.sync_immediate(ctx, host);
        Ok(())
    }

    pub(crate) fn perm_of(&self, pid: XpuPid, obj: ObjId) -> Perm {
        self.inner.state.lock().caps.perm(pid, obj)
    }

    pub(crate) fn fifo_init(
        &self,
        ctx: &mut ProcCtx,
        host: PuId,
        caller: XpuPid,
        uuid: GlobalUuid,
    ) -> Result<XpuFifoReader, ShimError> {
        self.charge_xpucall(ctx, host, host, uuid.as_str().len() as u64)?;
        let (tx, rx) = ctx.channel::<FifoMsg>();
        {
            let mut st = self.inner.state.lock();
            if st.fifos.contains_key(&uuid) {
                return Err(ShimError::UuidTaken(uuid));
            }
            let obj = st.caps.create_object(caller, ObjKind::Ipc)?;
            st.insert_fifo(
                uuid.clone(),
                FifoEntry { obj, owner: caller, tx, last_arrival: SimTime::ZERO },
            );
        }
        // The UUID must be globally unique, so init synchronizes immediately.
        self.sync_immediate(ctx, host);
        let obj = self.inner.state.lock().fifos[&uuid].obj;
        Ok(XpuFifoReader { cluster: self.clone(), uuid, obj, owner: caller, rx })
    }

    pub(crate) fn fifo_connect(
        &self,
        ctx: &mut ProcCtx,
        host: PuId,
        caller: XpuPid,
        uuid: &GlobalUuid,
    ) -> Result<XpuFifoWriter, ShimError> {
        self.charge_xpucall(ctx, host, host, uuid.as_str().len() as u64)?;
        let st = self.inner.state.lock();
        let entry = st.fifos.get(uuid).ok_or_else(|| ShimError::UnknownUuid(uuid.clone()))?;
        // §3.2: "a process can only connect to an XPU-FIFO ... when it has
        // read or write permission" (owners connect to their own FIFOs).
        let perm = st.caps.perm(caller, entry.obj);
        if !perm.intersects(Perm::READ | Perm::WRITE | Perm::OWNER) {
            return Err(ShimError::Cap(crate::cap::CapError::PermissionDenied {
                actor: caller,
                obj: entry.obj,
                required: Perm::READ | Perm::WRITE,
            }));
        }
        Ok(XpuFifoWriter {
            cluster: self.clone(),
            uuid: uuid.clone(),
            obj: entry.obj,
            connected_as: caller,
            owner_pu: entry.owner.pu,
        })
    }

    pub(crate) fn write_fifo(
        &self,
        ctx: &mut ProcCtx,
        writer: &XpuFifoWriter,
        payload: Bytes,
    ) -> Result<(), ShimError> {
        let size = payload.len() as u64;
        let from = writer.connected_as.pu;
        let to = writer.owner_pu;
        let tx = {
            let st = self.inner.state.lock();
            // Re-check permission so revocation takes effect immediately.
            let perm = st.caps.perm(writer.connected_as, writer.obj);
            if !perm.intersects(Perm::WRITE | Perm::OWNER) {
                return Err(ShimError::Cap(crate::cap::CapError::PermissionDenied {
                    actor: writer.connected_as,
                    obj: writer.obj,
                    required: Perm::WRITE,
                }));
            }
            match st.fifos.get(&writer.uuid) {
                Some(entry) => entry.tx.clone(),
                None => return Err(ShimError::FifoClosed),
            }
        };
        let plane = self.inner.machine.fault_plane();
        if from != to && !plane.is_quiet() {
            // A dead or unreachable destination: the writer's XPUcall is
            // issued, then the delivery acknowledgement never comes.
            if plane.is_dead(to) {
                self.charge_xpucall(ctx, from, to, size)?;
                ctx.sleep(self.inner.config.xcall_timeout);
                telemetry::with(|r| r.metrics().counter_add("shim.xcall_peer_dead", 1));
                return Err(ShimError::PeerDead(to));
            }
            // A relayed route transits node hosts, so a partition of any
            // relayed leg (host legs of a CPU-intercepted route, the
            // ingress/fabric/egress legs of a cross-node route) cuts it just
            // like an endpoint-pair partition.
            if self.inner.machine.path_cut(from, to) {
                self.charge_xpucall(ctx, from, to, size)?;
                ctx.sleep(self.inner.config.xcall_timeout);
                telemetry::with(|r| r.metrics().counter_add("shim.xcall_timeouts", 1));
                return Err(ShimError::XcallTimeout(to));
            }
        }
        let t0 = ctx.now();
        let seg = self.segment_costs();
        let zero_copy = from != to && self.inner.config.zero_copy && size >= seg.min_payload;
        let in_flight = if from == to {
            // Local IPC: one local FIFO hop on this PU's OS.
            let os = self.os_costs_of(from);
            ctx.sleep(os.syscall);
            os.fifo_latency(size).saturating_sub(os.syscall)
        } else {
            // nIPC: XPUcall on the writer's PU, interconnect transfer, then
            // the destination shim delivers into the local FIFO.
            let route = self.inner.machine.route(from, to);
            if route.is_intercepted() {
                self.inner.state.lock().stats.intercepted_transfers += 1;
            } else if route.is_fabric() {
                self.inner.state.lock().stats.fabric_transfers += 1;
            }
            // Doorbell coalescing: a write inside the window of the link's
            // last doorbell shares that wakeup and pays only the marginal
            // XPUcall cost; the first write (re)rings the doorbell.
            let window = self.inner.config.coalesce_window;
            let coalesced = window > SimDuration::ZERO && {
                let mut st = self.inner.state.lock();
                match st.doorbells.get(&(from, to)) {
                    Some(&rung) if ctx.now() - rung <= window => true,
                    _ => {
                        st.doorbells.insert((from, to), ctx.now());
                        false
                    }
                }
            };
            if zero_copy {
                // Zero-copy hand-off: the payload moves once over the link
                // into the shared segment (writer-side registration, one
                // serialization pass) and the XPUcall stages only the
                // descriptor — the per-byte staging copy is elided.
                ctx.sleep(seg.register);
                self.charge_xpucall_inner(ctx, from, to, seg.descriptor_bytes, coalesced)?;
                {
                    let mut st = self.inner.state.lock();
                    st.stats.descriptor_handoffs += 1;
                    st.stats.bytes_elided += size;
                }
                telemetry::with(|r| {
                    r.metrics().counter_add("shim.descriptor_handoffs", 1);
                    r.metrics().counter_add("shim.bytes_elided", size);
                });
                let remote_deliver = self.os_costs_of(to).ipc_segment;
                route.transfer_time(size + seg.descriptor_bytes) + remote_deliver
            } else {
                self.charge_xpucall_inner(ctx, from, to, size, coalesced)?;
                // A coalesced delivery arrives on an already-woken shim: the
                // full ipc_segment wakeup is amortized down to a syscall.
                let os_to = self.os_costs_of(to);
                let remote_deliver = if coalesced { os_to.syscall } else { os_to.ipc_segment };
                route.transfer_time(size) + remote_deliver
            }
        };
        // FIFO-order clamp: a cheap (coalesced / descriptor) message sent
        // after an expensive one must not overtake it inside the same FIFO.
        // The clamp is *strictly* monotone — a clamped message arrives 1 ns
        // after the previous one, never at the same instant — so per-FIFO
        // order holds under any same-instant tie-break, not just the default
        // sequence-number one (simcheck shuffles those ties).
        let in_flight = {
            let mut st = self.inner.state.lock();
            match st.fifos.get_mut(&writer.uuid) {
                Some(entry) => {
                    let natural = ctx.now() + in_flight;
                    let arrival = if natural > entry.last_arrival {
                        natural
                    } else {
                        entry.last_arrival + SimDuration::from_nanos(1)
                    };
                    entry.last_arrival = arrival;
                    arrival - ctx.now()
                }
                None => in_flight,
            }
        };
        // The message carries the write span's context, so the remote read
        // continues this trace (one trace across CPU -> DPU -> FPGA hops).
        let mut span = ctx.trace_ctx();
        telemetry::with(|r| {
            let name = if from == to {
                format!("xfifo-write {}", writer.uuid)
            } else {
                format!("nipc-write {}", writer.uuid)
            };
            span = Some(r.complete_span(
                from.0,
                t0.as_nanos(),
                ctx.now().as_nanos(),
                &name,
                ctx.trace_ctx(),
            ));
            r.metrics().counter_add("shim.fifo_writes", 1);
            r.metrics().observe_ns(
                if from == to { "shim.fifo_write_local_ns" } else { "shim.nipc_write_ns" },
                (ctx.now() - t0).as_nanos(),
            );
        });
        if from != to && plane.sample_fifo_loss(from, to) {
            // The message vanishes on the wire: the sender has paid full
            // cost and sees success (fire-and-forget semantics) — recovery
            // happens at the protocol layer above.
            self.inner.state.lock().stats.dropped_messages += 1;
            plane.note(ctx.now(), &format!("fault: drop {} {from}->{to}", writer.uuid));
            telemetry::with(|r| r.metrics().counter_add("shim.fifo_drops", 1));
            return Ok(());
        }
        let duplicate = from != to && plane.sample_fifo_dup(from, to);
        // Descriptors are one-shot, so the slot is placed only after the
        // loss check (a dropped descriptor would leak its slot until FIFO
        // close) and a fault-injected duplicate carries an inline copy
        // instead of a second reference to the same consumable slot.
        let wire_payload = if zero_copy {
            let desc = self.place_segment(from, to, writer.uuid.clone(), payload.clone());
            FifoPayload::Descriptor(desc)
        } else {
            FifoPayload::Inline(payload.clone())
        };
        tx.send_delayed(in_flight, FifoMsg { payload: wire_payload, span })
            .map_err(|_| ShimError::FifoClosed)?;
        if duplicate {
            self.inner.state.lock().stats.duplicated_messages += 1;
            plane.note(ctx.now(), &format!("fault: dup {} {from}->{to}", writer.uuid));
            telemetry::with(|r| r.metrics().counter_add("shim.fifo_dups", 1));
            let _ =
                tx.send_delayed(in_flight, FifoMsg { payload: FifoPayload::Inline(payload), span });
        }
        Ok(())
    }

    /// At-least-once write with exponential backoff: retries on retryable
    /// errors ([`ShimError::is_retryable`]). Delivery is fire-and-forget —
    /// `Ok` means the message was *sent*, not that it arrived (the fault
    /// plane may drop it on the wire) — so the sender never suppresses a
    /// re-send. Exactly-once is the receiver's job: callers embed an
    /// idempotency key in the payload and the receiver dedups on it (the
    /// executor's served-reply cache).
    pub(crate) fn write_fifo_retrying(
        &self,
        ctx: &mut ProcCtx,
        writer: &XpuFifoWriter,
        payload: Bytes,
    ) -> Result<(), ShimError> {
        let policy = self.inner.config.retry;
        let mut backoff = policy.backoff_base;
        let mut attempt = 0u32;
        loop {
            match self.write_fifo(ctx, writer, payload.clone()) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() && attempt + 1 < policy.max_attempts => {
                    attempt += 1;
                    self.inner.state.lock().stats.xcall_retries += 1;
                    telemetry::with(|r| r.metrics().counter_add("shim.xcall_retries", 1));
                    ctx.sleep(backoff);
                    backoff = backoff * policy.backoff_factor as u64;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Hands out a cluster-unique idempotency key for keyed writes.
    pub fn fresh_idempotency_key(&self) -> u64 {
        let mut st = self.inner.state.lock();
        st.next_key += 1;
        st.next_key
    }

    pub(crate) fn close_fifo(
        &self,
        ctx: &mut ProcCtx,
        uuid: &GlobalUuid,
        owner: XpuPid,
    ) -> Result<(), ShimError> {
        self.charge_xpucall(ctx, owner.pu, owner.pu, 8)?;
        {
            let mut st = self.inner.state.lock();
            let entry = st.remove_fifo(uuid).ok_or_else(|| ShimError::UnknownUuid(uuid.clone()))?;
            st.caps.destroy_object(entry.obj)?;
        }
        // Any zero-copy slots still parked for this FIFO (descriptor sent
        // but never read) are freed with it, on every node's arena.
        self.reclaim_fifo_segments(uuid);
        // Resources are reclaimed now; the UUID-free message is batched.
        self.sync_lazy(ctx, owner.pu, uuid.clone());
        Ok(())
    }

    // ---- shared-state regions (tier-2 substrate for molecule-state) ----

    /// Registers a named shared-state region mastered by `owner`, creating
    /// its capability guard object. Like `xfifo_init`, the UUID must be
    /// globally unique, so registration synchronizes immediately.
    ///
    /// # Errors
    ///
    /// [`ShimError::UuidTaken`] when a FIFO, a live region, or an
    /// already-reclaimed UUID holds the name; [`ShimError::Cap`] if `owner`
    /// is not registered.
    pub fn register_region(
        &self,
        ctx: &mut ProcCtx,
        owner: XpuPid,
        uuid: impl Into<GlobalUuid>,
    ) -> Result<ObjId, ShimError> {
        let uuid = uuid.into();
        self.charge_xpucall(ctx, owner.pu, owner.pu, uuid.as_str().len() as u64)?;
        let obj = {
            let mut st = self.inner.state.lock();
            if st.fifos.contains_key(&uuid)
                || st.regions.contains_key(&uuid)
                || st.reclaimed.contains(&uuid)
            {
                return Err(ShimError::UuidTaken(uuid));
            }
            let obj = st.caps.create_object(owner, ObjKind::Region)?;
            st.insert_region(uuid.clone(), RegionEntry { obj, owner });
            obj
        };
        self.sync_immediate(ctx, owner.pu);
        telemetry::with(|r| r.metrics().counter_add("shim.regions_registered", 1));
        Ok(obj)
    }

    /// Destroys a region's guard object and frees any slots still parked for
    /// it; the UUID-free message goes out on the lazy path, exactly like
    /// `xfifo_close`. Only a caller holding `OWNER` on the guard may do this.
    ///
    /// # Errors
    ///
    /// [`ShimError::UnknownUuid`] / [`ShimError::Cap`].
    pub fn unregister_region(
        &self,
        ctx: &mut ProcCtx,
        caller: XpuPid,
        uuid: &GlobalUuid,
    ) -> Result<(), ShimError> {
        self.charge_xpucall(ctx, caller.pu, caller.pu, 8)?;
        {
            let mut st = self.inner.state.lock();
            let entry = st.regions.get(uuid).ok_or_else(|| ShimError::UnknownUuid(uuid.clone()))?;
            st.caps.check(caller, entry.obj, Perm::OWNER)?;
            let entry = st.remove_region(uuid).expect("checked above");
            st.caps.destroy_object(entry.obj)?;
        }
        self.reclaim_fifo_segments(uuid);
        self.sync_lazy(ctx, caller.pu, uuid.clone());
        Ok(())
    }

    /// Parks a region payload for the `from.pu → to` link and returns the
    /// capability-guarded descriptor when the zero-copy path applies
    /// (cross-PU payload of at least the calibrated `min_payload`), or
    /// `None` after charging the inline staging cost. Either way the full
    /// nIPC cost of moving the bytes is paid here; the caller keeps the
    /// payload and a `Some` descriptor must be consumed by
    /// [`resolve_region_payload`](Self::resolve_region_payload) on the
    /// destination side (or swept by region reclamation).
    ///
    /// # Errors
    ///
    /// [`ShimError::UnknownUuid`] / [`ShimError::Cap`] (WRITE or OWNER
    /// required); [`ShimError::PeerDead`] / [`ShimError::XcallTimeout`]
    /// when the fault plane has the destination down.
    pub fn park_region_payload(
        &self,
        ctx: &mut ProcCtx,
        from: XpuPid,
        uuid: &GlobalUuid,
        to: PuId,
        payload: Bytes,
    ) -> Result<Option<SegDescriptor>, ShimError> {
        let size = payload.len() as u64;
        {
            let st = self.inner.state.lock();
            let entry = st.regions.get(uuid).ok_or_else(|| ShimError::UnknownUuid(uuid.clone()))?;
            let perm = st.caps.perm(from, entry.obj);
            if !perm.intersects(Perm::WRITE | Perm::OWNER) {
                return Err(ShimError::Cap(crate::cap::CapError::PermissionDenied {
                    actor: from,
                    obj: entry.obj,
                    required: Perm::WRITE,
                }));
            }
        }
        let src = from.pu;
        let plane = self.inner.machine.fault_plane();
        if src != to && !plane.is_quiet() {
            if plane.is_dead(to) {
                self.charge_xpucall(ctx, src, to, size)?;
                ctx.sleep(self.inner.config.xcall_timeout);
                telemetry::with(|r| r.metrics().counter_add("shim.xcall_peer_dead", 1));
                return Err(ShimError::PeerDead(to));
            }
            if self.inner.machine.path_cut(src, to) {
                self.charge_xpucall(ctx, src, to, size)?;
                ctx.sleep(self.inner.config.xcall_timeout);
                telemetry::with(|r| r.metrics().counter_add("shim.xcall_timeouts", 1));
                return Err(ShimError::XcallTimeout(to));
            }
        }
        if src == to {
            // Same-PU "sync" is a local hand-off: tier 1 already shares the
            // pages; charge one syscall for the bookkeeping.
            ctx.sleep(self.os_costs_of(src).syscall);
            return Ok(None);
        }
        let seg = self.segment_costs();
        let route = self.inner.machine.route(src, to);
        if route.is_intercepted() {
            self.inner.state.lock().stats.intercepted_transfers += 1;
        } else if route.is_fabric() {
            self.inner.state.lock().stats.fabric_transfers += 1;
        }
        if self.inner.config.zero_copy && size >= seg.min_payload {
            // Same discipline as the FIFO descriptor path: the payload moves
            // once into the shared segment, the XPUcall stages only the
            // descriptor.
            ctx.sleep(seg.register);
            self.charge_xpucall(ctx, src, to, seg.descriptor_bytes)?;
            {
                let mut st = self.inner.state.lock();
                st.stats.descriptor_handoffs += 1;
                st.stats.bytes_elided += size;
            }
            ctx.sleep(route.transfer_time(size + seg.descriptor_bytes));
            telemetry::with(|r| {
                r.metrics().counter_add("shim.region_pushes", 1);
                r.metrics().counter_add("shim.descriptor_handoffs", 1);
                r.metrics().counter_add("shim.bytes_elided", size);
            });
            let desc = self.place_segment(src, to, uuid.clone(), payload);
            Ok(Some(desc))
        } else {
            self.charge_xpucall(ctx, src, to, size)?;
            ctx.sleep(route.transfer_time(size) + self.os_costs_of(to).ipc_segment);
            telemetry::with(|r| r.metrics().counter_add("shim.region_pushes", 1));
            Ok(None)
        }
    }

    /// Consumes a region payload descriptor on the destination side,
    /// charging the segment map cost. One-shot, like FIFO descriptor
    /// resolution.
    ///
    /// # Errors
    ///
    /// [`ShimError::UnknownUuid`] / [`ShimError::Cap`] (READ or OWNER
    /// required) / [`ShimError::BadDescriptor`].
    pub fn resolve_region_payload(
        &self,
        ctx: &mut ProcCtx,
        by: XpuPid,
        uuid: &GlobalUuid,
        desc: &SegDescriptor,
    ) -> Result<Bytes, ShimError> {
        {
            let st = self.inner.state.lock();
            let entry = st.regions.get(uuid).ok_or_else(|| ShimError::UnknownUuid(uuid.clone()))?;
            let perm = st.caps.perm(by, entry.obj);
            if !perm.intersects(Perm::READ | Perm::OWNER) {
                return Err(ShimError::Cap(crate::cap::CapError::PermissionDenied {
                    actor: by,
                    obj: entry.obj,
                    required: Perm::READ,
                }));
            }
        }
        ctx.sleep(self.segment_costs().map);
        let bytes = self.arena_of(desc)?.resolve(uuid, desc)?;
        telemetry::with(|r| r.metrics().counter_add("shim.descriptors_resolved", 1));
        Ok(bytes)
    }

    /// True while the region exists (registered and neither unregistered nor
    /// reclaimed).
    pub fn region_exists(&self, uuid: &GlobalUuid) -> bool {
        self.inner.state.lock().regions.contains_key(uuid)
    }

    /// The guard object and master process of a live region.
    pub fn region_entry(&self, uuid: &GlobalUuid) -> Option<(ObjId, XpuPid)> {
        self.inner.state.lock().regions.get(uuid).map(|e| (e.obj, e.owner))
    }

    pub(crate) fn xspawn<F>(
        &self,
        ctx: &mut ProcCtx,
        caller: XpuPid,
        target: PuId,
        program: &str,
        capv: &[(ObjId, Perm)],
        body: Option<F>,
    ) -> Result<XpuPid, ShimError>
    where
        F: FnOnce(&mut ProcCtx, XpuPid) + Send + 'static,
    {
        let spec = self.inner.machine.pu(target).ok_or(ShimError::NoSuchPu(target))?;
        if !spec.kind.is_general_purpose() {
            return Err(ShimError::NoShimOn(target));
        }
        let t0 = ctx.now();
        // XPUcall on the caller's side, command + ack over the interconnect.
        self.charge_xpucall(ctx, caller.pu, target, 128)?;
        if caller.pu != target {
            let rtt = self.inner.machine.route(caller.pu, target).transfer_time(128) * 2;
            ctx.sleep(rtt);
        }
        // The remote OS spawns the program.
        let os = self.inner.machine.os(target).expect("general-purpose PU has an OS");
        let os_pid = {
            // Charge the remote spawn cost to the caller, who blocks on it.
            ctx.sleep(self.os_costs_of(target).spawn_process);
            os.register_process(program, 1)
        };
        let _ = os_pid;
        // The child joins the *caller's* tenant domain: spawning is the only
        // way capability domains propagate, so a tenant can never mint a
        // process outside its own boundary.
        let child = self.attach_process_as(target, target, self.tenant_of(caller));
        // No implicit permission inheritance: only the explicit capv is
        // granted (§3.4).
        {
            let mut st = self.inner.state.lock();
            for &(obj, perm) in capv {
                st.caps.grant(caller, child, obj, perm)?;
            }
        }
        if !capv.is_empty() {
            self.sync_immediate(ctx, caller.pu);
        }
        // The spawn span rides on the capability vector: the child inherits
        // it (via `ctx.spawn`) as its ambient context, so work on the target
        // PU lands in the caller's trace.
        let spawn_span = telemetry::span(
            caller.pu.0,
            t0.as_nanos(),
            ctx.now().as_nanos(),
            &format!("xspawn {program}->pu{}", target.0),
            ctx.trace_ctx(),
        );
        telemetry::with(|r| r.metrics().counter_add("shim.xspawns", 1));
        if let Some(f) = body {
            let name = format!("{program}@{target}");
            let lane = target.0;
            let prev = ctx.trace_ctx();
            if spawn_span.is_some() {
                ctx.set_trace_ctx(spawn_span);
            }
            ctx.spawn(&name, move |child_ctx| {
                child_ctx.set_lane(lane);
                f(child_ctx, child)
            });
            ctx.set_trace_ctx(prev);
        }
        Ok(child)
    }

    // ---- crash recovery ----

    /// Health probe: one small XPUcall from `from` toward `target`'s shim.
    /// Returns the observed round trip, or the discriminated failure
    /// ([`ShimError::PeerDead`] / [`ShimError::XcallTimeout`]) after the
    /// configured `xcall_timeout` has elapsed.
    ///
    /// # Errors
    ///
    /// [`ShimError::NoSuchPu`] for unknown targets; [`ShimError::PeerDead`] /
    /// [`ShimError::XcallTimeout`] when the fault plane has the target down.
    pub fn probe_pu(
        &self,
        ctx: &mut ProcCtx,
        from: PuId,
        target: PuId,
    ) -> Result<SimDuration, ShimError> {
        const PROBE_BYTES: u64 = 16;
        if self.inner.machine.pu(target).is_none() {
            return Err(ShimError::NoSuchPu(target));
        }
        let t0 = ctx.now();
        self.charge_xpucall(ctx, from, target, PROBE_BYTES)?;
        if from != target {
            let plane = self.inner.machine.fault_plane();
            let timeout = self.inner.config.xcall_timeout;
            if plane.is_dead(target) {
                ctx.sleep(timeout);
                telemetry::with(|r| r.metrics().counter_add("shim.probe_failures", 1));
                return Err(ShimError::PeerDead(target));
            }
            if self.inner.machine.path_cut(from, target) {
                ctx.sleep(timeout);
                telemetry::with(|r| r.metrics().counter_add("shim.probe_failures", 1));
                return Err(ShimError::XcallTimeout(target));
            }
            let rtt = self.inner.machine.route(from, target).transfer_time(PROBE_BYTES) * 2;
            if let Some(until) = plane.hang_until(ctx.now(), target) {
                let stall = (until - ctx.now()) + rtt;
                if stall > timeout {
                    ctx.sleep(timeout);
                    telemetry::with(|r| r.metrics().counter_add("shim.probe_failures", 1));
                    return Err(ShimError::XcallTimeout(target));
                }
                ctx.sleep(stall);
            } else {
                ctx.sleep(rtt);
            }
        }
        Ok(ctx.now() - t0)
    }

    /// Reclaims everything a crashed PU left behind: every `CAP_Group`
    /// registered there is removed (its capabilities become ungrantable),
    /// and every XPU-FIFO owned by a process on the PU is destroyed, its
    /// UUID queued on the lazy-reclamation path (paper §5 — this is the
    /// batched UUID-free broadcast, now triggered by an actual failure).
    /// The capability revocations themselves synchronize immediately.
    ///
    /// Idempotent: a second sweep of the same PU finds nothing.
    ///
    /// Amortized: the candidate lists come from per-PU indices (O(resources
    /// on `dead`), never a scan of every live FIFO/region/process), and a
    /// sweep larger than [`ShimConfig::reclaim_batch`] releases the state
    /// lock and yields [`ShimConfig::reclaim_batch_pause`] of virtual time
    /// between bursts, so unrelated invokes interleave with a 10k-sandbox
    /// reclamation instead of stalling behind a stop-the-world walk. Sweeps
    /// that fit in one batch pay no pause at all.
    pub fn reclaim_pu(&self, ctx: &mut ProcCtx, dead: PuId) -> ReclaimReport {
        let t0 = ctx.now();
        let host = self.inner.machine.host_cpu();
        let (pids, uuids, region_uuids) = {
            let st = self.inner.state.lock();
            let pids = st.caps.pids_on(dead);
            let mut uuids: Vec<GlobalUuid> =
                st.fifos_by_pu.get(&dead).map(|s| s.iter().cloned().collect()).unwrap_or_default();
            uuids.sort();
            let mut region_uuids: Vec<GlobalUuid> = st
                .regions_by_pu
                .get(&dead)
                .map(|s| s.iter().cloned().collect())
                .unwrap_or_default();
            region_uuids.sort();
            (pids, uuids, region_uuids)
        };
        let batch = self.inner.config.reclaim_batch.max(1);
        let pause = self.inner.config.reclaim_batch_pause;
        let total = pids.len() + uuids.len() + region_uuids.len();
        let amortize = total > batch;
        let mut processed = 0usize;
        let mut bursts = 0u64;
        let mut caps_dropped = 0usize;
        for chunk in pids.chunks(batch) {
            {
                let mut st = self.inner.state.lock();
                for pid in chunk {
                    caps_dropped += st.caps.group(*pid).map_or(0, |g| g.len());
                    st.caps.remove_process(*pid);
                }
            }
            processed += chunk.len();
            bursts += 1;
            if amortize && processed < total {
                ctx.sleep(pause);
            }
        }
        let mut reclaimed = 0usize;
        for chunk in uuids.chunks(batch) {
            for uuid in chunk {
                if self.reclaim_uuid_inner(uuid) {
                    reclaimed += 1;
                    self.sync_lazy(ctx, host, uuid.clone());
                }
            }
            processed += chunk.len();
            bursts += 1;
            if amortize && processed < total {
                ctx.sleep(pause);
            }
        }
        // A dead master's state regions go through the same exactly-once
        // UUID path: guard object destroyed, parked payload slots swept, the
        // UUID-free broadcast batched lazily. The state layer re-masters the
        // surviving replica under a fresh UUID.
        let mut regions_reclaimed = 0usize;
        for chunk in region_uuids.chunks(batch) {
            for uuid in chunk {
                if self.reclaim_uuid_inner(uuid) {
                    regions_reclaimed += 1;
                    self.sync_lazy(ctx, host, uuid.clone());
                }
            }
            processed += chunk.len();
            bursts += 1;
            if amortize && processed < total {
                ctx.sleep(pause);
            }
        }
        if !pids.is_empty() {
            // Removing CAP_Groups is a capability update: immediate sync.
            self.sync_immediate(ctx, host);
        }
        {
            let mut st = self.inner.state.lock();
            st.stats.pu_reclaims += 1;
            st.stats.reclaim_batches += if amortize { bursts } else { u64::from(total > 0) };
        }
        let report = ReclaimReport {
            pu: dead,
            processes: pids.len(),
            fifos_reclaimed: reclaimed,
            regions_reclaimed,
            caps_dropped,
        };
        self.inner.machine.fault_plane().note(
            ctx.now(),
            &format!(
                "recover: reclaim {dead} ({} pids, {} fifos, {} regions, {} caps)",
                report.processes,
                report.fifos_reclaimed,
                report.regions_reclaimed,
                report.caps_dropped
            ),
        );
        telemetry::with(|r| {
            r.complete_span(host.0, t0.as_nanos(), ctx.now().as_nanos(), "reclaim-pu", None);
            r.metrics().counter_add("shim.pu_reclaims", 1);
            r.metrics().counter_add("shim.reclaimed_uuids", (reclaimed + regions_reclaimed) as u64);
        });
        report
    }

    /// Processes one UUID-free message: destroys the FIFO and queues the
    /// UUID on the lazy path — **exactly once**. Duplicated deliveries of
    /// the same message (the fault plane can duplicate any nIPC message)
    /// return `false` and change nothing: no double-free.
    pub fn reclaim_uuid(&self, ctx: &mut ProcCtx, uuid: &GlobalUuid) -> bool {
        let fresh = self.reclaim_uuid_inner(uuid);
        if fresh {
            self.sync_lazy(ctx, self.inner.machine.host_cpu(), uuid.clone());
        }
        fresh
    }

    fn reclaim_uuid_inner(&self, uuid: &GlobalUuid) -> bool {
        let mut st = self.inner.state.lock();
        if !st.reclaimed.insert(uuid.clone()) {
            return false; // duplicate UUID-free message: already handled
        }
        if let Some(entry) = st.remove_fifo(uuid) {
            // The owner may already be unregistered; destroying the object
            // is what revokes stale writer capabilities everywhere.
            let _ = st.caps.destroy_object(entry.obj);
        }
        // A state region shares the UUID namespace and the arena: its guard
        // object and any payload slots still parked for it go with the same
        // sweep, so snapshot slot-balance accounting stays exact.
        if let Some(entry) = st.remove_region(uuid) {
            let _ = st.caps.destroy_object(entry.obj);
        }
        st.stats.reclaimed_uuids += 1;
        drop(st);
        self.reclaim_fifo_segments(uuid);
        true
    }

    /// True if `pid` still has a `CAP_Group`.
    pub fn has_process(&self, pid: XpuPid) -> bool {
        self.inner.state.lock().caps.has_process(pid)
    }

    /// Number of capabilities `pid` currently holds (`None` if it has no
    /// `CAP_Group`).
    pub fn cap_count(&self, pid: XpuPid) -> Option<usize> {
        self.inner.state.lock().caps.group(pid).map(|g| g.len())
    }

    /// True while the FIFO exists (created and neither closed nor reclaimed).
    pub fn fifo_exists(&self, uuid: &GlobalUuid) -> bool {
        self.inner.state.lock().fifos.contains_key(uuid)
    }

    /// Registered processes on `pu`, in pid order.
    pub fn pids_on(&self, pu: PuId) -> Vec<XpuPid> {
        self.inner.state.lock().caps.pids_on(pu)
    }
}

/// What [`ShimCluster::reclaim_pu`] swept up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReclaimReport {
    /// The crashed PU.
    pub pu: PuId,
    /// `CAP_Group`s removed.
    pub processes: usize,
    /// FIFO UUIDs reclaimed (exactly once each).
    pub fifos_reclaimed: usize,
    /// State-region UUIDs reclaimed (exactly once each).
    pub regions_reclaimed: usize,
    /// Capabilities dropped with those groups.
    pub caps_dropped: usize,
}

/// The XPU-Shim view from one PU: issues XPUcalls on behalf of processes
/// running there.
#[derive(Clone)]
pub struct XpuShim {
    cluster: ShimCluster,
    /// The PU whose processes this shim serves.
    pu: PuId,
    /// Where the shim actually runs (== `pu` except for accelerator PUs,
    /// whose virtual shim is hosted on the host CPU).
    host: PuId,
}

impl fmt::Debug for XpuShim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("XpuShim")
            .field("pu", &self.pu)
            .field("host", &self.host)
            .field("virtual", &(self.pu != self.host))
            .finish()
    }
}

impl XpuShim {
    /// The PU this shim serves.
    pub fn pu(&self) -> PuId {
        self.pu
    }

    /// Where the shim daemon actually runs.
    pub fn host(&self) -> PuId {
        self.host
    }

    /// True for accelerator PUs whose shim is hosted on a neighbour.
    pub fn is_virtual(&self) -> bool {
        self.pu != self.host
    }

    /// The cluster this shim belongs to.
    pub fn cluster(&self) -> &ShimCluster {
        &self.cluster
    }

    /// Registers a process with the shim, creating its `CAP_Group` and
    /// globally unique [`XpuPid`]. Purely local (static partitioning).
    pub fn attach_process(&self) -> XpuPid {
        self.cluster.attach_process(self.pu, self.host)
    }

    /// Registers a process inside `tenant`'s capability domain. Like
    /// [`attach_process`](Self::attach_process) this is purely local; the
    /// tenant tag becomes part of the `CAP_Group` and every object the
    /// process creates inherits it.
    pub fn attach_process_as(&self, tenant: TenantId) -> XpuPid {
        self.cluster.attach_process_as(self.pu, self.host, tenant)
    }

    /// The tenant domain `pid` was attached into.
    pub fn tenant_of(&self, pid: XpuPid) -> TenantId {
        self.cluster.tenant_of(pid)
    }

    /// Removes a process and its `CAP_Group`.
    pub fn detach_process(&self, pid: XpuPid) {
        self.cluster.detach_process(pid);
    }

    /// `get_xpupid()` — identity XPUcall (charges one call's latency).
    ///
    /// # Errors
    ///
    /// [`ShimError::PeerDead`] / [`ShimError::XcallTimeout`] if the shim's
    /// host is crashed or hung.
    pub fn get_xpupid(&self, ctx: &mut ProcCtx, pid: XpuPid) -> Result<XpuPid, ShimError> {
        self.cluster.charge_xpucall(ctx, self.host, self.host, 8)?;
        Ok(pid)
    }

    /// `grant_cap(xpu_pid, obj_id, perm)`.
    ///
    /// # Errors
    ///
    /// [`ShimError::Cap`] unless `actor` owns `obj` and `to` is registered.
    pub fn grant_cap(
        &self,
        ctx: &mut ProcCtx,
        actor: XpuPid,
        to: XpuPid,
        obj: ObjId,
        perm: Perm,
    ) -> Result<(), ShimError> {
        self.cluster.grant_cap(ctx, self.host, actor, to, obj, perm)
    }

    /// `revoke_cap(xpu_pid, obj_id, perm)`.
    ///
    /// # Errors
    ///
    /// [`ShimError::Cap`] unless `actor` owns `obj`.
    pub fn revoke_cap(
        &self,
        ctx: &mut ProcCtx,
        actor: XpuPid,
        from: XpuPid,
        obj: ObjId,
        perm: Perm,
    ) -> Result<(), ShimError> {
        self.cluster.revoke_cap(ctx, self.host, actor, from, obj, perm)
    }

    /// The permission `pid` currently holds on `obj` (local check, free).
    pub fn perm_of(&self, pid: XpuPid, obj: ObjId) -> Perm {
        self.cluster.perm_of(pid, obj)
    }

    /// `xfifo_init(local_uuid, xpu_uuid)` — creates an XPU-FIFO owned by
    /// `caller`, readable through the returned handle.
    ///
    /// # Errors
    ///
    /// [`ShimError::UuidTaken`] on UUID collision; [`ShimError::Cap`] if
    /// `caller` is not registered.
    pub fn xfifo_init(
        &self,
        ctx: &mut ProcCtx,
        caller: XpuPid,
        uuid: impl Into<GlobalUuid>,
    ) -> Result<XpuFifoReader, ShimError> {
        self.cluster.fifo_init(ctx, self.host, caller, uuid.into())
    }

    /// `xfifo_connect(xpu_uuid)` — connects `caller` to an existing FIFO
    /// for writing.
    ///
    /// # Errors
    ///
    /// [`ShimError::UnknownUuid`] / [`ShimError::Cap`].
    pub fn xfifo_connect(
        &self,
        ctx: &mut ProcCtx,
        caller: XpuPid,
        uuid: &GlobalUuid,
    ) -> Result<XpuFifoWriter, ShimError> {
        self.cluster.fifo_connect(ctx, self.host, caller, uuid)
    }

    /// `xSpawn(PU_id, path, argv, envp, capv)` — starts `program` on
    /// `target`, granting exactly the capabilities in `capv` (no implicit
    /// inheritance). `body` is the program's behaviour in the simulation.
    ///
    /// # Errors
    ///
    /// [`ShimError::NoSuchPu`] / [`ShimError::NoShimOn`] /
    /// [`ShimError::Cap`].
    pub fn xspawn(
        &self,
        ctx: &mut ProcCtx,
        caller: XpuPid,
        target: PuId,
        program: &str,
        capv: &[(ObjId, Perm)],
        body: impl FnOnce(&mut ProcCtx, XpuPid) + Send + 'static,
    ) -> Result<XpuPid, ShimError> {
        self.cluster.xspawn(ctx, caller, target, program, capv, Some(body))
    }

    /// [`xspawn`](Self::xspawn) without attaching simulated behaviour (the
    /// process is registered but idle).
    ///
    /// # Errors
    ///
    /// Same as [`xspawn`](Self::xspawn).
    pub fn xspawn_inert(
        &self,
        ctx: &mut ProcCtx,
        caller: XpuPid,
        target: PuId,
        program: &str,
        capv: &[(ObjId, Perm)],
    ) -> Result<XpuPid, ShimError> {
        self.cluster.xspawn::<fn(&mut ProcCtx, XpuPid)>(ctx, caller, target, program, capv, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::engine::Simulation;
    use hetsim::pu::PuKind;
    use hetsim::topology::Machine;

    fn cluster() -> ShimCluster {
        ShimCluster::deploy(Machine::paper_cpu_dpu_server(), ShimConfig::default())
    }

    #[test]
    fn attach_is_local_and_partitioned() {
        let c = cluster();
        let cpu = c.shim_on(PuId(0)).unwrap();
        let dpu = c.shim_on(PuId(1)).unwrap();
        let a = cpu.attach_process();
        let b = dpu.attach_process();
        assert_eq!(a.pu, PuId(0));
        assert_eq!(b.pu, PuId(1));
        assert_ne!(a.encode(), b.encode());
        // Static partitioning: no sync messages were needed.
        assert_eq!(c.stats().sync_messages, 0);
    }

    #[test]
    fn virtual_shim_for_accelerators() {
        let machine = Machine::full_heterogeneous();
        let c = ShimCluster::deploy(machine.clone(), ShimConfig::default());
        let fpga_pu = machine.pus_of_kind(PuKind::Fpga)[0];
        let shim = c.shim_on(fpga_pu).unwrap();
        assert!(shim.is_virtual());
        assert_eq!(shim.host(), machine.host_cpu());
        let dpu_shim = c.shim_on(PuId(1)).unwrap();
        assert!(!dpu_shim.is_virtual());
    }

    #[test]
    fn fifo_roundtrip_cross_pu() {
        let c = cluster();
        let mut sim = Simulation::new();
        let c2 = c.clone();
        let (uuid_tx, uuid_rx) = sim.channel::<(GlobalUuid, XpuPid, ObjId, XpuPid)>();
        let reader = sim.spawn("cpu-reader", move |ctx| {
            let shim = c2.shim_on(PuId(0)).unwrap();
            let me = shim.attach_process();
            let fifo = shim.xfifo_init(ctx, me, "global-fifo").unwrap();
            // Pre-register the writer and grant it write permission.
            let writer_pid = c2.shim_on(PuId(1)).unwrap().attach_process();
            shim.grant_cap(ctx, me, writer_pid, fifo.obj(), Perm::WRITE).unwrap();
            uuid_tx.send((fifo.uuid().clone(), writer_pid, fifo.obj(), me)).unwrap();
            let t0 = ctx.now();
            let msg = fifo.read(ctx).unwrap();
            (msg, ctx.now() - t0)
        });
        let c3 = c.clone();
        sim.spawn("dpu-writer", move |ctx| {
            let (uuid, me, _obj, _owner) = uuid_rx.recv(ctx).unwrap();
            let shim = c3.shim_on(PuId(1)).unwrap();
            let w = shim.xfifo_connect(ctx, me, &uuid).unwrap();
            w.write(ctx, Bytes::from_static(b"hello-nipc")).unwrap();
        });
        sim.run().unwrap();
        let (msg, _latency) = reader.take_result().unwrap();
        assert_eq!(&msg[..], b"hello-nipc");
        let stats = c.stats();
        assert!(stats.xpucalls >= 3);
        assert!(stats.sync_messages > 0, "init + grant must sync immediately");
    }

    #[test]
    fn nipc_poll_latency_lands_near_25us() {
        // Fig. 8: with the polled XPUcall, a DPU->CPU xfifo_write lands
        // around 25us end to end.
        let c = cluster();
        let mut sim = Simulation::new();
        let c2 = c.clone();
        let h = sim.spawn("meas", move |ctx| {
            let cpu = c2.shim_on(PuId(0)).unwrap();
            let dpu = c2.shim_on(PuId(1)).unwrap();
            let owner = cpu.attach_process();
            let writer_pid = dpu.attach_process();
            let fifo = cpu.xfifo_init(ctx, owner, "lat").unwrap();
            cpu.grant_cap(ctx, owner, writer_pid, fifo.obj(), Perm::WRITE).unwrap();
            let w = dpu.xfifo_connect(ctx, writer_pid, &fifo.uuid().clone()).unwrap();
            let t0 = ctx.now();
            w.write(ctx, Bytes::from(vec![0u8; 64])).unwrap();
            let msg = fifo.read(ctx).unwrap();
            assert_eq!(msg.len(), 64);
            (ctx.now() - t0).as_micros_f64()
        });
        sim.run().unwrap();
        let us = h.take_result().unwrap();
        assert!((18.0..=32.0).contains(&us), "nIPC-Poll DPU->CPU was {us}us");
    }

    #[test]
    fn connect_without_capability_is_denied() {
        let c = cluster();
        let mut sim = Simulation::new();
        let h = sim.spawn("p", move |ctx| {
            let cpu = c.shim_on(PuId(0)).unwrap();
            let dpu = c.shim_on(PuId(1)).unwrap();
            let owner = cpu.attach_process();
            let stranger = dpu.attach_process();
            let fifo = cpu.xfifo_init(ctx, owner, "private").unwrap();
            let err = dpu.xfifo_connect(ctx, stranger, &fifo.uuid().clone()).unwrap_err();
            // The owner itself can connect (e.g. self_fifo pattern).
            let ok = cpu.xfifo_connect(ctx, owner, &fifo.uuid().clone());
            (err, ok.is_ok())
        });
        sim.run().unwrap();
        let (err, owner_ok) = h.take_result().unwrap();
        assert!(matches!(err, ShimError::Cap(_)), "got {err:?}");
        assert!(owner_ok);
    }

    #[test]
    fn revocation_stops_in_flight_writers() {
        let c = cluster();
        let mut sim = Simulation::new();
        let h = sim.spawn("p", move |ctx| {
            let cpu = c.shim_on(PuId(0)).unwrap();
            let owner = cpu.attach_process();
            let peer = cpu.attach_process();
            let fifo = cpu.xfifo_init(ctx, owner, "revocable").unwrap();
            cpu.grant_cap(ctx, owner, peer, fifo.obj(), Perm::WRITE).unwrap();
            let w = cpu.xfifo_connect(ctx, peer, &fifo.uuid().clone()).unwrap();
            w.write(ctx, Bytes::from_static(b"ok")).unwrap();
            cpu.revoke_cap(ctx, owner, peer, fifo.obj(), Perm::WRITE).unwrap();
            let err = w.write(ctx, Bytes::from_static(b"denied")).unwrap_err();
            let first = fifo.read(ctx).unwrap();
            (err, first)
        });
        sim.run().unwrap();
        let (err, first) = h.take_result().unwrap();
        assert!(matches!(err, ShimError::Cap(_)));
        assert_eq!(&first[..], b"ok");
    }

    #[test]
    fn host_leg_partition_cuts_intercepted_routes() {
        let machine = Machine::full_heterogeneous();
        let dpu = machine.pus_of_kind(PuKind::Dpu)[0];
        let fpga = machine.pus_of_kind(PuKind::Fpga)[0];
        let host = machine.host_cpu();
        assert!(machine.route(dpu, fpga).is_intercepted());
        let c = ShimCluster::deploy(machine.clone(), ShimConfig::default());
        let mut sim = Simulation::new();
        let c2 = c.clone();
        sim.spawn("driver", move |ctx| {
            let fpga_shim = c2.shim_on(fpga).unwrap();
            let dpu_shim = c2.shim_on(dpu).unwrap();
            let owner = fpga_shim.attach_process();
            let writer_pid = dpu_shim.attach_process();
            let fifo = fpga_shim.xfifo_init(ctx, owner, "accel-in").unwrap();
            fpga_shim.grant_cap(ctx, owner, writer_pid, fifo.obj(), Perm::WRITE).unwrap();
            let w = dpu_shim.xfifo_connect(ctx, writer_pid, &fifo.uuid().clone()).unwrap();
            // The endpoint pair is not partitioned, but the route transits
            // the host, so cutting the DPU->host leg blocks it.
            machine.fault_plane().partition(ctx.now(), dpu, host);
            let err = w.write(ctx, Bytes::from_static(b"x")).unwrap_err();
            assert_eq!(err, ShimError::XcallTimeout(fpga));
            machine.fault_plane().heal_partition(ctx.now(), dpu, host);
            w.write(ctx, Bytes::from_static(b"y")).unwrap();
            let msg = fifo.read(ctx).unwrap();
            assert_eq!(&msg[..], b"y");
        });
        sim.run().unwrap();
    }

    #[test]
    fn uuid_collision_is_rejected() {
        let c = cluster();
        let mut sim = Simulation::new();
        let h = sim.spawn("p", move |ctx| {
            let cpu = c.shim_on(PuId(0)).unwrap();
            let a = cpu.attach_process();
            let b = cpu.attach_process();
            let _f1 = cpu.xfifo_init(ctx, a, "same").unwrap();
            cpu.xfifo_init(ctx, b, "same").unwrap_err()
        });
        sim.run().unwrap();
        assert_eq!(h.take_result().unwrap(), ShimError::UuidTaken(GlobalUuid::new("same")));
    }

    #[test]
    fn lazy_close_batches_sync_messages() {
        let config = ShimConfig { lazy_batch: 4, ..ShimConfig::default() };
        let c = ShimCluster::deploy(Machine::paper_cpu_dpu_server(), config);
        let mut sim = Simulation::new();
        let c2 = c.clone();
        let h = sim.spawn("p", move |ctx| {
            let cpu = c2.shim_on(PuId(0)).unwrap();
            let me = cpu.attach_process();
            let mut flushes_seen = Vec::new();
            for i in 0..8 {
                let fifo = cpu.xfifo_init(ctx, me, format!("f{i}")).unwrap();
                fifo.close(ctx).unwrap();
                flushes_seen.push(c2.stats().lazy_flushes);
            }
            flushes_seen
        });
        sim.run().unwrap();
        let flushes = h.take_result().unwrap();
        // 8 closes with batch=4 -> exactly 2 flushes, occurring at the 4th
        // and 8th close.
        assert_eq!(flushes, vec![0, 0, 0, 1, 1, 1, 1, 2]);
        assert_eq!(c.stats().lazy_pending, 0);
    }

    #[test]
    fn xspawn_grants_only_explicit_caps() {
        let c = cluster();
        let mut sim = Simulation::new();
        let c2 = c.clone();
        let h = sim.spawn("manager", move |ctx| {
            let cpu = c2.shim_on(PuId(0)).unwrap();
            let me = cpu.attach_process();
            let fifo_a = cpu.xfifo_init(ctx, me, "a").unwrap();
            let fifo_b = cpu.xfifo_init(ctx, me, "b").unwrap();
            let child = cpu
                .xspawn_inert(ctx, me, PuId(1), "executor", &[(fifo_a.obj(), Perm::WRITE)])
                .unwrap();
            let perm_a = cpu.perm_of(child, fifo_a.obj());
            let perm_b = cpu.perm_of(child, fifo_b.obj());
            (child, perm_a, perm_b)
        });
        sim.run().unwrap();
        let (child, perm_a, perm_b) = h.take_result().unwrap();
        assert_eq!(child.pu, PuId(1));
        assert_eq!(perm_a, Perm::WRITE);
        assert_eq!(perm_b, Perm::NONE, "no implicit inheritance");
    }

    #[test]
    fn xspawn_to_accelerator_is_rejected() {
        let machine = Machine::full_heterogeneous();
        let fpga = machine.pus_of_kind(PuKind::Fpga)[0];
        let c = ShimCluster::deploy(machine, ShimConfig::default());
        let mut sim = Simulation::new();
        let h = sim.spawn("p", move |ctx| {
            let cpu = c.shim_on(PuId(0)).unwrap();
            let me = cpu.attach_process();
            let bad = cpu.xspawn_inert(ctx, me, fpga, "prog", &[]).unwrap_err();
            let missing = cpu.xspawn_inert(ctx, me, PuId(99), "prog", &[]).unwrap_err();
            (bad, missing)
        });
        sim.run().unwrap();
        let (bad, missing) = h.take_result().unwrap();
        assert_eq!(bad, ShimError::NoShimOn(fpga));
        assert_eq!(missing, ShimError::NoSuchPu(PuId(99)));
    }

    /// One DPU -> CPU write+read under `config`, returning the end-to-end
    /// latency in µs (and the cluster's stats). Asserts the payload arrives
    /// byte-identical regardless of the data-plane path taken.
    fn roundtrip_us(config: ShimConfig, payload_len: usize) -> (f64, ShimStats) {
        let c = ShimCluster::deploy(Machine::paper_cpu_dpu_server(), config);
        let mut sim = Simulation::new();
        let c2 = c.clone();
        let h = sim.spawn("meas", move |ctx| {
            let cpu = c2.shim_on(PuId(0)).unwrap();
            let dpu = c2.shim_on(PuId(1)).unwrap();
            let owner = cpu.attach_process();
            let writer_pid = dpu.attach_process();
            let fifo = cpu.xfifo_init(ctx, owner, "rt").unwrap();
            cpu.grant_cap(ctx, owner, writer_pid, fifo.obj(), Perm::WRITE).unwrap();
            let w = dpu.xfifo_connect(ctx, writer_pid, &fifo.uuid().clone()).unwrap();
            let payload = Bytes::from((0..payload_len).map(|i| i as u8).collect::<Vec<u8>>());
            let t0 = ctx.now();
            w.write(ctx, payload.clone()).unwrap();
            let got = fifo.read(ctx).unwrap();
            assert_eq!(got, payload, "payload must arrive byte-identical");
            (ctx.now() - t0).as_micros_f64()
        });
        sim.run().unwrap();
        (h.take_result().unwrap(), c.stats())
    }

    #[test]
    fn adaptive_matches_best_pinned_transport_per_payload() {
        // With zero-copy and coalescing disabled, the adaptive policy's only
        // lever is the per-(link, bucket) transport choice — it must land on
        // the best pinned transport at every payload size.
        for payload in [64usize, 1024, 4096] {
            let adaptive = ShimConfig {
                zero_copy: false,
                coalesce_window: SimDuration::ZERO,
                ..ShimConfig::default()
            };
            let (a_us, _) = roundtrip_us(adaptive, payload);
            let best = XcallTransport::ALL
                .iter()
                .map(|&t| roundtrip_us(ShimConfig::pinned_with(t, t), payload).0)
                .fold(f64::INFINITY, f64::min);
            assert!(
                a_us <= best + 1e-9,
                "adaptive {a_us}us must match best pinned {best}us at {payload}B"
            );
        }
    }

    #[test]
    fn zero_copy_descriptor_at_least_halves_large_payload_latency() {
        // The ISSUE's headline number: a 64 KiB cross-PU payload must get
        // >= 2x faster via the descriptor hand-off than the pinned baseline
        // that stages every byte through the XPUcall shared memory.
        let size = 64 * 1024;
        let (fast_us, fast_stats) = roundtrip_us(ShimConfig::default(), size);
        let (slow_us, slow_stats) = roundtrip_us(ShimConfig::pinned(), size);
        assert_eq!(fast_stats.descriptor_handoffs, 1);
        assert_eq!(fast_stats.bytes_elided, size as u64);
        assert_eq!(slow_stats.descriptor_handoffs, 0);
        assert!(
            fast_us * 2.0 <= slow_us,
            "zero-copy {fast_us}us must be >=2x faster than staged {slow_us}us"
        );
    }

    #[test]
    fn back_to_back_writes_coalesce_on_one_doorbell() {
        let c = cluster();
        let mut sim = Simulation::new();
        let c2 = c.clone();
        let h = sim.spawn("burst", move |ctx| {
            let cpu = c2.shim_on(PuId(0)).unwrap();
            let dpu = c2.shim_on(PuId(1)).unwrap();
            let owner = cpu.attach_process();
            let writer_pid = dpu.attach_process();
            let fifo = cpu.xfifo_init(ctx, owner, "burst").unwrap();
            cpu.grant_cap(ctx, owner, writer_pid, fifo.obj(), Perm::WRITE).unwrap();
            let w = dpu.xfifo_connect(ctx, writer_pid, &fifo.uuid().clone()).unwrap();
            let t0 = ctx.now();
            w.write(ctx, Bytes::from(vec![0u8; 64])).unwrap();
            let first = ctx.now() - t0;
            let t1 = ctx.now();
            w.write(ctx, Bytes::from(vec![1u8; 64])).unwrap();
            let second = ctx.now() - t1;
            let a = fifo.read(ctx).unwrap();
            let b = fifo.read(ctx).unwrap();
            assert_eq!((a[0], b[0]), (0, 1), "coalescing must preserve order");
            (first, second)
        });
        sim.run().unwrap();
        let (first, second) = h.take_result().unwrap();
        assert!(
            second < first,
            "a write inside the doorbell window must be cheaper: {second} vs {first}"
        );
        assert_eq!(c.stats().batched_xcalls, 1, "exactly the second write coalesces");
    }

    #[test]
    fn closing_a_fifo_reclaims_unread_descriptors() {
        let c = cluster();
        let mut sim = Simulation::new();
        let c2 = c.clone();
        sim.spawn("leaker", move |ctx| {
            let cpu = c2.shim_on(PuId(0)).unwrap();
            let dpu = c2.shim_on(PuId(1)).unwrap();
            let owner = cpu.attach_process();
            let writer_pid = dpu.attach_process();
            let fifo = cpu.xfifo_init(ctx, owner, "leak").unwrap();
            cpu.grant_cap(ctx, owner, writer_pid, fifo.obj(), Perm::WRITE).unwrap();
            let w = dpu.xfifo_connect(ctx, writer_pid, &fifo.uuid().clone()).unwrap();
            w.write(ctx, Bytes::from(vec![0u8; 64 * 1024])).unwrap();
            assert_eq!(c2.outstanding_segments(), 1, "descriptor parked, never read");
            fifo.close(ctx).unwrap();
            assert_eq!(c2.outstanding_segments(), 0, "close must free parked slots");
        });
        sim.run().unwrap();
    }

    #[test]
    fn policy_seeds_pick_poll_and_pinned_honors_device_cpu_split() {
        // At the calibrated seed, MpscPoll is the argmin on both the device
        // and the host CPU, so the adaptive default starts from the paper's
        // best static configuration everywhere.
        let a = cluster();
        assert_eq!(a.transport_choice(PuId(1), PuId(0), 64), XcallTransport::MpscPoll);
        assert_eq!(a.transport_choice(PuId(0), PuId(1), 64), XcallTransport::MpscPoll);
        let p = ShimCluster::deploy(Machine::paper_cpu_dpu_server(), ShimConfig::pinned());
        assert_eq!(p.transport_choice(PuId(1), PuId(0), 64), XcallTransport::MpscPoll);
        assert_eq!(p.transport_choice(PuId(0), PuId(1), 64), XcallTransport::Base);
    }

    #[test]
    fn tenant_domains_isolate_grants_and_spawn_inherits() {
        let c = cluster();
        let mut sim = Simulation::new();
        let c2 = c.clone();
        let h = sim.spawn("p", move |ctx| {
            let cpu = c2.shim_on(PuId(0)).unwrap();
            let dpu = c2.shim_on(PuId(1)).unwrap();
            let alice = cpu.attach_process_as(TenantId(1));
            let mallory = dpu.attach_process_as(TenantId(2));
            let fifo = cpu.xfifo_init(ctx, alice, "alice-fifo").unwrap();
            // Cross-tenant grant: denied by construction, even by the owner.
            let err = cpu.grant_cap(ctx, alice, mallory, fifo.obj(), Perm::WRITE).unwrap_err();
            // A spawned child joins the caller's domain, so the same grant
            // to the child succeeds and nIPC stays intra-tenant.
            let child = cpu.xspawn_inert(ctx, alice, PuId(1), "worker", &[]).unwrap();
            cpu.grant_cap(ctx, alice, child, fifo.obj(), Perm::WRITE).unwrap();
            (err, c2.tenant_of(child), c2.tenant_of(mallory))
        });
        sim.run().unwrap();
        let (err, child_tenant, mallory_tenant) = h.take_result().unwrap();
        assert!(
            matches!(err, ShimError::TenantDenied { owner: TenantId(1), to: TenantId(2), .. }),
            "got {err:?}"
        );
        assert_eq!(child_tenant, TenantId(1));
        assert_eq!(mallory_tenant, TenantId(2));
    }

    #[test]
    fn snapshot_carries_tenant_maps() {
        let c = cluster();
        let mut sim = Simulation::new();
        let c2 = c.clone();
        let h = sim.spawn("p", move |ctx| {
            let cpu = c2.shim_on(PuId(0)).unwrap();
            let pid = cpu.attach_process_as(TenantId(7));
            let fifo = cpu.xfifo_init(ctx, pid, "tagged").unwrap();
            (pid, fifo.obj())
        });
        sim.run().unwrap();
        let (pid, obj) = h.take_result().unwrap();
        let snap = c.snapshot();
        assert!(snap.tenants.contains(&(pid, TenantId(7))));
        assert!(snap.object_tenants.contains(&(obj, TenantId(7))));
    }

    #[test]
    fn xspawn_body_runs_on_schedule() {
        let c = cluster();
        let mut sim = Simulation::new();
        let (tx, rx) = sim.channel::<XpuPid>();
        let c2 = c.clone();
        sim.spawn("manager", move |ctx| {
            let cpu = c2.shim_on(PuId(0)).unwrap();
            let me = cpu.attach_process();
            cpu.xspawn(ctx, me, PuId(2), "executor", &[], move |_ctx, pid| {
                tx.send(pid).unwrap();
            })
            .unwrap();
        });
        let h = sim.spawn("collector", move |ctx| rx.recv(ctx).unwrap());
        sim.run().unwrap();
        assert_eq!(h.take_result().unwrap().pu, PuId(2));
    }
}
