//! Multi-threaded XPUcall handling (paper §5).
//!
//! "XPU-Shim also supports multi-threaded handling for XPUcall-intensive
//! scenarios, in which each XPU-Shim thread will handle a dedicated MPSC
//! queue. An alternative implementation is to use the Multi-Producer
//! Multi-Consumer queue to allow work-stealing."
//!
//! [`ShimServer`] implements both disciplines with *real* threads:
//!
//! * [`QueueDiscipline::PerThread`] — producers are statically partitioned
//!   (by `xpu_pid` hash) across dedicated [`NotifyQueue`]s, one shim thread
//!   each — no cross-thread coordination, but a hot producer can overload
//!   its thread;
//! * [`QueueDiscipline::WorkStealing`] — one injector feeding per-thread
//!   crossbeam deques with stealing, which balances skew at the price of
//!   occasional cross-thread traffic.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::deque::{Injector, Stealer, Worker};

use crate::id::XpuPid;
use crate::mpsc::NotifyQueue;

/// How XPUcall notifications are distributed across shim threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// One dedicated MPSC queue per shim thread; producers partition by pid.
    PerThread {
        /// Number of shim threads (and queues).
        threads: usize,
    },
    /// A shared injector with per-thread work-stealing deques.
    WorkStealing {
        /// Number of shim threads.
        threads: usize,
    },
}

enum Backend {
    PerThread(Vec<Arc<NotifyQueue>>),
    WorkStealing(Arc<Injector<XpuPid>>),
}

/// A running multi-threaded XPUcall server.
///
/// Each handled notification invokes the server's handler exactly once;
/// per-thread handled counts are exposed for balance inspection.
pub struct ShimServer {
    backend: Backend,
    stop: Arc<AtomicBool>,
    handled: Arc<Vec<AtomicU64>>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ShimServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShimServer")
            .field("threads", &self.threads.len())
            .field("handled", &self.total_handled())
            .finish()
    }
}

impl ShimServer {
    /// Starts the server with the given discipline. `handler` runs on a shim
    /// thread for every notification (it must be cheap and thread-safe).
    pub fn start<F>(discipline: QueueDiscipline, handler: F) -> ShimServer
    where
        F: Fn(usize, XpuPid) + Send + Sync + 'static,
    {
        let handler = Arc::new(handler);
        let stop = Arc::new(AtomicBool::new(false));
        match discipline {
            QueueDiscipline::PerThread { threads } => {
                let n = threads.max(1);
                let queues: Vec<Arc<NotifyQueue>> =
                    (0..n).map(|_| Arc::new(NotifyQueue::with_capacity(4096))).collect();
                let handled: Arc<Vec<AtomicU64>> =
                    Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
                let mut joins = Vec::new();
                for (i, queue) in queues.iter().enumerate() {
                    let queue = Arc::clone(queue);
                    let stop = Arc::clone(&stop);
                    let handled = Arc::clone(&handled);
                    let handler = Arc::clone(&handler);
                    joins.push(std::thread::spawn(move || loop {
                        match queue.pop() {
                            Some(pid) => {
                                handler(i, pid);
                                handled[i].fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                if stop.load(Ordering::Relaxed) && queue.is_empty() {
                                    return;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }));
                }
                ShimServer { backend: Backend::PerThread(queues), stop, handled, threads: joins }
            }
            QueueDiscipline::WorkStealing { threads } => {
                let n = threads.max(1);
                let injector = Arc::new(Injector::new());
                let workers: Vec<Worker<XpuPid>> = (0..n).map(|_| Worker::new_fifo()).collect();
                let stealers: Arc<Vec<Stealer<XpuPid>>> =
                    Arc::new(workers.iter().map(Worker::stealer).collect());
                let handled: Arc<Vec<AtomicU64>> =
                    Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
                let mut joins = Vec::new();
                for (i, worker) in workers.into_iter().enumerate() {
                    let injector = Arc::clone(&injector);
                    let stealers = Arc::clone(&stealers);
                    let stop = Arc::clone(&stop);
                    let handled = Arc::clone(&handled);
                    let handler = Arc::clone(&handler);
                    joins.push(std::thread::spawn(move || loop {
                        // Local first, then the injector, then steal.
                        let task = worker.pop().or_else(|| {
                            std::iter::repeat_with(|| {
                                injector.steal_batch_and_pop(&worker).or_else(|| {
                                    stealers
                                        .iter()
                                        .enumerate()
                                        .filter(|(j, _)| *j != i)
                                        .map(|(_, s)| s.steal())
                                        .collect()
                                })
                            })
                            .find(|s| !s.is_retry())
                            .and_then(|s| s.success())
                        });
                        match task {
                            Some(pid) => {
                                handler(i, pid);
                                handled[i].fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                if stop.load(Ordering::Relaxed) && injector.is_empty() {
                                    return;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }));
                }
                ShimServer {
                    backend: Backend::WorkStealing(injector),
                    stop,
                    handled,
                    threads: joins,
                }
            }
        }
    }

    /// Submits a notification from any producer thread.
    ///
    /// Under [`QueueDiscipline::PerThread`] the producer is routed to its
    /// pid's dedicated queue; the call spins briefly when that queue is full.
    pub fn submit(&self, pid: XpuPid) {
        match &self.backend {
            Backend::PerThread(queues) => {
                let idx = (pid.encode() % queues.len() as u64) as usize;
                while queues[idx].push(pid).is_err() {
                    std::hint::spin_loop();
                }
            }
            Backend::WorkStealing(injector) => injector.push(pid),
        }
    }

    /// Submits a coalesced batch of notifications from one producer: the
    /// vectorized-frame analogue of [`submit`](Self::submit). All entries
    /// from one caller ride a single doorbell, so under
    /// [`QueueDiscipline::PerThread`] the batch is offered to each pid's
    /// queue in prefix chunks ([`NotifyQueue::push_batch`]) instead of one
    /// CAS-contended push per entry.
    pub fn submit_batch(&self, pids: &[XpuPid]) {
        match &self.backend {
            Backend::PerThread(queues) => {
                // Group by destination queue, preserving per-producer order.
                let mut by_queue: Vec<Vec<XpuPid>> = vec![Vec::new(); queues.len()];
                for &pid in pids {
                    let idx = (pid.encode() % queues.len() as u64) as usize;
                    by_queue[idx].push(pid);
                }
                for (idx, group) in by_queue.iter().enumerate() {
                    let mut offered = 0;
                    while offered < group.len() {
                        offered += queues[idx].push_batch(&group[offered..]);
                        if offered < group.len() {
                            std::hint::spin_loop();
                        }
                    }
                }
            }
            Backend::WorkStealing(injector) => {
                for &pid in pids {
                    injector.push(pid);
                }
            }
        }
    }

    /// Notifications handled so far, per thread.
    pub fn handled_per_thread(&self) -> Vec<u64> {
        self.handled.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Total notifications handled.
    pub fn total_handled(&self) -> u64 {
        self.handled_per_thread().iter().sum()
    }

    /// Stops the server after draining and joins every thread.
    pub fn shutdown(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.total_handled()
    }
}

impl Drop for ShimServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::pu::PuId;

    fn flood(server: &ShimServer, producers: u16, per_producer: u32) {
        std::thread::scope(|scope| {
            for p in 0..producers {
                scope.spawn(move || {
                    for i in 0..per_producer {
                        server.submit(XpuPid { pu: PuId(p), local: i });
                    }
                });
            }
        });
    }

    #[test]
    fn per_thread_discipline_handles_everything_exactly_once() {
        let server = ShimServer::start(QueueDiscipline::PerThread { threads: 4 }, |_, _| {});
        flood(&server, 8, 2_000);
        let total = server.shutdown();
        assert_eq!(total, 16_000);
    }

    #[test]
    fn work_stealing_handles_everything_exactly_once() {
        let server = ShimServer::start(QueueDiscipline::WorkStealing { threads: 4 }, |_, _| {});
        flood(&server, 8, 2_000);
        let total = server.shutdown();
        assert_eq!(total, 16_000);
    }

    #[test]
    fn work_stealing_balances_a_skewed_producer() {
        // A single hot producer: with stealing, no thread should be left
        // completely idle while others drown.
        let server = ShimServer::start(QueueDiscipline::WorkStealing { threads: 4 }, |_, _| {
            // A tiny bit of work so stealing has time to engage.
            std::hint::black_box((0..50).sum::<u64>());
        });
        for i in 0..20_000u32 {
            server.submit(XpuPid { pu: PuId(0), local: i });
        }
        let per_thread = loop {
            if server.total_handled() == 20_000 {
                break server.handled_per_thread();
            }
            std::thread::yield_now();
        };
        server.shutdown();
        let busy = per_thread.iter().filter(|&&c| c > 0).count();
        assert!(busy >= 2, "stealing should spread a hot producer: {per_thread:?}");
    }

    #[test]
    fn submit_batch_delivers_everything_under_both_disciplines() {
        for discipline in [
            QueueDiscipline::PerThread { threads: 4 },
            QueueDiscipline::WorkStealing { threads: 4 },
        ] {
            let server = ShimServer::start(discipline, |_, _| {});
            let batch: Vec<XpuPid> =
                (0..10_000u32).map(|i| XpuPid { pu: PuId((i % 8) as u16), local: i }).collect();
            server.submit_batch(&batch);
            let total = server.shutdown();
            assert_eq!(total, 10_000, "{discipline:?}");
        }
    }

    #[test]
    fn per_thread_discipline_partitions_by_pid() {
        // All notifications from one pid land on one thread (FIFO per
        // producer is preserved by construction).
        let server = ShimServer::start(QueueDiscipline::PerThread { threads: 4 }, |_, _| {});
        for i in 0..5_000u32 {
            server.submit(XpuPid { pu: PuId(3), local: 7 });
            let _ = i;
        }
        while server.total_handled() < 5_000 {
            std::thread::yield_now();
        }
        let per_thread = server.handled_per_thread();
        server.shutdown();
        assert_eq!(per_thread.iter().filter(|&&c| c > 0).count(), 1, "{per_thread:?}");
    }
}
