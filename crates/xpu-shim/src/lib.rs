#![warn(missing_docs)]

//! `xpu-shim` — the distributed shim for multi-OS heterogeneous computers
//! (paper §3, *Serverless Computing on Heterogeneous Computers*, ASPLOS '22).
//!
//! A heterogeneous computer runs one OS per general-purpose PU, so no single
//! kernel can name processes, enforce permissions, or carry IPC across the
//! whole machine. XPU-Shim is the user-space indirection layer that restores
//! those facilities:
//!
//! * [`id`] — globally unique process ids ([`id::XpuPid`] = PU-ID ⊕ local
//!   UUID) that statically partition the namespace;
//! * [`cap`] — distributed capabilities (`CAP_Group`s, owner-gated
//!   `grant_cap` / `revoke_cap`);
//! * [`xcall`] — the three XPUcall transports of Fig. 7 with their cost
//!   model;
//! * [`fifo`] + [`cluster`] — XPU-FIFOs and neighbour IPC (nIPC): FIFO
//!   semantics across PUs over RDMA/DMA instead of the network;
//! * [`segment`] — per-link shared segments for zero-copy large-payload
//!   hand-off: the FIFO carries a capability-guarded descriptor while the
//!   bytes cross the link once (Fig. 13's data retention, generalized);
//! * [`mpsc`] — the real lock-free MPSC notification queue the optimized
//!   transports are built on (§5's security-conscious design);
//! * [`server`] — multi-threaded XPUcall handling: per-thread dedicated
//!   queues and the work-stealing alternative (§5);
//! * [`cluster`] — the deployed shim cluster, including `xSpawn` and the
//!   three synchronization strategies (static partition / immediate / lazy).
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use hetsim::engine::Simulation;
//! use hetsim::pu::PuId;
//! use hetsim::topology::Machine;
//! use xpu_shim::cluster::{ShimCluster, ShimConfig};
//! use xpu_shim::cap::Perm;
//!
//! let cluster = ShimCluster::deploy(Machine::paper_cpu_dpu_server(), ShimConfig::default());
//! let mut sim = Simulation::new();
//! let h = sim.spawn("demo", move |ctx| {
//!     let cpu = cluster.shim_on(PuId(0)).unwrap();
//!     let dpu = cluster.shim_on(PuId(1)).unwrap();
//!     let owner = cpu.attach_process();
//!     let peer = dpu.attach_process();
//!     let fifo = cpu.xfifo_init(ctx, owner, "demo-fifo").unwrap();
//!     cpu.grant_cap(ctx, owner, peer, fifo.obj(), Perm::WRITE).unwrap();
//!     let w = dpu.xfifo_connect(ctx, peer, &fifo.uuid().clone()).unwrap();
//!     w.write(ctx, Bytes::from_static(b"over nIPC")).unwrap();
//!     fifo.read(ctx).unwrap()
//! });
//! sim.run().unwrap();
//! assert_eq!(&h.take_result().unwrap()[..], b"over nIPC");
//! ```

pub mod cap;
pub mod cluster;
pub mod error;
pub mod fifo;
pub mod id;
pub mod mpsc;
pub mod segment;
pub mod server;
pub mod xcall;

pub use cap::Perm;
pub use cluster::{
    ClusterSnapshot, FifoSnapshot, RegionSnapshot, ShimCluster, ShimConfig, ShimStats,
    TransportPolicy, XpuShim,
};
pub use error::ShimError;
pub use fifo::{XpuFifoReader, XpuFifoWriter};
pub use id::{GlobalUuid, ObjId, XpuPid};
pub use molecule_tenancy::TenantId;
pub use segment::SegDescriptor;
pub use xcall::XcallTransport;
