//! The shared MPSC request queue behind the optimized XPUcall transports
//! (paper §5, Fig. 7-b/c).
//!
//! User processes enqueue *notifications* ("process X issued an XPUcall");
//! the shim thread polls and drains them. Security note from the paper: the
//! queue carries only the issuing process's id — all invocation data lives
//! in per-process shared memory — so a malicious producer can at worst DoS
//! the queue, never read another process's arguments. This implementation
//! enforces that shape at the type level: entries are bare [`XpuPid`]s.
//!
//! The queue is a bounded multi-producer single-consumer ring over atomics
//! (a real concurrent structure, not a simulation artifact): producers claim
//! slots with a CAS on the tail, publish with a per-slot sequence number,
//! and the consumer advances the head without locks. The Criterion bench
//! `primitives.rs` measures it under contention.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::id::XpuPid;

/// A slot: sequence number + payload. `seq` follows the classic bounded-MPMC
/// protocol (Vyukov), restricted here to one consumer.
struct Slot {
    seq: AtomicU64,
    value: AtomicU64,
}

/// Errors from [`NotifyQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("xpucall notification queue is full")
    }
}

impl std::error::Error for QueueFull {}

/// Bounded lock-free MPSC notification queue.
///
/// # Examples
///
/// ```
/// use xpu_shim::mpsc::NotifyQueue;
/// use xpu_shim::id::XpuPid;
/// use hetsim::pu::PuId;
///
/// let q = NotifyQueue::with_capacity(8);
/// let pid = XpuPid { pu: PuId(1), local: 7 };
/// q.push(pid).unwrap();
/// assert_eq!(q.pop(), Some(pid));
/// assert_eq!(q.pop(), None);
/// ```
pub struct NotifyQueue {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    tail: AtomicU64,
}

impl fmt::Debug for NotifyQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NotifyQueue")
            .field("capacity", &(self.mask + 1))
            .field("len", &self.len())
            .finish()
    }
}

impl NotifyQueue {
    /// Creates a queue with the given capacity (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(capacity: usize) -> NotifyQueue {
        let cap = capacity.next_power_of_two().max(2) as u64;
        let slots = (0..cap)
            .map(|i| Slot { seq: AtomicU64::new(i), value: AtomicU64::new(0) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        NotifyQueue { slots, mask: cap - 1, head: AtomicU64::new(0), tail: AtomicU64::new(0) }
    }

    /// Enqueues a notification from any producer thread.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the ring has no free slot (the caller retries or
    /// falls back to the FIFO transport).
    pub fn push(&self, pid: XpuPid) -> Result<(), QueueFull> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(tail & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == tail {
                // Slot free at this position: claim it.
                match self.tail.compare_exchange_weak(
                    tail,
                    tail + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.value.store(pid.encode(), Ordering::Relaxed);
                        // Publish: consumer may read once seq == tail + 1.
                        slot.seq.store(tail + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => tail = actual,
                }
            } else if seq < tail {
                // The slot still holds an unconsumed entry from the previous
                // lap: the ring is full.
                return Err(QueueFull);
            } else {
                // Another producer advanced past us; reload.
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Enqueues a burst of notifications from one producer, stopping at the
    /// first full slot. Returns how many were accepted — the all-or-nothing
    /// caller re-offers the remainder after a drain, the doorbell-coalescing
    /// caller treats the accepted prefix as one batch (one consumer wakeup
    /// amortized over `n` entries).
    pub fn push_batch(&self, pids: &[XpuPid]) -> usize {
        for (i, &pid) in pids.iter().enumerate() {
            if self.push(pid).is_err() {
                return i;
            }
        }
        pids.len()
    }

    /// Dequeues the next notification (single consumer: the shim thread).
    pub fn pop(&self) -> Option<XpuPid> {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head & self.mask) as usize];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq != head + 1 {
            return None; // nothing published at this position yet
        }
        let value = slot.value.load(Ordering::Relaxed);
        // Free the slot for the next lap.
        slot.seq.store(head + self.mask + 1, Ordering::Release);
        self.head.store(head + 1, Ordering::Relaxed);
        Some(XpuPid::decode(value))
    }

    /// Drains everything currently published.
    pub fn drain(&self) -> Vec<XpuPid> {
        let mut out = Vec::new();
        while let Some(pid) = self.pop() {
            out.push(pid);
        }
        out
    }

    /// Number of published-but-unconsumed entries (approximate under
    /// concurrent producers).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.saturating_sub(head) as usize
    }

    /// True if no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::pu::PuId;
    use std::sync::Arc;

    fn pid(local: u32) -> XpuPid {
        XpuPid { pu: PuId(1), local }
    }

    #[test]
    fn fifo_order_single_producer() {
        let q = NotifyQueue::with_capacity(16);
        for i in 0..10 {
            q.push(pid(i)).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(pid(i)));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_is_enforced() {
        let q = NotifyQueue::with_capacity(4);
        for i in 0..4 {
            q.push(pid(i)).unwrap();
        }
        assert_eq!(q.push(pid(99)), Err(QueueFull));
        assert_eq!(q.pop(), Some(pid(0)));
        q.push(pid(4)).unwrap(); // space again after a pop
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn wraps_around_many_laps() {
        let q = NotifyQueue::with_capacity(4);
        for lap in 0..100u32 {
            for i in 0..3 {
                q.push(pid(lap * 10 + i)).unwrap();
            }
            for i in 0..3 {
                assert_eq!(q.pop(), Some(pid(lap * 10 + i)));
            }
        }
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        // Real threads hammering the queue; the consumer must see every
        // notification exactly once.
        let q = Arc::new(NotifyQueue::with_capacity(1024));
        const PRODUCERS: u32 = 8;
        const PER_PRODUCER: u32 = 5_000;
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let id = XpuPid { pu: PuId(p as u16), local: i };
                    loop {
                        if q.push(id).is_ok() {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }));
        }
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while seen.len() < (PRODUCERS * PER_PRODUCER) as usize {
                    match q.pop() {
                        Some(pid) => seen.push(pid),
                        None => std::hint::spin_loop(),
                    }
                }
                seen
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        let seen = consumer.join().unwrap();
        assert_eq!(seen.len(), (PRODUCERS * PER_PRODUCER) as usize);
        // Per-producer order is preserved and nothing is duplicated.
        let mut per_producer: Vec<Vec<u32>> = vec![Vec::new(); PRODUCERS as usize];
        for pid in seen {
            per_producer[pid.pu.raw() as usize].push(pid.local);
        }
        for (p, locals) in per_producer.iter().enumerate() {
            assert_eq!(locals.len(), PER_PRODUCER as usize, "producer {p}");
            for (expect, &got) in locals.iter().enumerate() {
                assert_eq!(got, expect as u32, "producer {p} out of order");
            }
        }
    }

    #[test]
    fn push_batch_accepts_a_prefix_up_to_capacity() {
        let q = NotifyQueue::with_capacity(4);
        let burst: Vec<XpuPid> = (0..6).map(pid).collect();
        assert_eq!(q.push_batch(&burst), 4, "ring holds 4: the prefix fits");
        assert_eq!(q.drain(), burst[..4].to_vec());
        assert_eq!(q.push_batch(&burst[4..]), 2, "remainder fits after drain");
        assert_eq!(q.drain(), burst[4..].to_vec());
    }

    #[test]
    fn drain_takes_everything() {
        let q = NotifyQueue::with_capacity(8);
        for i in 0..5 {
            q.push(pid(i)).unwrap();
        }
        let all = q.drain();
        assert_eq!(all.len(), 5);
        assert!(q.is_empty());
    }
}
