//! Global identifiers for the multi-OS machine.
//!
//! Local PIDs are only unique per PU, so XPU-Shim identifies a process by an
//! [`XpuPid`]: the PU id plus a UUID issued by that PU's shim (paper §3.2).
//! Encoding the PU into the id *statically partitions* the identifier space,
//! which is why process creation needs no cross-PU synchronization.

use core::fmt;

use hetsim::pu::PuId;
use serde::{Deserialize, Serialize};

/// Globally unique process id: PU-ID ⊕ local UUID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct XpuPid {
    /// The PU the process lives on.
    pub pu: PuId,
    /// The UUID issued by that PU's shim (locally unique).
    pub local: u32,
}

impl XpuPid {
    /// Packs the id into a single `u64` (`pu` in the high bits), the wire
    /// encoding used in XPUcall messages.
    pub fn encode(self) -> u64 {
        ((self.pu.raw() as u64) << 32) | self.local as u64
    }

    /// Unpacks a wire-encoded id.
    ///
    /// # Examples
    ///
    /// ```
    /// use xpu_shim::id::XpuPid;
    /// use hetsim::pu::PuId;
    ///
    /// let pid = XpuPid { pu: PuId(2), local: 77 };
    /// assert_eq!(XpuPid::decode(pid.encode()), pid);
    /// ```
    pub fn decode(raw: u64) -> XpuPid {
        XpuPid { pu: PuId((raw >> 32) as u16), local: raw as u32 }
    }
}

impl fmt::Display for XpuPid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xpid({}:{})", self.pu, self.local)
    }
}

/// Identifier of a distributed object (a `CAP_Group` or `IPC` object, §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjId(pub u64);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// The globally unique name of an XPU-FIFO (`xfifo_init`'s `xpu_uuid`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalUuid(pub String);

impl GlobalUuid {
    /// Creates a UUID from any string-ish value.
    pub fn new(name: impl Into<String>) -> GlobalUuid {
        GlobalUuid(name.into())
    }

    /// The UUID as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for GlobalUuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for GlobalUuid {
    fn from(s: &str) -> GlobalUuid {
        GlobalUuid(s.to_owned())
    }
}

impl From<String> for GlobalUuid {
    fn from(s: String) -> GlobalUuid {
        GlobalUuid(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for pu in [0u16, 1, 7, u16::MAX] {
            for local in [0u32, 1, 4096, u32::MAX] {
                let pid = XpuPid { pu: PuId(pu), local };
                assert_eq!(XpuPid::decode(pid.encode()), pid);
            }
        }
    }

    #[test]
    fn encoding_partitions_by_pu() {
        // Two processes with the same local UUID on different PUs never
        // collide — the property that removes PID-allocation sync (§3.2).
        let a = XpuPid { pu: PuId(1), local: 42 };
        let b = XpuPid { pu: PuId(2), local: 42 };
        assert_ne!(a.encode(), b.encode());
    }

    #[test]
    fn display_formats() {
        let pid = XpuPid { pu: PuId(1), local: 3 };
        assert_eq!(pid.to_string(), "xpid(pu1:3)");
        assert_eq!(ObjId(9).to_string(), "obj9");
        assert_eq!(GlobalUuid::new("alexa-front").to_string(), "alexa-front");
    }
}
