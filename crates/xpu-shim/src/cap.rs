//! Distributed capabilities (paper §3.2).
//!
//! XPU-Shim keeps a `CAP_Group` per global process: the list of distributed
//! objects it may touch and with which permissions. One special permission is
//! *owner* — only an owner may `grant_cap`/`revoke_cap` for the object. All
//! capability updates are synchronized immediately across PUs so permission
//! checks always complete locally (§5 "Inter-PU synchronization").

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::ops::{BitOr, BitOrAssign};

use hetsim::pu::PuId;
use molecule_tenancy::TenantId;
use serde::{Deserialize, Serialize};

use crate::id::{ObjId, XpuPid};

/// Permission bits on a distributed object.
///
/// # Examples
///
/// ```
/// use xpu_shim::cap::Perm;
///
/// let rw = Perm::READ | Perm::WRITE;
/// assert!(rw.contains(Perm::READ));
/// assert!(!rw.contains(Perm::OWNER));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Perm(u8);

impl Perm {
    /// No permissions.
    pub const NONE: Perm = Perm(0);
    /// May read (e.g. `xfifo_read` / connect for reading).
    pub const READ: Perm = Perm(0b001);
    /// May write (e.g. `xfifo_write`).
    pub const WRITE: Perm = Perm(0b010);
    /// May grant/revoke this object's capabilities to other processes.
    pub const OWNER: Perm = Perm(0b100);
    /// All permissions.
    pub const ALL: Perm = Perm(0b111);

    /// True if every bit of `other` is present in `self`.
    pub fn contains(self, other: Perm) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if `self` and `other` share at least one bit.
    pub fn intersects(self, other: Perm) -> bool {
        self.0 & other.0 != 0
    }

    /// Removes the bits of `other`.
    #[must_use]
    pub fn without(self, other: Perm) -> Perm {
        Perm(self.0 & !other.0)
    }

    /// True if no bits are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for Perm {
    type Output = Perm;
    fn bitor(self, rhs: Perm) -> Perm {
        Perm(self.0 | rhs.0)
    }
}

impl BitOrAssign for Perm {
    fn bitor_assign(&mut self, rhs: Perm) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        s.push(if self.contains(Perm::READ) { 'r' } else { '-' });
        s.push(if self.contains(Perm::WRITE) { 'w' } else { '-' });
        s.push(if self.contains(Perm::OWNER) { 'o' } else { '-' });
        f.write_str(&s)
    }
}

/// What kind of distributed object an [`ObjId`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjKind {
    /// An inter-process connection object (an XPU-FIFO).
    Ipc,
    /// A capability group itself (process identity object).
    CapGroup,
    /// A named shared-state region (the guard object for tier-2 sync).
    Region,
}

/// Errors from capability operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CapError {
    /// The acting process lacks the required permission on the object.
    PermissionDenied {
        /// Who attempted the operation.
        actor: XpuPid,
        /// On which object.
        obj: ObjId,
        /// The permission that was required.
        required: Perm,
    },
    /// The object id is unknown.
    UnknownObject(ObjId),
    /// The process has no `CAP_Group` (was never attached to the shim).
    UnknownProcess(XpuPid),
    /// The grant would cross a tenant boundary: the object belongs to one
    /// tenant's capability domain and the grantee to another. Denied by
    /// construction — no permission bits are consulted, no override exists.
    TenantMismatch {
        /// The object whose domain would be breached.
        obj: ObjId,
        /// The tenant owning the object.
        owner: TenantId,
        /// The grantee's tenant.
        to: TenantId,
    },
}

impl fmt::Display for CapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapError::PermissionDenied { actor, obj, required } => {
                write!(f, "{actor} lacks {required} on {obj}")
            }
            CapError::UnknownObject(obj) => write!(f, "unknown object {obj}"),
            CapError::UnknownProcess(pid) => write!(f, "unknown process {pid}"),
            CapError::TenantMismatch { obj, owner, to } => {
                write!(f, "tenant isolation: {obj} belongs to {owner}, grantee is {to}")
            }
        }
    }
}

impl std::error::Error for CapError {}

/// A process's capability list.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CapGroup {
    caps: HashMap<ObjId, Perm>,
}

impl CapGroup {
    /// The permission this group holds on `obj` ([`Perm::NONE`] if absent).
    pub fn perm(&self, obj: ObjId) -> Perm {
        self.caps.get(&obj).copied().unwrap_or(Perm::NONE)
    }

    /// Number of capabilities held.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// True if the group holds no capabilities.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }
}

/// The capability table: `CAP_Group`s for every global process plus object
/// metadata. One logical instance is kept consistent across PUs via the
/// cluster's immediate-sync protocol; this type is the *state*, the cluster
/// charges the *latency*.
#[derive(Debug, Default)]
pub struct CapTable {
    groups: HashMap<XpuPid, CapGroup>,
    objects: HashMap<ObjId, ObjKind>,
    /// Which tenant's capability domain each process belongs to. Absent
    /// means [`TenantId::SYSTEM`] (the pre-tenancy default).
    tenants: HashMap<XpuPid, TenantId>,
    /// Which tenant's domain each object was created in (its owner's
    /// tenant at creation time — objects never migrate).
    object_tenants: HashMap<ObjId, TenantId>,
    /// Per-PU index over `groups`: the crash sweep reads the dead PU's own
    /// pid set instead of filtering every registered process. At 10k+
    /// resident sandboxes per PU the full-table filter is what capped
    /// reclamation.
    by_pu: HashMap<PuId, HashSet<XpuPid>>,
    /// Reverse index: which processes currently hold a capability on each
    /// object, so `destroy_object` revokes O(holders) instead of walking
    /// every `CAP_Group` in the table.
    holders: HashMap<ObjId, HashSet<XpuPid>>,
    next_obj: u64,
}

impl CapTable {
    /// Creates an empty table.
    pub fn new() -> CapTable {
        CapTable::default()
    }

    /// Registers a process (creates its empty `CAP_Group`) in the
    /// [`TenantId::SYSTEM`] domain. Idempotent.
    pub fn register_process(&mut self, pid: XpuPid) {
        self.register_process_for(pid, TenantId::SYSTEM);
    }

    /// Registers a process in `tenant`'s capability domain. Idempotent; a
    /// pid that already exists keeps its original tenant (processes never
    /// migrate between domains).
    pub fn register_process_for(&mut self, pid: XpuPid, tenant: TenantId) {
        self.groups.entry(pid).or_default();
        self.tenants.entry(pid).or_insert(tenant);
        self.by_pu.entry(pid.pu).or_default().insert(pid);
    }

    /// The tenant domain a process belongs to ([`TenantId::SYSTEM`] when
    /// never registered — the pre-tenancy default).
    pub fn tenant_of(&self, pid: XpuPid) -> TenantId {
        self.tenants.get(&pid).copied().unwrap_or(TenantId::SYSTEM)
    }

    /// The tenant domain an object was created in, if it exists.
    pub fn object_tenant(&self, obj: ObjId) -> Option<TenantId> {
        self.object_tenants.get(&obj).copied()
    }

    /// Removes a process and drops all its capabilities.
    pub fn remove_process(&mut self, pid: XpuPid) {
        if let Some(group) = self.groups.remove(&pid) {
            for obj in group.caps.keys() {
                if let Some(holders) = self.holders.get_mut(obj) {
                    holders.remove(&pid);
                    if holders.is_empty() {
                        self.holders.remove(obj);
                    }
                }
            }
        }
        self.tenants.remove(&pid);
        if let Some(pids) = self.by_pu.get_mut(&pid.pu) {
            pids.remove(&pid);
            if pids.is_empty() {
                self.by_pu.remove(&pid.pu);
            }
        }
    }

    /// True if the process has a `CAP_Group`.
    pub fn has_process(&self, pid: XpuPid) -> bool {
        self.groups.contains_key(&pid)
    }

    /// Creates a new distributed object owned by `owner` (who receives
    /// [`Perm::ALL`]).
    ///
    /// # Errors
    ///
    /// [`CapError::UnknownProcess`] if `owner` has no `CAP_Group`.
    pub fn create_object(&mut self, owner: XpuPid, kind: ObjKind) -> Result<ObjId, CapError> {
        if !self.groups.contains_key(&owner) {
            return Err(CapError::UnknownProcess(owner));
        }
        self.next_obj += 1;
        let obj = ObjId(self.next_obj);
        self.objects.insert(obj, kind);
        self.object_tenants.insert(obj, self.tenant_of(owner));
        self.groups.get_mut(&owner).expect("checked above").caps.insert(obj, Perm::ALL);
        self.holders.entry(obj).or_default().insert(owner);
        Ok(obj)
    }

    /// Destroys an object, revoking every process's capability on it.
    ///
    /// # Errors
    ///
    /// [`CapError::UnknownObject`] if the object does not exist.
    pub fn destroy_object(&mut self, obj: ObjId) -> Result<(), CapError> {
        self.objects.remove(&obj).ok_or(CapError::UnknownObject(obj))?;
        self.object_tenants.remove(&obj);
        if let Some(holders) = self.holders.remove(&obj) {
            for pid in holders {
                if let Some(group) = self.groups.get_mut(&pid) {
                    group.caps.remove(&obj);
                }
            }
        }
        Ok(())
    }

    /// The kind of an object, if it exists.
    pub fn object_kind(&self, obj: ObjId) -> Option<ObjKind> {
        self.objects.get(&obj).copied()
    }

    /// The permission `pid` holds on `obj`.
    pub fn perm(&self, pid: XpuPid, obj: ObjId) -> Perm {
        self.groups.get(&pid).map_or(Perm::NONE, |g| g.perm(obj))
    }

    /// Checks that `pid` holds `required` on `obj`.
    ///
    /// # Errors
    ///
    /// [`CapError::PermissionDenied`] (or unknown object/process variants).
    pub fn check(&self, pid: XpuPid, obj: ObjId, required: Perm) -> Result<(), CapError> {
        if !self.objects.contains_key(&obj) {
            return Err(CapError::UnknownObject(obj));
        }
        let group = self.groups.get(&pid).ok_or(CapError::UnknownProcess(pid))?;
        if group.perm(obj).contains(required) {
            Ok(())
        } else {
            Err(CapError::PermissionDenied { actor: pid, obj, required })
        }
    }

    /// `grant_cap(xpu_pid, obj_id, perm)` — `actor` (an owner) grants `perm`
    /// on `obj` to `to`.
    ///
    /// # Errors
    ///
    /// [`CapError::PermissionDenied`] unless `actor` owns `obj`;
    /// [`CapError::UnknownProcess`] if `to` has no `CAP_Group`;
    /// [`CapError::TenantMismatch`] if `to` lives in a different tenant's
    /// capability domain than the object — cross-tenant grants are denied
    /// by construction, even for an owner.
    pub fn grant(
        &mut self,
        actor: XpuPid,
        to: XpuPid,
        obj: ObjId,
        perm: Perm,
    ) -> Result<(), CapError> {
        self.check(actor, obj, Perm::OWNER)?;
        if !self.groups.contains_key(&to) {
            return Err(CapError::UnknownProcess(to));
        }
        let owner_tenant = self.object_tenant(obj).unwrap_or(TenantId::SYSTEM);
        let to_tenant = self.tenant_of(to);
        if owner_tenant != to_tenant {
            return Err(CapError::TenantMismatch { obj, owner: owner_tenant, to: to_tenant });
        }
        let group = self.groups.get_mut(&to).expect("checked above");
        let entry = group.caps.entry(obj).or_insert(Perm::NONE);
        *entry |= perm;
        self.holders.entry(obj).or_default().insert(to);
        Ok(())
    }

    /// `revoke_cap(xpu_pid, obj_id, perm)` — `actor` (an owner) strips `perm`
    /// on `obj` from `from`.
    ///
    /// # Errors
    ///
    /// [`CapError::PermissionDenied`] unless `actor` owns `obj`;
    /// [`CapError::UnknownProcess`] if `from` has no `CAP_Group`.
    pub fn revoke(
        &mut self,
        actor: XpuPid,
        from: XpuPid,
        obj: ObjId,
        perm: Perm,
    ) -> Result<(), CapError> {
        self.check(actor, obj, Perm::OWNER)?;
        let group = self.groups.get_mut(&from).ok_or(CapError::UnknownProcess(from))?;
        if let Some(entry) = group.caps.get_mut(&obj) {
            *entry = entry.without(perm);
            if entry.is_empty() {
                group.caps.remove(&obj);
                if let Some(holders) = self.holders.get_mut(&obj) {
                    holders.remove(&from);
                    if holders.is_empty() {
                        self.holders.remove(&obj);
                    }
                }
            }
        }
        Ok(())
    }

    /// A process's capability group, if registered.
    pub fn group(&self, pid: XpuPid) -> Option<&CapGroup> {
        self.groups.get(&pid)
    }

    /// All registered processes living on `pu`, in pid order. The crash
    /// reclamation path sweeps this list when a PU dies (static
    /// partitioning makes the sweep purely local — the pid embeds the PU).
    /// Served from the per-PU index: O(pids on `pu`), not O(all pids) — at
    /// 10k+ resident sandboxes the full-table filter dominated reclaim.
    pub fn pids_on(&self, pu: PuId) -> Vec<XpuPid> {
        let mut pids: Vec<XpuPid> =
            self.by_pu.get(&pu).map(|s| s.iter().copied().collect()).unwrap_or_default();
        pids.sort();
        pids
    }

    /// Processes currently holding a capability on `obj`, in pid order —
    /// served from the reverse holders index.
    pub fn holders_of(&self, obj: ObjId) -> Vec<XpuPid> {
        let mut pids: Vec<XpuPid> =
            self.holders.get(&obj).map(|s| s.iter().copied().collect()).unwrap_or_default();
        pids.sort();
        pids
    }

    /// Every `(process, object, permission)` triple currently in the table,
    /// sorted — a deterministic flattening for snapshot-based invariant
    /// oracles (simcheck walks this after every engine step).
    pub fn entries(&self) -> Vec<(XpuPid, ObjId, Perm)> {
        let mut out: Vec<(XpuPid, ObjId, Perm)> = self
            .groups
            .iter()
            .flat_map(|(pid, group)| group.caps.iter().map(|(obj, perm)| (*pid, *obj, *perm)))
            .collect();
        out.sort_by_key(|(pid, obj, _)| (*pid, *obj));
        out
    }

    /// Every `(process, tenant)` pair, sorted by pid — the deterministic
    /// flattening the simcheck tenant-isolation oracle walks.
    pub fn tenant_entries(&self) -> Vec<(XpuPid, TenantId)> {
        let mut out: Vec<(XpuPid, TenantId)> =
            self.groups.keys().map(|pid| (*pid, self.tenant_of(*pid))).collect();
        out.sort_by_key(|(pid, _)| *pid);
        out
    }

    /// Every `(object, tenant)` pair, sorted by object id.
    pub fn object_tenant_entries(&self) -> Vec<(ObjId, TenantId)> {
        let mut out: Vec<(ObjId, TenantId)> = self
            .objects
            .keys()
            .map(|obj| (*obj, self.object_tenant(*obj).unwrap_or(TenantId::SYSTEM)))
            .collect();
        out.sort_by_key(|(obj, _)| *obj);
        out
    }

    /// All live object ids, sorted.
    pub fn object_ids(&self) -> Vec<ObjId> {
        let mut objs: Vec<ObjId> = self.objects.keys().copied().collect();
        objs.sort();
        objs
    }

    /// All registered process ids (those with a `CAP_Group`), sorted.
    pub fn process_ids(&self) -> Vec<XpuPid> {
        let mut pids: Vec<XpuPid> = self.groups.keys().copied().collect();
        pids.sort();
        pids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::pu::PuId;

    fn pid(pu: u16, local: u32) -> XpuPid {
        XpuPid { pu: PuId(pu), local }
    }

    #[test]
    fn owner_can_grant_and_revoke() {
        let mut t = CapTable::new();
        let owner = pid(0, 1);
        let peer = pid(1, 1);
        t.register_process(owner);
        t.register_process(peer);
        let obj = t.create_object(owner, ObjKind::Ipc).unwrap();

        assert!(t.check(peer, obj, Perm::READ).is_err());
        t.grant(owner, peer, obj, Perm::READ | Perm::WRITE).unwrap();
        t.check(peer, obj, Perm::READ).unwrap();
        t.check(peer, obj, Perm::WRITE).unwrap();
        assert!(t.check(peer, obj, Perm::OWNER).is_err());

        t.revoke(owner, peer, obj, Perm::WRITE).unwrap();
        t.check(peer, obj, Perm::READ).unwrap();
        assert!(t.check(peer, obj, Perm::WRITE).is_err());
    }

    #[test]
    fn non_owner_cannot_grant() {
        let mut t = CapTable::new();
        let owner = pid(0, 1);
        let peer = pid(1, 1);
        let third = pid(2, 1);
        for p in [owner, peer, third] {
            t.register_process(p);
        }
        let obj = t.create_object(owner, ObjKind::Ipc).unwrap();
        t.grant(owner, peer, obj, Perm::READ | Perm::WRITE).unwrap();
        // peer has rw but not owner: granting onwards must fail.
        let err = t.grant(peer, third, obj, Perm::READ).unwrap_err();
        assert!(
            matches!(err, CapError::PermissionDenied { required, .. } if required == Perm::OWNER)
        );
    }

    #[test]
    fn grants_never_escalate_without_owner() {
        // A process can never gain OWNER unless an owner explicitly grants it.
        let mut t = CapTable::new();
        let owner = pid(0, 1);
        let peer = pid(1, 1);
        t.register_process(owner);
        t.register_process(peer);
        let obj = t.create_object(owner, ObjKind::Ipc).unwrap();
        t.grant(owner, peer, obj, Perm::READ).unwrap();
        t.grant(owner, peer, obj, Perm::WRITE).unwrap();
        assert_eq!(t.perm(peer, obj), Perm::READ | Perm::WRITE);
        t.grant(owner, peer, obj, Perm::OWNER).unwrap();
        assert_eq!(t.perm(peer, obj), Perm::ALL);
        // And now the peer can grant onwards (ownership is transferable).
        let third = pid(2, 1);
        t.register_process(third);
        t.grant(peer, third, obj, Perm::READ).unwrap();
    }

    #[test]
    fn destroy_object_revokes_everywhere() {
        let mut t = CapTable::new();
        let owner = pid(0, 1);
        let peer = pid(1, 1);
        t.register_process(owner);
        t.register_process(peer);
        let obj = t.create_object(owner, ObjKind::Ipc).unwrap();
        t.grant(owner, peer, obj, Perm::READ).unwrap();
        t.destroy_object(obj).unwrap();
        assert_eq!(t.check(owner, obj, Perm::READ), Err(CapError::UnknownObject(obj)));
        assert_eq!(t.perm(peer, obj), Perm::NONE);
        assert_eq!(t.destroy_object(obj), Err(CapError::UnknownObject(obj)));
    }

    #[test]
    fn unknown_process_errors() {
        let mut t = CapTable::new();
        let ghost = pid(0, 99);
        assert_eq!(t.create_object(ghost, ObjKind::Ipc), Err(CapError::UnknownProcess(ghost)));
        t.register_process(pid(0, 1));
        let obj = {
            t.register_process(ghost);
            let o = t.create_object(ghost, ObjKind::Ipc).unwrap();
            t.remove_process(ghost);
            o
        };
        assert_eq!(t.check(ghost, obj, Perm::READ), Err(CapError::UnknownProcess(ghost)));
    }

    #[test]
    fn perm_display_and_ops() {
        assert_eq!(Perm::ALL.to_string(), "rwo");
        assert_eq!((Perm::READ | Perm::OWNER).to_string(), "r-o");
        assert_eq!(Perm::NONE.to_string(), "---");
        assert!(Perm::ALL.intersects(Perm::WRITE));
        assert!(!Perm::READ.intersects(Perm::WRITE));
        assert!(Perm::READ.without(Perm::READ).is_empty());
    }

    #[test]
    fn cross_tenant_grant_is_denied_by_construction() {
        let mut t = CapTable::new();
        let alice = pid(0, 1);
        let bob = pid(1, 1);
        t.register_process_for(alice, TenantId(1));
        t.register_process_for(bob, TenantId(2));
        let obj = t.create_object(alice, ObjKind::Ipc).unwrap();
        assert_eq!(t.object_tenant(obj), Some(TenantId(1)), "object inherits creator's tenant");
        // Even the owner cannot hand a capability across the boundary.
        let err = t.grant(alice, bob, obj, Perm::READ).unwrap_err();
        assert_eq!(err, CapError::TenantMismatch { obj, owner: TenantId(1), to: TenantId(2) });
        assert_eq!(t.perm(bob, obj), Perm::NONE, "no partial grant leaked");
        // Same-tenant grants still work.
        let carol = pid(1, 2);
        t.register_process_for(carol, TenantId(1));
        t.grant(alice, carol, obj, Perm::READ).unwrap();
        t.check(carol, obj, Perm::READ).unwrap();
    }

    #[test]
    fn register_is_idempotent_and_processes_never_migrate_tenants() {
        let mut t = CapTable::new();
        let p = pid(0, 1);
        t.register_process_for(p, TenantId(5));
        t.register_process_for(p, TenantId(9));
        assert_eq!(t.tenant_of(p), TenantId(5), "first registration wins");
        t.register_process(p);
        assert_eq!(t.tenant_of(p), TenantId(5));
        // Unregistered pids default to the platform domain.
        assert_eq!(t.tenant_of(pid(7, 7)), TenantId::SYSTEM);
        t.remove_process(p);
        assert_eq!(t.tenant_of(p), TenantId::SYSTEM, "removal clears the tag");
    }

    #[test]
    fn tenant_entries_flatten_deterministically() {
        let mut t = CapTable::new();
        t.register_process_for(pid(1, 1), TenantId(2));
        t.register_process_for(pid(0, 1), TenantId(1));
        let objs: Vec<_> = [pid(0, 1), pid(1, 1)]
            .iter()
            .map(|p| t.create_object(*p, ObjKind::Ipc).unwrap())
            .collect();
        assert_eq!(t.tenant_entries(), vec![(pid(0, 1), TenantId(1)), (pid(1, 1), TenantId(2))]);
        assert_eq!(t.object_tenant_entries(), vec![(objs[0], TenantId(1)), (objs[1], TenantId(2))]);
    }

    #[test]
    fn revoking_unheld_perm_is_a_noop() {
        let mut t = CapTable::new();
        let owner = pid(0, 1);
        let peer = pid(1, 1);
        t.register_process(owner);
        t.register_process(peer);
        let obj = t.create_object(owner, ObjKind::Ipc).unwrap();
        t.revoke(owner, peer, obj, Perm::WRITE).unwrap();
        assert_eq!(t.perm(peer, obj), Perm::NONE);
    }
}
