//! Property tests for data-plane equivalence: every transport configuration
//! — the three pinned XPUcall transports, and the adaptive data plane with
//! descriptor hand-off and doorbell coalescing — must deliver *byte
//! identical* payloads, in the same per-writer order. The adaptive plane is
//! a performance optimization, never a semantic one.

use std::collections::BTreeMap;

use bytes::Bytes;
use hetsim::engine::Simulation;
use hetsim::pu::PuId;
use hetsim::topology::Machine;
use proptest::prelude::*;
use xpu_shim::{Perm, ShimCluster, ShimConfig, XcallTransport};

/// Every data-plane configuration under test: the pinned transports (as the
/// seed behaved: no descriptors, no coalescing) and the adaptive default.
fn all_configs() -> Vec<(&'static str, ShimConfig)> {
    vec![
        ("pinned-base", ShimConfig::pinned_with(XcallTransport::Base, XcallTransport::Base)),
        ("pinned-mpsc", ShimConfig::pinned_with(XcallTransport::Mpsc, XcallTransport::Mpsc)),
        (
            "pinned-poll",
            ShimConfig::pinned_with(XcallTransport::MpscPoll, XcallTransport::MpscPoll),
        ),
        ("adaptive", ShimConfig::default()),
    ]
}

/// Maps a sampled `(class, r)` pair to a payload size: small inline,
/// mid-size inline, or large enough (16 KiB+ on the paper machine) to take
/// the shared-segment descriptor path under the adaptive plane.
fn size_of((class, r): (u8, usize)) -> usize {
    match class % 3 {
        0 => 2 + r % 254,
        1 => 1024 + r % 7168,
        _ => 16_384 + (r * 128) % 114_688,
    }
}

/// A deterministic payload: 2-byte (writer, seq) header plus a patterned
/// body, so reordering or corruption is visible in the bytes themselves.
fn payload(writer: u8, seq: u8, size: usize) -> Bytes {
    let mut bytes = vec![writer ^ seq.wrapping_mul(31); size.max(2)];
    bytes[0] = writer;
    bytes[1] = seq;
    Bytes::from(bytes)
}

/// Runs one simulation: `writers[w]` (on its listed PU) writes its payload
/// sizes in order into a CPU-owned FIFO; returns everything the reader saw,
/// in arrival order.
fn deliver(config: ShimConfig, writers: &[(PuId, Vec<usize>)]) -> Vec<Bytes> {
    let writers = writers.to_vec();
    let cluster = ShimCluster::deploy(Machine::paper_cpu_dpu_server(), config);
    let mut sim = Simulation::new();
    let cl = cluster.clone();
    let handle = sim.spawn("reader", move |ctx| {
        let cpu = cl.shim_on(PuId(0)).unwrap();
        let owner = cpu.attach_process();
        let fifo = cpu.xfifo_init(ctx, owner, "equiv").unwrap();
        let total: usize = writers.iter().map(|(_, sizes)| sizes.len()).sum();
        for (w, (pu, sizes)) in writers.iter().enumerate() {
            let shim = cl.shim_on(*pu).unwrap();
            let pid = shim.attach_process();
            cpu.grant_cap(ctx, owner, pid, fifo.obj(), Perm::WRITE).unwrap();
            let writer = shim.xfifo_connect(ctx, pid, &fifo.uuid().clone()).unwrap();
            let sizes = sizes.clone();
            ctx.spawn(&format!("writer-{w}"), move |wctx| {
                for (seq, &size) in sizes.iter().enumerate() {
                    writer.write(wctx, payload(w as u8, seq as u8, size)).unwrap();
                }
            });
        }
        let mut seen = Vec::with_capacity(total);
        for _ in 0..total {
            seen.push(fifo.read(ctx).unwrap());
        }
        seen
    });
    sim.run().unwrap();
    handle.take_result().unwrap()
}

proptest! {
    /// One DPU writer: every configuration must deliver the exact same
    /// sequence of bytes — same order, same contents, descriptor or not.
    #[test]
    fn single_writer_sees_identical_bytes_under_every_data_plane(
        raw in collection::vec((0u8..3, 0usize..1_000_000), 1..8),
    ) {
        let sizes: Vec<usize> = raw.iter().map(|&p| size_of(p)).collect();
        let writers = vec![(PuId(1), sizes)];
        let reference = deliver(all_configs()[0].1, &writers);
        for (name, config) in all_configs().into_iter().skip(1) {
            let got = deliver(config, &writers);
            prop_assert_eq!(&got, &reference, "{} diverged from pinned-base", name);
        }
    }

    /// Concurrent writers (one local on the CPU, one remote on the DPU):
    /// the multiset of delivered payloads is identical across
    /// configurations, and each writer's messages arrive in its send order.
    #[test]
    fn concurrent_writers_keep_order_and_lose_nothing(
        raw_local in collection::vec((0u8..3, 0usize..1_000_000), 1..6),
        raw_remote in collection::vec((0u8..3, 0usize..1_000_000), 1..6),
    ) {
        let writers = vec![
            (PuId(0), raw_local.iter().map(|&p| size_of(p)).collect::<Vec<_>>()),
            (PuId(1), raw_remote.iter().map(|&p| size_of(p)).collect::<Vec<_>>()),
        ];
        let mut reference: Option<Vec<Bytes>> = None;
        for (name, config) in all_configs() {
            let got = deliver(config, &writers);
            // Per-writer FIFO order: each writer's seq numbers ascend.
            let mut per_writer: BTreeMap<u8, Vec<u8>> = BTreeMap::new();
            for msg in &got {
                per_writer.entry(msg[0]).or_default().push(msg[1]);
            }
            for (w, seqs) in &per_writer {
                let expect: Vec<u8> = (0..seqs.len() as u8).collect();
                prop_assert_eq!(seqs, &expect, "writer {} reordered under {}", w, name);
            }
            // Same multiset of bytes in every configuration.
            let mut sorted = got.clone();
            sorted.sort();
            match &reference {
                None => reference = Some(sorted),
                Some(reference) => {
                    prop_assert_eq!(&sorted, reference, "{} delivered different bytes", name);
                }
            }
        }
    }
}
