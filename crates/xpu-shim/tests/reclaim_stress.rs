//! Reclaim stress regression: killing a PU that hosts 10k resident
//! sandboxes mid-load must not stall the rest of the machine. The sweep is
//! amortized — at most `reclaim_batch` resources per burst, a
//! `reclaim_batch_pause` yield between bursts — so an unrelated invoker on
//! the host keeps completing work *inside* the sweep window, with a bounded
//! gap between consecutive completions. The seed's stop-the-world walk
//! (one burst, no yields) fails both assertions: the sweep collapses to a
//! single batch and nothing interleaves with it.

use hetsim::engine::Simulation;
use hetsim::pu::PuKind;
use hetsim::time::{SimDuration, SimTime};
use hetsim::topology::Machine;
use xpu_shim::{ShimCluster, ShimConfig};

/// Sandboxes resident on the doomed DPU.
const SANDBOXES: u32 = 10_000;
/// One FIFO per this many sandboxes (matching the density bench's load
/// shape) — reclaimed alongside the processes.
const FIFO_STRIDE: u32 = 20;
/// Sweep amortization under test: small batches and a visible pause so the
/// sweep spans real virtual time for the invoker to interleave with.
const BATCH: usize = 64;
const PAUSE: SimDuration = SimDuration::from_micros(50);
/// The invoker's pacing and the bound on its completion gaps during the
/// sweep. One iteration costs ~PACE plus a local FIFO round trip; the
/// amortized sweep must never push a gap past BOUND.
const PACE: SimDuration = SimDuration::from_micros(25);
const BOUND: SimDuration = SimDuration::from_micros(250);

#[test]
fn dead_pu_sweep_never_starves_unrelated_invokes() {
    let mut sim = Simulation::new();
    let machine = Machine::builder().host_cpu().bluefield2_dpus(1).build();
    let config =
        ShimConfig { reclaim_batch: BATCH, reclaim_batch_pause: PAUSE, ..ShimConfig::default() };
    let cluster = ShimCluster::deploy(machine, config);

    // Unrelated load: a host-local process doing a FIFO round trip to
    // itself every PACE, recording each completion instant. It runs long
    // enough to outlast setup plus the whole sweep.
    let cl = cluster.clone();
    let invoker = sim.spawn("unrelated-invoker", move |ctx| {
        let host = cl.machine().host_cpu();
        let shim = cl.shim_on(host).unwrap();
        let pid = shim.attach_process();
        let fifo = shim.xfifo_init(ctx, pid, "unrelated-loop").unwrap();
        let writer = shim.xfifo_connect(ctx, pid, &fifo.uuid().clone()).unwrap();
        let mut completions = Vec::new();
        for i in 0..800u32 {
            writer.write(ctx, bytes::Bytes::from(vec![0u8; 64])).unwrap();
            let msg = fifo.read(ctx).unwrap();
            assert_eq!(msg.len(), 64, "invoke {i} corrupted");
            completions.push(ctx.now());
            ctx.sleep(PACE);
        }
        completions
    });

    // The stressor: load the DPU with 10k sandboxes' worth of processes and
    // FIFOs, kill it mid-load, sweep it.
    let cl = cluster.clone();
    let reclaimer = sim.spawn("loader-reclaimer", move |ctx| {
        let dpu = cl.machine().pus_of_kind(PuKind::Dpu)[0];
        let shim = cl.shim_on(dpu).unwrap();
        let mut fifos = Vec::new();
        for i in 0..SANDBOXES {
            let pid = shim.attach_process();
            if i % FIFO_STRIDE == 0 {
                fifos.push(shim.xfifo_init(ctx, pid, format!("hd-{i}")).unwrap());
            }
        }
        cl.machine().fault_plane().kill_pu(ctx.now(), dpu);
        let batches_before = cl.stats().reclaim_batches;
        let sweep_start = ctx.now();
        let report = cl.reclaim_pu(ctx, dpu);
        let sweep_end = ctx.now();
        assert_eq!(report.pu, dpu);
        assert_eq!(report.processes, SANDBOXES as usize);
        assert_eq!(report.fifos_reclaimed, (SANDBOXES / FIFO_STRIDE) as usize);
        (sweep_start, sweep_end, cl.stats().reclaim_batches - batches_before)
    });

    sim.run().unwrap();
    let completions = invoker.take_result().unwrap();
    let (sweep_start, sweep_end, batches) = reclaimer.take_result().unwrap();

    // The sweep is genuinely amortized: many bursts, spread over at least
    // the inter-burst pauses, not one stop-the-world batch.
    let expected_batches = (u64::from(SANDBOXES + SANDBOXES / FIFO_STRIDE)).div_ceil(BATCH as u64);
    assert!(
        batches >= expected_batches,
        "sweep ran in {batches} batches, expected >= {expected_batches}"
    );
    assert!(
        sweep_end.saturating_duration_since(sweep_start) >= PAUSE * (batches - 1),
        "sweep from {sweep_start:?} to {sweep_end:?} did not yield between its {batches} bursts"
    );

    // Unrelated invokes keep landing inside the sweep window...
    let inside: Vec<SimTime> =
        completions.iter().copied().filter(|&t| t > sweep_start && t < sweep_end).collect();
    assert!(
        inside.len() >= 50,
        "only {} unrelated invokes completed during the {}us sweep",
        inside.len(),
        sweep_end.saturating_duration_since(sweep_start).as_micros_f64()
    );

    // ...and no completion gap inside the window exceeds the bound: the
    // sweep never blocks the invoker for more than a batch's worth of
    // events.
    for pair in inside.windows(2) {
        let gap = pair[1].saturating_duration_since(pair[0]);
        assert!(
            gap <= BOUND,
            "unrelated invoker starved for {}us (bound {}us) during the sweep",
            gap.as_micros_f64(),
            BOUND.as_micros_f64()
        );
    }
}
