//! WFQ property tests (ISSUE 8 satellite): work conservation, throughput
//! proportional to weight under saturation, and the token bucket's hard
//! admission bound — all driven through `proptest` so the fairness claims
//! hold across arbitrary weight mixes and arrival schedules, not one
//! hand-picked example.

use hetsim::time::{SimDuration, SimTime};
use molecule_tenancy::{RateLimit, SfqQueue, TenantId, TokenBucket};
use proptest::prelude::*;

proptest! {
    /// Work conservation: as long as *anything* is queued, `pop` serves it.
    /// Idle tenants never block the queue — their capacity flows to the
    /// backlogged ones, and total dispatches equal total pushes.
    #[test]
    fn work_conservation_idle_tenants_donate_capacity(
        backlogs in proptest::collection::vec((1u32..5, 0usize..20), 1..6),
    ) {
        let mut q = SfqQueue::new();
        let mut pushed = 0usize;
        for (i, &(weight, n)) in backlogs.iter().enumerate() {
            for k in 0..n {
                q.push(TenantId(i as u32 + 1), weight, (i, k));
                pushed += 1;
            }
        }
        // Tenant 99 is registered in spirit but never enqueues: nothing
        // below may stall on its behalf.
        let mut served = 0usize;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t != TenantId(99));
            served += 1;
            prop_assert!(served <= pushed, "served more than was pushed");
        }
        prop_assert_eq!(served, pushed, "queue stalled with work outstanding");
        prop_assert!(q.is_empty());
    }

    /// Under saturation (every tenant backlogged throughout), each
    /// tenant's dispatch share tracks its weight share within 10%.
    #[test]
    fn throughput_proportional_to_weight_within_ten_percent(
        weights in proptest::collection::vec(1u32..8, 2..5),
        rounds in 200usize..400,
    ) {
        let mut q = SfqQueue::new();
        // Deep per-tenant backlogs so no lane ever runs dry mid-measurement.
        for (i, &w) in weights.iter().enumerate() {
            for k in 0..rounds {
                q.push(TenantId(i as u32 + 1), w, k);
            }
        }
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..rounds {
            let (t, _) = q.pop().unwrap();
            counts[t.raw() as usize - 1] += 1;
        }
        let total_weight: u32 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let fair = rounds as f64 * f64::from(w) / f64::from(total_weight);
            let got = counts[i] as f64;
            prop_assert!(
                (got - fair).abs() <= fair * 0.10 + 1.0,
                "tenant {} got {} dispatches, fair share {:.1} (weights {:?})",
                i + 1, counts[i], fair, weights
            );
        }
    }

    /// The token bucket never admits more than `burst + rps * elapsed`
    /// requests over any prefix of any arrival schedule.
    #[test]
    fn token_bucket_never_admits_above_configured_rate(
        rps in 1.0f64..500.0,
        burst in 1.0f64..32.0,
        gaps_us in proptest::collection::vec(0u64..20_000, 1..300),
    ) {
        let mut bucket = TokenBucket::new(RateLimit { rps, burst });
        let mut now = SimTime::ZERO;
        let mut admitted = 0u64;
        for gap in gaps_us {
            now += SimDuration::from_micros(gap);
            if bucket.try_admit(now) {
                admitted += 1;
            }
            let elapsed_secs = now.as_nanos() as f64 / 1e9;
            let bound = burst + rps * elapsed_secs;
            prop_assert!(
                (admitted as f64) <= bound + 1e-6,
                "admitted {} > bound {:.3} at {:?} (rps {}, burst {})",
                admitted, bound, now, rps, burst
            );
        }
    }
}

/// Deterministic end-to-end fairness check at a fixed 3:1 weight ratio —
/// the exact configuration the `fig_tenancy` antagonist bench runs.
#[test]
fn three_to_one_weights_yield_three_to_one_service() {
    let mut q = SfqQueue::new();
    for k in 0..400 {
        q.push(TenantId(1), 3, k);
        q.push(TenantId(2), 1, k);
    }
    let mut heavy = 0;
    for _ in 0..200 {
        if q.pop().unwrap().0 == TenantId(1) {
            heavy += 1;
        }
    }
    let share = f64::from(heavy) / 200.0;
    assert!((share - 0.75).abs() <= 0.05, "weight-3 tenant took {share} of service");
}
