//! SLO classes: what a function promises its caller.

use hetsim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A function's service-level objective class.
///
/// The placer and the run queues treat the two classes asymmetrically:
/// latency-sensitive work pays extra for cold accelerators and deep queues
/// in the cost model (and derives an admission deadline from its target),
/// while batch work absorbs them — and is the first thing shed when a
/// queue must make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloClass {
    /// Latency-sensitive: complete within `target` of submission.
    Latency(SimDuration),
    /// Throughput-oriented: no per-request deadline, sheds first.
    Batch,
}

impl SloClass {
    /// True for [`SloClass::Batch`].
    pub fn is_batch(self) -> bool {
        matches!(self, SloClass::Batch)
    }

    /// The latency target, if this is a latency class.
    pub fn latency_target(self) -> Option<SimDuration> {
        match self {
            SloClass::Latency(t) => Some(t),
            SloClass::Batch => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_distinguish_the_classes() {
        let lat = SloClass::Latency(SimDuration::from_millis(250));
        assert!(!lat.is_batch());
        assert_eq!(lat.latency_target(), Some(SimDuration::from_millis(250)));
        assert!(SloClass::Batch.is_batch());
        assert_eq!(SloClass::Batch.latency_target(), None);
    }
}
