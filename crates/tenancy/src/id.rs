//! The tenant identity — the isolation domain everything else keys on.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies one tenant (customer / isolation domain).
///
/// Tenant `0` is [`TenantId::SYSTEM`]: the platform's own domain, used by
/// runtime daemons and by every call site written before tenancy existed.
/// A single-tenant deployment therefore behaves exactly as it did without
/// this crate — everything lives in one domain and no check can fire.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The platform's own domain (tenant `0`).
    pub const SYSTEM: TenantId = TenantId(0);

    /// The raw numeric id (the label value telemetry metrics carry).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// True for the platform domain.
    pub fn is_system(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_is_the_default_domain() {
        assert_eq!(TenantId::default(), TenantId::SYSTEM);
        assert!(TenantId::SYSTEM.is_system());
        assert!(!TenantId(3).is_system());
        assert_eq!(TenantId(3).to_string(), "t3");
        assert_eq!(TenantId(3).raw(), 3);
    }
}
