//! Start-time fair queueing (SFQ) across per-tenant sub-queues.
//!
//! Classic SFQ (Goyal et al.): every enqueued item gets a *start tag*
//! `S = max(V, F_tenant)` where `V` is the queue's virtual time and
//! `F_tenant` the tenant's last finish tag; the item's finish tag is
//! `F = S + quantum / weight`, which becomes the tenant's new `F_tenant`.
//! Dispatch always picks the queued head with the smallest start tag and
//! advances `V` to it. Two properties fall out:
//!
//! * **weighted fairness** — a backlogged tenant's finish tags advance at
//!   `quantum / weight` per item, so over any saturated interval its
//!   dispatch count is proportional to its weight;
//! * **work conservation** — an idle tenant has no queued head, so its
//!   unused share flows to whoever is backlogged; when it returns, its
//!   start tag is re-based at `max(V, F)`, which forgives the idle period
//!   instead of letting it bank credit.
//!
//! The structure is a pure deterministic container (ties break on the
//! smaller [`TenantId`]) — `molecule-sched`'s `RunQueue` embeds one per
//! priority lane, and the property tests in `tests/properties.rs` drive it
//! directly.

use std::collections::{BTreeMap, VecDeque};

use crate::id::TenantId;

/// Virtual-time units one weight-1 dispatch accounts for. Large enough
/// that integer division by any realistic weight keeps fine resolution.
const QUANTUM: u64 = 1 << 20;

#[derive(Debug, Clone)]
struct Item<T> {
    start: u64,
    value: T,
}

#[derive(Debug, Clone)]
struct Lane<T> {
    last_finish: u64,
    items: VecDeque<Item<T>>,
}

impl<T> Default for Lane<T> {
    fn default() -> Self {
        Lane { last_finish: 0, items: VecDeque::new() }
    }
}

/// A weighted fair queue over per-tenant sub-queues.
#[derive(Debug, Clone)]
pub struct SfqQueue<T> {
    vtime: u64,
    lanes: BTreeMap<TenantId, Lane<T>>,
    len: usize,
}

impl<T> Default for SfqQueue<T> {
    fn default() -> Self {
        SfqQueue::new()
    }
}

impl<T> SfqQueue<T> {
    /// An empty queue at virtual time zero.
    pub fn new() -> SfqQueue<T> {
        SfqQueue { vtime: 0, lanes: BTreeMap::new(), len: 0 }
    }

    /// Total queued items across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items per tenant, sorted by tenant id.
    pub fn queued_by_tenant(&self) -> Vec<(TenantId, usize)> {
        self.lanes
            .iter()
            .filter(|(_, l)| !l.items.is_empty())
            .map(|(t, l)| (*t, l.items.len()))
            .collect()
    }

    /// Enqueues `value` for `tenant` with `weight` (clamped to at least 1).
    pub fn push(&mut self, tenant: TenantId, weight: u32, value: T) {
        let lane = self.lanes.entry(tenant).or_default();
        let start = self.vtime.max(lane.last_finish);
        lane.last_finish = start + QUANTUM / u64::from(weight.max(1));
        lane.items.push_back(Item { start, value });
        self.len += 1;
    }

    /// Dispatches the queued head with the smallest start tag (ties break
    /// on the smaller tenant id) and advances virtual time to it.
    pub fn pop(&mut self) -> Option<(TenantId, T)> {
        self.pop_where(|_| true)
    }

    /// As [`pop`](Self::pop), but only considers tenants `allow` accepts.
    /// Returns `None` when no allowed tenant has queued work — callers
    /// implementing share caps fall back to an unfiltered `pop` so the
    /// queue stays work-conserving.
    pub fn pop_where(&mut self, mut allow: impl FnMut(TenantId) -> bool) -> Option<(TenantId, T)> {
        let tenant = self
            .lanes
            .iter()
            .filter(|(t, l)| !l.items.is_empty() && allow(**t))
            .min_by_key(|(t, l)| (l.items.front().expect("non-empty").start, **t))
            .map(|(t, _)| *t)?;
        let lane = self.lanes.get_mut(&tenant).expect("lane exists");
        let item = lane.items.pop_front().expect("non-empty");
        self.len -= 1;
        self.vtime = self.vtime.max(item.start);
        // Drop fully-caught-up idle lanes so the map stays bounded by the
        // set of *recently active* tenants. A lane whose finish tag is
        // still ahead of virtual time keeps its debt recorded.
        if lane.items.is_empty() && lane.last_finish <= self.vtime {
            self.lanes.remove(&tenant);
        }
        Some((tenant, item.value))
    }

    /// Removes and returns every queued item matching `pred`, in per-lane
    /// FIFO order (tenants in id order). Remaining items keep their tags.
    pub fn remove_where(
        &mut self,
        mut pred: impl FnMut(TenantId, &T) -> bool,
    ) -> Vec<(TenantId, T)> {
        let mut out = Vec::new();
        for (&tenant, lane) in self.lanes.iter_mut() {
            let mut keep = VecDeque::with_capacity(lane.items.len());
            for item in lane.items.drain(..) {
                if pred(tenant, &item.value) {
                    out.push((tenant, item.value));
                } else {
                    keep.push_back(item);
                }
            }
            lane.items = keep;
        }
        self.len -= out.len();
        let vtime = self.vtime;
        self.lanes.retain(|_, l| !l.items.is_empty() || l.last_finish > vtime);
        out
    }

    /// Immutable walk over every queued item, per-lane FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = (TenantId, &T)> {
        self.lanes.iter().flat_map(|(t, l)| l.items.iter().map(move |i| (*t, &i.value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tenant_is_fifo() {
        let mut q = SfqQueue::new();
        for i in 0..5 {
            q.push(TenantId::SYSTEM, 1, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn equal_weights_interleave_backlogged_tenants() {
        let mut q = SfqQueue::new();
        for i in 0..4 {
            q.push(TenantId(1), 1, format!("a{i}"));
        }
        for i in 0..4 {
            q.push(TenantId(2), 1, format!("b{i}"));
        }
        let order: Vec<TenantId> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        // Not eight of tenant 1 then eight of tenant 2: the lanes alternate.
        assert_eq!(order, [1, 2, 1, 2, 1, 2, 1, 2].map(TenantId));
    }

    #[test]
    fn dispatch_count_tracks_weight_under_saturation() {
        let mut q = SfqQueue::new();
        for i in 0..90 {
            q.push(TenantId(1), 3, i);
            q.push(TenantId(2), 1, i);
        }
        let mut counts = [0u32; 3];
        for _ in 0..40 {
            let (t, _) = q.pop().unwrap();
            counts[t.raw() as usize] += 1;
        }
        // Weight 3 vs 1: of the first 40 dispatches, ~30 go to tenant 1.
        assert!((28..=32).contains(&counts[1]), "tenant 1 got {}", counts[1]);
    }

    #[test]
    fn idle_tenants_donate_and_rejoin_without_banked_credit() {
        let mut q = SfqQueue::new();
        for i in 0..10 {
            q.push(TenantId(1), 1, i);
        }
        // Tenant 2 is idle: tenant 1 takes everything (work conservation).
        for _ in 0..6 {
            assert_eq!(q.pop().unwrap().0, TenantId(1));
        }
        // Tenant 2 arrives late: it competes from current virtual time, it
        // does not pre-empt with six dispatches of banked credit.
        q.push(TenantId(2), 1, 100);
        let next_two: Vec<TenantId> = (0..2).map(|_| q.pop().unwrap().0).collect();
        assert!(next_two.contains(&TenantId(2)), "late tenant gets its share promptly");
        assert!(next_two.contains(&TenantId(1)), "but does not monopolize");
    }

    #[test]
    fn pop_where_filters_and_remove_where_preserves_the_rest() {
        let mut q = SfqQueue::new();
        q.push(TenantId(1), 1, 10);
        q.push(TenantId(2), 1, 20);
        q.push(TenantId(2), 1, 21);
        let (t, v) = q.pop_where(|t| t == TenantId(2)).unwrap();
        assert_eq!((t, v), (TenantId(2), 20));
        assert!(q.pop_where(|t| t == TenantId(9)).is_none());
        let removed = q.remove_where(|_, v| *v >= 20);
        assert_eq!(removed, vec![(TenantId(2), 21)]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.queued_by_tenant(), vec![(TenantId(1), 1)]);
        assert_eq!(q.pop(), Some((TenantId(1), 10)));
        assert!(q.is_empty());
    }
}
