//! Per-tenant scheduling policy: weights and admission rate limits.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::id::TenantId;

/// An admission rate limit: a token bucket refilled at `rps` with capacity
/// `burst` (see [`TokenBucket`](crate::TokenBucket)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained admissions per virtual second.
    pub rps: f64,
    /// Bucket capacity: how many admissions may arrive back-to-back.
    pub burst: f64,
}

impl RateLimit {
    /// A limit of `rps` sustained with a one-second burst allowance.
    pub fn per_sec(rps: f64) -> RateLimit {
        RateLimit { rps, burst: rps.max(1.0) }
    }
}

/// One tenant's scheduling contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// WFQ weight: a backlogged tenant receives capacity proportional to
    /// its weight. Zero is clamped to one.
    pub weight: u32,
    /// Optional admission rate limit enforced at the gateway, before any
    /// queue is touched. `None` means unlimited.
    pub rate_limit: Option<RateLimit>,
}

impl Default for TenantSpec {
    fn default() -> Self {
        TenantSpec { weight: 1, rate_limit: None }
    }
}

/// The shared tenant table: gateway admission, run-queue arbitration and
/// the bench harnesses all read the same specs. Unconfigured tenants get
/// [`TenantSpec::default`] (weight 1, unlimited) so a deployment that
/// never registers a tenant behaves exactly like the pre-tenancy stack.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    specs: Mutex<HashMap<TenantId, TenantSpec>>,
}

impl TenantRegistry {
    /// An empty registry (every tenant at the default spec).
    pub fn new() -> TenantRegistry {
        TenantRegistry::default()
    }

    /// Sets (or replaces) one tenant's spec.
    pub fn set(&self, tenant: TenantId, spec: TenantSpec) {
        self.specs.lock().insert(tenant, spec);
    }

    /// The tenant's spec, defaulted when never configured.
    pub fn spec(&self, tenant: TenantId) -> TenantSpec {
        self.specs.lock().get(&tenant).copied().unwrap_or_default()
    }

    /// The tenant's WFQ weight (clamped to at least 1).
    pub fn weight(&self, tenant: TenantId) -> u32 {
        self.spec(tenant).weight.max(1)
    }

    /// Every explicitly configured tenant, sorted by id.
    pub fn configured(&self) -> Vec<(TenantId, TenantSpec)> {
        let mut out: Vec<_> = self.specs.lock().iter().map(|(t, s)| (*t, *s)).collect();
        out.sort_by_key(|(t, _)| *t);
        out
    }

    /// Sum of weights over `tenants` (each clamped to at least 1) — the
    /// denominator of a fair-share computation.
    pub fn total_weight(&self, tenants: impl IntoIterator<Item = TenantId>) -> u64 {
        tenants.into_iter().map(|t| u64::from(self.weight(t))).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconfigured_tenants_default_to_weight_one_unlimited() {
        let reg = TenantRegistry::new();
        assert_eq!(reg.spec(TenantId(9)), TenantSpec::default());
        assert_eq!(reg.weight(TenantId(9)), 1);
        reg.set(TenantId(2), TenantSpec { weight: 0, rate_limit: None });
        assert_eq!(reg.weight(TenantId(2)), 1, "zero weight clamps to one");
    }

    #[test]
    fn total_weight_sums_clamped_weights() {
        let reg = TenantRegistry::new();
        reg.set(TenantId(1), TenantSpec { weight: 3, rate_limit: None });
        let total = reg.total_weight([TenantId(1), TenantId(2)]);
        assert_eq!(total, 4);
        assert_eq!(reg.configured().len(), 1);
    }

    #[test]
    fn per_sec_limit_has_at_least_one_token_of_burst() {
        let lim = RateLimit::per_sec(0.5);
        assert_eq!(lim.burst, 1.0);
        assert_eq!(RateLimit::per_sec(20.0).burst, 20.0);
    }
}
