//! A deterministic virtual-time token bucket.

use hetsim::time::SimTime;

use crate::registry::RateLimit;

/// Token-bucket admission control on the simulation's virtual clock.
///
/// The bucket starts full (`burst` tokens), refills continuously at `rps`
/// tokens per virtual second, and each admission spends one token. Because
/// it reads only [`SimTime`], the same arrival schedule always produces
/// the same admit/deny sequence — the property tests assert the hard upper
/// bound `admitted <= burst + rps * elapsed`.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    limit: RateLimit,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A full bucket for `limit`.
    pub fn new(limit: RateLimit) -> TokenBucket {
        TokenBucket { limit, tokens: limit.burst.max(1.0), last: SimTime::ZERO }
    }

    /// The configured limit.
    pub fn limit(&self) -> RateLimit {
        self.limit
    }

    /// Attempts one admission at `now`: refills for the elapsed virtual
    /// time, then spends a token if one is available.
    pub fn try_admit(&mut self, now: SimTime) -> bool {
        let elapsed = now.saturating_duration_since(self.last).as_nanos() as f64 / 1e9;
        self.last = self.last.max(now);
        let cap = self.limit.burst.max(1.0);
        self.tokens = (self.tokens + elapsed * self.limit.rps).min(cap);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::time::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn burst_then_refill_at_the_configured_rate() {
        // 10 rps, burst 2: two immediate admissions, then one per 100ms.
        let mut b = TokenBucket::new(RateLimit { rps: 10.0, burst: 2.0 });
        assert!(b.try_admit(at(0)));
        assert!(b.try_admit(at(0)));
        assert!(!b.try_admit(at(0)), "burst exhausted");
        assert!(!b.try_admit(at(50)), "half a token refilled");
        assert!(b.try_admit(at(100)));
        assert!(!b.try_admit(at(100)));
    }

    #[test]
    fn refill_never_exceeds_burst() {
        let mut b = TokenBucket::new(RateLimit { rps: 1000.0, burst: 3.0 });
        // A long idle period must not bank more than `burst` tokens.
        for _ in 0..3 {
            assert!(b.try_admit(at(10_000)));
        }
        assert!(!b.try_admit(at(10_000)));
    }

    #[test]
    fn same_schedule_same_decisions() {
        let run = || {
            let mut b = TokenBucket::new(RateLimit::per_sec(100.0));
            (0..500).map(|i| b.try_admit(at(i * 3))).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
