#![warn(missing_docs)]

//! # molecule-tenancy — tenants as first-class citizens
//!
//! The paper's capability system is global: any function can be granted any
//! capability, and the run queues arbitrate purely by priority lane, so one
//! hot customer can starve everyone sharing the rack. This crate supplies
//! the tenant primitives the rest of the stack threads through:
//!
//! - [`TenantId`] — the isolation domain. Every `CAP_Group`, distributed
//!   object, FIFO, segment descriptor and state region in `xpu-shim`
//!   carries one; cross-tenant grants are denied by construction.
//! - [`TenantRegistry`] / [`TenantSpec`] — per-tenant scheduling weight and
//!   optional admission rate limit, shared by the gateway and its queues.
//! - [`SfqQueue`] — start-time fair queueing (SFQ) across per-tenant
//!   sub-queues: virtual-time arbitration gives each backlogged tenant
//!   throughput proportional to its weight while idle tenants donate their
//!   share (work conservation).
//! - [`TokenBucket`] — deterministic virtual-time token bucket enforcing a
//!   tenant's requests-per-second cap at the gateway, before admission.
//! - [`SloClass`] — `Latency(target)` or `Batch`: the placer steers
//!   latency-sensitive work away from cold accelerators and deep queues,
//!   and shedding drops batch work first.
//!
//! Everything here is pure deterministic data structure driven by the
//! simulation's virtual clock — no host time, no host randomness — so the
//! WFQ property tests and the simcheck tenant-isolation oracle can assert
//! exact fairness and isolation bounds.

pub mod bucket;
pub mod registry;
pub mod sfq;
pub mod slo;

mod id;

pub use bucket::TokenBucket;
pub use id::TenantId;
pub use registry::{RateLimit, TenantRegistry, TenantSpec};
pub use sfq::SfqQueue;
pub use slo::SloClass;
