//! Delta-debugging shrinkers for schedules and fault plans.
//!
//! When an oracle trips, the raw repro is a choice list hundreds of entries
//! long plus whatever chaos plan the scenario ran under. Both shrink the
//! same way: repeatedly try a smaller candidate, keep it if the violation
//! still reproduces, stop at a fixpoint. The `violates` predicate re-runs
//! the whole scenario per candidate, so shrinking costs runs — but repros
//! routinely collapse from hundreds of choices to a handful.

use molecule_chaos::FaultPlan;

/// Minimizes a schedule choice list while `violates` keeps returning true.
///
/// Two reduction moves, applied to fixpoint:
///
/// 1. *Truncate*: drop everything past the last nonzero entry (a replay
///    defaults to 0 beyond the list, so trailing zeros are dead weight).
/// 2. *Zero*: set each nonzero entry to 0, one at a time — every zeroed
///    entry is one fewer divergence from the default schedule.
///
/// The result is the canonical "minimal repro" form: a (usually short)
/// prefix whose nonzero entries are each *necessary* to trip the oracle.
pub fn shrink_choices<F>(mut choices: Vec<u32>, mut violates: F) -> Vec<u32>
where
    F: FnMut(&[u32]) -> bool,
{
    truncate_trailing_zeros(&mut choices);
    loop {
        let mut progressed = false;
        // Zero single nonzero entries, scanning from the end (later choices
        // tend to be incidental).
        let mut i = choices.len();
        while i > 0 {
            i -= 1;
            if choices[i] == 0 {
                continue;
            }
            let mut candidate = choices.clone();
            candidate[i] = 0;
            truncate_trailing_zeros(&mut candidate);
            if violates(&candidate) {
                choices = candidate;
                progressed = true;
                i = i.min(choices.len());
            }
        }
        if !progressed {
            break;
        }
    }
    choices
}

fn truncate_trailing_zeros(choices: &mut Vec<u32>) {
    while choices.last() == Some(&0) {
        choices.pop();
    }
}

/// Number of nonzero entries — the "how far from the default schedule"
/// measure a minimal repro is judged by.
pub fn nonzero_choices(choices: &[u32]) -> usize {
    choices.iter().filter(|&&c| c != 0).count()
}

/// Minimizes a chaos plan by removing one event at a time while `violates`
/// keeps returning true, to fixpoint. Events that survive are each
/// necessary for the repro.
pub fn shrink_plan<F>(mut plan: FaultPlan, mut violates: F) -> FaultPlan
where
    F: FnMut(&FaultPlan) -> bool,
{
    loop {
        let mut progressed = false;
        let mut idx = plan.events().len();
        while idx > 0 {
            idx -= 1;
            let candidate = plan.without_event(idx);
            if violates(&candidate) {
                plan = candidate;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::time::SimTime;
    use molecule_chaos::FaultAction;

    #[test]
    fn shrinks_to_the_necessary_choice() {
        // Violation iff entry 3 is nonzero: everything else must shrink away.
        let start = vec![1, 0, 2, 5, 0, 1, 0];
        let min = shrink_choices(start, |c| c.get(3).copied().unwrap_or(0) != 0);
        assert_eq!(min, vec![0, 0, 0, 5]);
        assert_eq!(nonzero_choices(&min), 1);
    }

    #[test]
    fn shrinks_to_empty_when_violation_is_schedule_independent() {
        let min = shrink_choices(vec![3, 1, 2], |_| true);
        assert!(min.is_empty());
    }

    #[test]
    fn keeps_jointly_necessary_choices() {
        let start = vec![1, 1, 1];
        let min = shrink_choices(start, |c| {
            c.first().copied().unwrap_or(0) != 0 && c.get(2).copied().unwrap_or(0) != 0
        });
        assert_eq!(min, vec![1, 0, 1]);
    }

    #[test]
    fn plan_shrinks_to_the_necessary_event() {
        let plan = FaultPlan::new(9)
            .with(SimTime::from_nanos(10), FaultAction::KillPu(hetsim::pu::PuId(1)))
            .with(SimTime::from_nanos(20), FaultAction::KillPu(hetsim::pu::PuId(2)))
            .with(SimTime::from_nanos(30), FaultAction::KillPu(hetsim::pu::PuId(3)));
        let min = shrink_plan(plan, |p| {
            p.events().iter().any(|e| matches!(e.action, FaultAction::KillPu(pu) if pu.0 == 2))
        });
        assert_eq!(min.events().len(), 1);
        assert_eq!(min.seed(), 9, "shrinking preserves the sampling seed");
    }
}
