//! Invariant oracles over the cross-PU control plane.
//!
//! The snapshot-based checks run against [`ClusterSnapshot`] — either after
//! every engine step (install via [`ClusterOracle::install`], which uses the
//! engine's step observer: no engine lock held, no simulated process
//! mid-syscall) or once at quiescence. Evidence-based checks
//! ([`FifoOrderTracker`]) are fed by the scenario's own processes as
//! messages are consumed.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use hetsim::engine::Simulation;
use xpu_shim::cap::Perm;
use xpu_shim::{ClusterSnapshot, ObjId, ShimCluster, TenantId, XpuPid};

/// Which invariants [`check_snapshot`] enforces.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Require at most one OWNER capability per object. True for scenarios
    /// that never grant `Perm::OWNER` onwards (ownership *is* transferable
    /// and shareable by design — `grant(.., Perm::OWNER)` is legal — so
    /// scenarios that exercise ownership hand-off turn this off).
    pub owner_partition: bool,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig { owner_partition: true }
    }
}

/// Checks every snapshot invariant, returning the first violation:
///
/// * every capability references a live object (no dangling grants after
///   `revoke_cap` / `close` / `reclaim_pu`);
/// * tenant isolation: every capability's holder and object live in the
///   same tenant domain, and every live FIFO's owner / region's master
///   shares its guard object's tenant (no schedule leaks a handle across
///   tenants through spawn, failover or reclaim);
/// * (optional) object ownership is a partition — at most one OWNER each;
/// * every live FIFO's guard object is live, and its owner — while still a
///   registered process — holds OWNER (a dead owner mid-`reclaim_pu` is a
///   legal transient);
/// * every live shared-state region satisfies the same guard/owner/UUID
///   discipline as a FIFO (region caps never leak across reclaim);
/// * no UUID is both live and reclaimed, and none is reclaimed while its
///   free is still parked in the lazy queue (exactly-once reclamation);
/// * the `reclaimed_uuids` counter equals the reclaimed set's size;
/// * every parked zero-copy segment slot belongs to a live FIFO or a live
///   region (no leaked slots after close/reclaim).
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub fn check_snapshot(snap: &ClusterSnapshot, cfg: &OracleConfig) -> Result<(), String> {
    let objects: HashSet<ObjId> = snap.objects.iter().copied().collect();
    let proc_tenant: HashMap<XpuPid, TenantId> = snap.tenants.iter().copied().collect();
    let obj_tenant: HashMap<ObjId, TenantId> = snap.object_tenants.iter().copied().collect();
    let tenant_of = |pid: XpuPid| proc_tenant.get(&pid).copied().unwrap_or(TenantId::SYSTEM);
    let tenant_of_obj = |obj: ObjId| obj_tenant.get(&obj).copied().unwrap_or(TenantId::SYSTEM);
    let mut owners: HashMap<ObjId, XpuPid> = HashMap::new();
    for &(pid, obj, perm) in &snap.caps {
        if !objects.contains(&obj) {
            return Err(format!("dangling capability: {pid} holds {perm} on destroyed {obj}"));
        }
        // Tenant isolation: a capability never crosses a tenant boundary.
        // `grant` refuses cross-tenant handouts by construction, so any
        // violation here means a schedule leaked a handle through spawn,
        // failover or reclaim.
        let (pt, ot) = (tenant_of(pid), tenant_of_obj(obj));
        if pt != ot {
            return Err(format!(
                "tenant isolation violated: {pid} ({pt}) holds {perm} on {obj} owned by {ot}"
            ));
        }
        if cfg.owner_partition && perm.contains(Perm::OWNER) {
            if let Some(prev) = owners.insert(obj, pid) {
                return Err(format!("ownership not a partition: {obj} owned by {prev} and {pid}"));
            }
        }
    }
    let live: HashSet<_> = snap.fifos.iter().map(|f| &f.uuid).collect();
    let reclaimed: HashSet<_> = snap.reclaimed.iter().collect();
    for f in &snap.fifos {
        if !objects.contains(&f.obj) {
            return Err(format!("live FIFO {} guarded by destroyed object {}", f.uuid, f.obj));
        }
        // Only demand OWNER while the owner is still a registered process:
        // `reclaim_pu` tears down dead pids' CAP groups first, then yields
        // per-UUID while their FIFOs are still being reclaimed — that
        // transient (dead owner, live FIFO) is legal.
        if snap.procs.binary_search(&f.owner).is_ok() {
            let owner_ok = snap
                .caps
                .iter()
                .any(|&(p, o, perm)| p == f.owner && o == f.obj && perm.contains(Perm::OWNER));
            if !owner_ok {
                return Err(format!("FIFO {} owner {} lost OWNER on {}", f.uuid, f.owner, f.obj));
            }
            if tenant_of(f.owner) != tenant_of_obj(f.obj) {
                return Err(format!(
                    "FIFO {} crossed tenants: owner {} is {} but {} is {}",
                    f.uuid,
                    f.owner,
                    tenant_of(f.owner),
                    f.obj,
                    tenant_of_obj(f.obj)
                ));
            }
        }
        if reclaimed.contains(&f.uuid) {
            return Err(format!("UUID {} is both live and reclaimed", f.uuid));
        }
    }
    for r in &snap.regions {
        if !objects.contains(&r.obj) {
            return Err(format!("live region {} guarded by destroyed object {}", r.uuid, r.obj));
        }
        // Same dead-owner transient tolerance as the FIFO check above:
        // `reclaim_pu` drops the master's CAP group before the region sweep
        // re-masters or parks its regions.
        if snap.procs.binary_search(&r.owner).is_ok() {
            let owner_ok = snap
                .caps
                .iter()
                .any(|&(p, o, perm)| p == r.owner && o == r.obj && perm.contains(Perm::OWNER));
            if !owner_ok {
                return Err(format!(
                    "region {} master {} lost OWNER on {}",
                    r.uuid, r.owner, r.obj
                ));
            }
            if tenant_of(r.owner) != tenant_of_obj(r.obj) {
                return Err(format!(
                    "region {} crossed tenants: master {} is {} but {} is {}",
                    r.uuid,
                    r.owner,
                    tenant_of(r.owner),
                    r.obj,
                    tenant_of_obj(r.obj)
                ));
            }
        }
        if reclaimed.contains(&r.uuid) {
            return Err(format!("region UUID {} is both live and reclaimed", r.uuid));
        }
    }
    let live_regions: HashSet<_> = snap.regions.iter().map(|r| &r.uuid).collect();
    for uuid in &snap.lazy_pending {
        if live.contains(uuid) || live_regions.contains(uuid) {
            return Err(format!("UUID {uuid} live while its free is parked in the lazy queue"));
        }
    }
    if snap.reclaimed_count != snap.reclaimed.len() as u64 {
        return Err(format!(
            "reclamation not exactly-once: counter {} vs {} reclaimed UUIDs",
            snap.reclaimed_count,
            snap.reclaimed.len()
        ));
    }
    for (uuid, n) in &snap.parked_segments {
        if !live.contains(uuid) && !live_regions.contains(uuid) {
            return Err(format!("{n} leaked segment slot(s) parked for dead UUID {uuid}"));
        }
    }
    Ok(())
}

/// A per-step cluster watchdog: snapshots the cluster after every engine
/// event and records the first invariant violation. Ask it for the final
/// [`verdict`](Self::verdict) from the scenario's check closure.
pub struct ClusterOracle {
    cluster: ShimCluster,
    cfg: OracleConfig,
    violation: Rc<RefCell<Option<String>>>,
}

impl ClusterOracle {
    /// Installs the oracle as `sim`'s step observer (replacing any previous
    /// observer) and returns the handle the check closure consults.
    pub fn install(
        sim: &mut Simulation,
        cluster: &ShimCluster,
        cfg: OracleConfig,
    ) -> ClusterOracle {
        let violation = Rc::new(RefCell::new(None));
        let watched = cluster.clone();
        let sink = Rc::clone(&violation);
        sim.set_step_observer(Box::new(move || {
            if sink.borrow().is_some() {
                return;
            }
            if let Err(v) = check_snapshot(&watched.snapshot(), &cfg) {
                *sink.borrow_mut() = Some(v);
            }
        }));
        ClusterOracle { cluster: cluster.clone(), cfg, violation }
    }

    /// The verdict: the first per-step violation if one was recorded, else a
    /// final quiescence check. `require_empty_arena` additionally demands
    /// zero parked segment slots (every descriptor resolved or reclaimed) —
    /// pass true when the scenario drains all its FIFOs.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a human-readable message.
    pub fn verdict(&self, require_empty_arena: bool) -> Result<(), String> {
        if let Some(v) = self.violation.borrow().as_ref() {
            return Err(format!("[step] {v}"));
        }
        let snap = self.cluster.snapshot();
        check_snapshot(&snap, &self.cfg).map_err(|v| format!("[quiescence] {v}"))?;
        if require_empty_arena && snap.outstanding_segments != 0 {
            return Err(format!(
                "[quiescence] arena holds {} unresolved slot(s): {:?}",
                snap.outstanding_segments, snap.parked_segments
            ));
        }
        Ok(())
    }
}

/// Per-writer FIFO-order oracle fed with `(writer, seqno)` pairs in delivery
/// order. Writers number their messages 0, 1, 2, …; the tracker demands
/// that each writer's *first occurrences* appear in strictly increasing
/// seqno order. Losses (missing seqnos) and duplicates (repeats of an
/// already-seen seqno, in any position) are tolerated — the fault plane
/// injects both legally — but an unseen seqno arriving before a smaller
/// unseen one is a reorder, which the FIFO contract forbids.
#[derive(Debug, Default)]
pub struct FifoOrderTracker {
    last_first: HashMap<u64, u64>,
    seen: HashSet<(u64, u64)>,
    violation: Option<String>,
}

impl FifoOrderTracker {
    /// An empty tracker.
    pub fn new() -> FifoOrderTracker {
        FifoOrderTracker::default()
    }

    /// Records that `writer`'s message `seq` was just consumed.
    pub fn note(&mut self, writer: u64, seq: u64) {
        if self.violation.is_some() || !self.seen.insert((writer, seq)) {
            return; // already failed, or a tolerated duplicate
        }
        match self.last_first.get(&writer) {
            Some(&prev) if seq <= prev => {
                self.violation = Some(format!(
                    "per-writer FIFO order violated: writer {writer} seq {seq} first seen after seq {prev}"
                ));
            }
            _ => {
                self.last_first.insert(writer, seq);
            }
        }
    }

    /// The verdict so far.
    ///
    /// # Errors
    ///
    /// The first recorded reorder.
    pub fn verdict(&self) -> Result<(), String> {
        match &self.violation {
            Some(v) => Err(v.clone()),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_tracker_tolerates_loss_and_dups_but_not_reorders() {
        let mut t = FifoOrderTracker::new();
        for (w, s) in [(1, 0), (2, 0), (1, 2), (1, 1), (2, 1)] {
            t.note(w, s); // writer 1: 0, then 2 (loss of 1 ok) — but then 1 surfaces late: reorder
        }
        assert!(t.verdict().unwrap_err().contains("writer 1 seq 1"));

        let mut ok = FifoOrderTracker::new();
        for (w, s) in [(1, 0), (1, 0), (1, 1), (2, 5), (1, 3), (1, 1), (2, 9)] {
            ok.note(w, s); // dups of already-seen seqnos are fine anywhere
        }
        ok.verdict().unwrap();
    }
}
