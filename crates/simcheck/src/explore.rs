//! The schedule-exploration driver.
//!
//! [`explore`] runs one scenario body under many distinct interleavings by
//! varying only the engine's same-instant tie-break:
//!
//! * **Trial 0** replays the empty choice list — the default `(time, seq)`
//!   schedule, i.e. exactly what a plain `cargo test` run would execute.
//! * **Bounded DFS**: every replay-driven run's choice log spawns
//!   alternative prefixes (`chosen[..i] + [alt]` for each tie `i` at or past
//!   the current prefix and each non-default `alt`), subject to a
//!   *preemption bound* — at most `preemption_bound` non-default tie-breaks
//!   per schedule. Most concurrency bugs need only a handful of preemptions,
//!   so the bound turns an exponential space into a useful frontier.
//! * **Shuffled top-up**: once the DFS frontier drains (or alongside it,
//!   budget permitting), remaining trials run seed-derived random
//!   tie-breaks for long-tail coverage.
//!
//! Every run is replayable: the recorded choice log *is* the schedule. On a
//! violation the driver shrinks the choice list (and the chaos
//! [`FaultPlan`], for [`explore_faulty`]) to a minimal repro and prints a
//! `SIMCHECK_REPLAY=<blob>` artifact. Exporting that variable makes the
//! next [`explore`] call run exactly that one schedule — the debugging
//! loop closes without ever leaving the deterministic engine.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use hetsim::engine::{ChoicePoint, RunReport, SchedulePolicy, SimError, Simulation};
use molecule_chaos::FaultPlan;

use crate::policy::{ReplayPolicy, ShuffledPolicy};
use crate::shrink::{nonzero_choices, shrink_choices, shrink_plan};

/// A scenario's verdict closure: runs after the simulation with the engine
/// outcome, turns the evidence the scenario collected into pass/fail.
pub type Check = Box<dyn FnOnce(&Result<RunReport, SimError>) -> Result<(), String>>;

/// Exploration budget and knobs.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Total schedules to run (DFS + shuffled top-up), minimum 1.
    pub trials: usize,
    /// Base seed for the shuffled top-up schedules.
    pub seed: u64,
    /// Maximum non-default tie-breaks per DFS-generated schedule.
    pub preemption_bound: usize,
    /// Per-run engine event limit (guards against livelocking schedules).
    pub event_limit: u64,
    /// Shrink the repro on violation. Costs extra runs; turn off only when
    /// a scenario is too slow to re-run dozens of times.
    pub shrink: bool,
}

impl Default for ExploreOptions {
    fn default() -> ExploreOptions {
        ExploreOptions {
            trials: 256,
            seed: 0x5eed_c0de,
            preemption_bound: 3,
            event_limit: 2_000_000,
            shrink: true,
        }
    }
}

/// What [`explore`] found.
#[derive(Debug)]
pub struct ExploreReport {
    /// Schedules actually executed (≤ `trials`; 1 under `SIMCHECK_REPLAY`).
    pub trials_run: usize,
    /// Distinct schedules among them, keyed by the full choice log — the
    /// honest coverage number (random seeds can collide on small spaces).
    pub distinct_schedules: usize,
    /// The first violation, already shrunk, or `None` if every run passed.
    pub violation: Option<ViolationReport>,
}

impl ExploreReport {
    /// Panics with the replay artifact if a violation was found.
    pub fn assert_clean(&self) {
        if let Some(v) = &self.violation {
            panic!(
                "schedule exploration found a violation: {}\n  replay with SIMCHECK_REPLAY={}\n  minimal plan: {:?}",
                v.message, v.replay, v.plan
            );
        }
    }
}

/// A shrunk, replayable counterexample.
#[derive(Debug)]
pub struct ViolationReport {
    /// The oracle's message from the *minimal* repro.
    pub message: String,
    /// Minimal schedule choice list (replay it with
    /// [`ReplayPolicy`](crate::ReplayPolicy)).
    pub choices: Vec<u32>,
    /// Minimal fault plan (every surviving event is necessary).
    pub plan: FaultPlan,
    /// The `SIMCHECK_REPLAY` blob encoding `choices`.
    pub replay: String,
}

/// Encodes a choice list as a `SIMCHECK_REPLAY` blob:
/// `v1:<len>:<i.c,i.c,...>` with one `i.c` entry per nonzero choice.
pub fn encode_replay(choices: &[u32]) -> String {
    let entries: Vec<String> = choices
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c != 0)
        .map(|(i, c)| format!("{i}.{c}"))
        .collect();
    format!("v1:{}:{}", choices.len(), entries.join(","))
}

/// Decodes a [`encode_replay`] blob back into a choice list.
///
/// # Errors
///
/// A description of the malformed field.
pub fn decode_replay(blob: &str) -> Result<Vec<u32>, String> {
    let rest = blob.strip_prefix("v1:").ok_or("replay blob must start with \"v1:\"")?;
    let (len, entries) = rest.split_once(':').ok_or("replay blob missing \":\" after length")?;
    let len: usize = len.parse().map_err(|e| format!("bad replay length {len:?}: {e}"))?;
    let mut choices = vec![0u32; len];
    for entry in entries.split(',').filter(|e| !e.is_empty()) {
        let (i, c) = entry.split_once('.').ok_or_else(|| format!("bad replay entry {entry:?}"))?;
        let i: usize = i.parse().map_err(|e| format!("bad replay index {i:?}: {e}"))?;
        let c: u32 = c.parse().map_err(|e| format!("bad replay choice {c:?}: {e}"))?;
        if i >= len {
            return Err(format!("replay index {i} out of range (len {len})"));
        }
        choices[i] = c;
    }
    Ok(choices)
}

/// Explores `scenario` under [`ExploreOptions::trials`] schedules with no
/// fault injection. See the [crate docs](crate) for the scenario contract.
pub fn explore<S>(opts: &ExploreOptions, mut scenario: S) -> ExploreReport
where
    S: FnMut(&mut Simulation) -> Check,
{
    explore_faulty(opts, FaultPlan::new(opts.seed), move |sim, _plan| scenario(sim))
}

/// Explores `scenario` under schedule *and* fault-plan variation. The
/// scenario receives the plan to install into whatever fault plane it
/// builds; on violation both the schedule and the plan are shrunk.
pub fn explore_faulty<S>(opts: &ExploreOptions, plan: FaultPlan, mut scenario: S) -> ExploreReport
where
    S: FnMut(&mut Simulation, &FaultPlan) -> Check,
{
    // Operator-driven replay short-circuits the whole search: one schedule,
    // verbatim, no shrinking (the blob already is the minimal repro).
    if let Ok(blob) = std::env::var("SIMCHECK_REPLAY") {
        let choices = decode_replay(&blob).unwrap_or_else(|e| panic!("SIMCHECK_REPLAY: {e}"));
        let (verdict, log) = run_once(&mut scenario, &plan, replay(&choices), opts.event_limit);
        let violation = verdict.err().map(|message| ViolationReport {
            message,
            replay: encode_replay(&choices),
            choices,
            plan: plan.clone(),
        });
        return ExploreReport {
            trials_run: 1,
            distinct_schedules: usize::from(!log.is_empty()),
            violation,
        };
    }

    let trials = opts.trials.max(1);
    let mut seen = HashSet::new(); // full-schedule signatures
    let mut tried = HashSet::new(); // DFS prefixes already dispatched
    let mut stack: Vec<Vec<u32>> = vec![Vec::new()]; // trial 0: default schedule
    tried.insert(Vec::new());
    let mut trials_run = 0;

    while trials_run < trials {
        // DFS children are speculative: replaying a mutated prefix can
        // reshape later ties, so clamped candidates collide on already-seen
        // schedules. Cap DFS at a quarter of the budget and spend the rest
        // on shuffled runs, which are near-collision-free in a large space.
        let prefix = if trials_run * 4 <= trials { stack.pop() } else { None };
        let policy: Box<dyn SchedulePolicy> = match &prefix {
            Some(p) => replay(p),
            None => Box::new(ShuffledPolicy::new(opts.seed ^ trials_run as u64)),
        };
        let (verdict, log) = run_once(&mut scenario, &plan, policy, opts.event_limit);
        trials_run += 1;
        seen.insert(signature(&log));

        if let Err(message) = verdict {
            let choices: Vec<u32> = log.iter().map(|c| c.chosen).collect();
            let violation = build_violation(opts, &plan, &mut scenario, message, choices);
            return ExploreReport {
                trials_run,
                distinct_schedules: seen.len(),
                violation: Some(violation),
            };
        }

        // Expand the DFS frontier from replay-driven runs only: a shuffled
        // log is mostly non-default already, so its children blow past the
        // preemption bound and add little.
        if let Some(prefix) = prefix {
            for (i, point) in log.iter().enumerate() {
                if i < prefix.len() || stack.len() >= 4096 {
                    continue;
                }
                for alt in 1..point.arity {
                    let mut candidate: Vec<u32> = log[..i].iter().map(|c| c.chosen).collect();
                    candidate.push(alt);
                    if nonzero_choices(&candidate) <= opts.preemption_bound
                        && tried.insert(candidate.clone())
                    {
                        stack.push(candidate);
                    }
                }
            }
        }
    }

    ExploreReport { trials_run, distinct_schedules: seen.len(), violation: None }
}

fn build_violation<S>(
    opts: &ExploreOptions,
    plan: &FaultPlan,
    scenario: &mut S,
    message: String,
    choices: Vec<u32>,
) -> ViolationReport
where
    S: FnMut(&mut Simulation, &FaultPlan) -> Check,
{
    let (message, choices, plan) = if opts.shrink {
        let min_choices = shrink_choices(choices, |candidate| {
            run_once(scenario, plan, replay(candidate), opts.event_limit).0.is_err()
        });
        let min_plan = shrink_plan(plan.clone(), |candidate| {
            run_once(scenario, candidate, replay(&min_choices), opts.event_limit).0.is_err()
        });
        // Re-run the minimal repro for its (possibly reworded) message.
        let (verdict, _) = run_once(scenario, &min_plan, replay(&min_choices), opts.event_limit);
        (verdict.err().unwrap_or(message), min_choices, min_plan)
    } else {
        (message, choices, plan.clone())
    };
    let replay_blob = encode_replay(&choices);
    eprintln!(
        "simcheck: violation: {message}\nsimcheck: replay with SIMCHECK_REPLAY={replay_blob}\nsimcheck: minimal plan: {plan:?}"
    );
    ViolationReport { message, choices, plan, replay: replay_blob }
}

fn replay(choices: &[u32]) -> Box<dyn SchedulePolicy> {
    Box::new(ReplayPolicy::new(choices.to_vec()))
}

fn run_once<S>(
    scenario: &mut S,
    plan: &FaultPlan,
    policy: Box<dyn SchedulePolicy>,
    event_limit: u64,
) -> (Result<(), String>, Vec<ChoicePoint>)
where
    S: FnMut(&mut Simulation, &FaultPlan) -> Check,
{
    let mut sim = Simulation::new();
    sim.set_event_limit(event_limit);
    sim.set_schedule_policy(policy);
    let check = scenario(&mut sim, plan);
    let result = sim.run();
    let log = sim.take_choice_log();
    (check(&result), log)
}

fn signature(log: &[ChoicePoint]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    log.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_blob_round_trips() {
        for choices in [vec![], vec![0, 0, 3], vec![1, 0, 0, 2, 0]] {
            let blob = encode_replay(&choices);
            assert_eq!(decode_replay(&blob).unwrap(), choices, "blob {blob}");
        }
        assert_eq!(encode_replay(&[0, 2, 0, 1]), "v1:4:1.2,3.1");
        assert!(decode_replay("v0:1:").is_err());
        assert!(decode_replay("v1:2:5.1").is_err(), "index past len");
    }

    #[test]
    fn explores_both_orders_of_a_two_writer_race() {
        let opts = ExploreOptions { trials: 32, ..ExploreOptions::default() };
        let mut orders = HashSet::new();
        let report = explore(&opts, |sim| {
            let (tx, rx) = sim.channel::<u32>();
            let tx2 = tx.clone();
            sim.spawn("a", move |_| tx.send(1).unwrap());
            sim.spawn("b", move |_| tx2.send(2).unwrap());
            let h = sim.spawn("r", move |ctx| (rx.recv(ctx).unwrap(), rx.recv(ctx).unwrap()));
            Box::new(move |result| {
                result.as_ref().map_err(|e| e.to_string())?;
                let pair = h.take_result().unwrap();
                if pair.0 + pair.1 == 3 {
                    Ok(())
                } else {
                    Err(format!("lost: {pair:?}"))
                }
            })
        });
        // Re-run per schedule to collect orders through a second exploration
        // would race with the driver; instead trust distinct_schedules.
        orders.insert(report.distinct_schedules);
        assert!(report.violation.is_none());
        assert!(report.distinct_schedules >= 2, "only {} schedules", report.distinct_schedules);
        assert!(report.trials_run <= 32);
    }

    #[test]
    fn catches_and_shrinks_a_planted_order_bug() {
        // "Bug": the scenario fails iff writer b's message is consumed
        // first — i.e. only under a non-default tie-break. Exploration must
        // find it and shrink to a single nonzero choice.
        let opts = ExploreOptions { trials: 64, ..ExploreOptions::default() };
        let report = explore(&opts, |sim| {
            let (tx, rx) = sim.channel::<u32>();
            let tx2 = tx.clone();
            sim.spawn("a", move |_| tx.send(1).unwrap());
            sim.spawn("b", move |_| tx2.send(2).unwrap());
            let h = sim.spawn("r", move |ctx| (rx.recv(ctx).unwrap(), rx.recv(ctx).unwrap()));
            Box::new(move |result| {
                result.as_ref().map_err(|e| e.to_string())?;
                match h.take_result().unwrap() {
                    (2, _) => Err("b overtook a".into()),
                    _ => Ok(()),
                }
            })
        });
        let v = report.violation.expect("planted bug must be found");
        assert!(v.message.contains("b overtook a"));
        // Reordering b's start/send ahead of a's among three t=0 processes
        // takes two tie-flips; anything beyond that must shrink away.
        assert!(nonzero_choices(&v.choices) <= 2, "not minimal: {:?}", v.choices);
        let replayed = decode_replay(&v.replay).unwrap();
        assert_eq!(replayed, v.choices, "blob round-trips the minimal repro");
    }
}
