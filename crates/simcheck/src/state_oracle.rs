//! State-coherence oracle over the `molecule-state` shared-state tier.
//!
//! [`check_state`] is a *stateful* check: coherence is a property of
//! histories, not single snapshots, so the oracle carries a
//! [`StateHistory`] across steps and compares each new
//! [`StateSnapshot`] against everything it has already accepted:
//!
//! * per region name, the committed-version floor and the master's
//!   committed version are monotone (re-mastering after an owner kill may
//!   jump them forward, never back);
//! * no replica — master included — ever exposes a version above the
//!   floor;
//! * no two PUs ever expose divergent bytes for the same committed
//!   version of a region: the first digest observed for `(name, version)`
//!   is pinned, and every later observation must match it.
//!
//! Version numbers are never reused within a region name (every commit,
//! CAS and re-mastering generation bumps the floor), which is what makes
//! the digest pinning sound. The one assumption the oracle makes of the
//! scenario: region *names* are not recycled — dropping `"weights"` and
//! creating a fresh `"weights"` would restart the version counter and
//! trip the monotonicity check by design.
//!
//! [`StateOracle::install`] combines this with the control-plane
//! [`check_snapshot`] in a single engine step observer (the engine holds
//! exactly one), so a scenario gets cluster *and* state invariants checked
//! after every event with one install call.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use hetsim::engine::Simulation;
use molecule_state::{StateLayer, StateSnapshot};
use xpu_shim::ShimCluster;

use crate::oracle::{check_snapshot, OracleConfig};

/// Cross-step evidence for [`check_state`]: high-water marks and pinned
/// digests per region name.
#[derive(Debug, Default)]
pub struct StateHistory {
    /// Highest accepted floor per region name.
    floors: HashMap<String, u64>,
    /// Highest accepted master version per region name.
    versions: HashMap<String, u64>,
    /// First digest observed for each `(name, version)` pair.
    digests: HashMap<(String, u64), u64>,
}

impl StateHistory {
    /// An empty history.
    pub fn new() -> StateHistory {
        StateHistory::default()
    }
}

/// Checks one [`StateSnapshot`] against the history, recording the new
/// high-water marks on success.
///
/// # Errors
///
/// A human-readable description of the first violated coherence invariant.
pub fn check_state(snap: &StateSnapshot, hist: &mut StateHistory) -> Result<(), String> {
    for r in &snap.regions {
        if r.version > r.floor {
            return Err(format!(
                "region {}: master version {} above floor {}",
                r.name, r.version, r.floor
            ));
        }
        let floor = hist.floors.entry(r.name.clone()).or_insert(0);
        if r.floor < *floor {
            return Err(format!(
                "region {}: floor moved backwards ({} after {})",
                r.name, r.floor, *floor
            ));
        }
        *floor = r.floor;
        let version = hist.versions.entry(r.name.clone()).or_insert(0);
        if r.version < *version {
            return Err(format!(
                "region {}: committed version moved backwards ({} after {})",
                r.name, r.version, *version
            ));
        }
        *version = r.version;
        for rep in &r.replicas {
            if rep.version > r.floor {
                return Err(format!(
                    "region {}: replica on {} at version {} above floor {}",
                    r.name, rep.pu, rep.version, r.floor
                ));
            }
            let pinned = hist.digests.entry((r.name.clone(), rep.version)).or_insert(rep.digest);
            if *pinned != rep.digest {
                return Err(format!(
                    "region {}: divergent pages for committed version {} — {} exposes \
                     digest {:#x}, previously pinned {:#x}",
                    r.name, rep.version, rep.pu, rep.digest, *pinned
                ));
            }
        }
    }
    Ok(())
}

/// A per-step watchdog combining the control-plane [`check_snapshot`] and
/// the stateful [`check_state`] in one engine step observer. Ask it for the
/// final [`verdict`](Self::verdict) from the scenario's check closure.
pub struct StateOracle {
    cluster: ShimCluster,
    layer: StateLayer,
    cfg: OracleConfig,
    violation: Rc<RefCell<Option<String>>>,
    history: Rc<RefCell<StateHistory>>,
}

impl StateOracle {
    /// Installs the combined oracle as `sim`'s step observer (replacing any
    /// previous observer — do not also install a [`ClusterOracle`]) and
    /// returns the handle the check closure consults.
    ///
    /// [`ClusterOracle`]: crate::oracle::ClusterOracle
    pub fn install(
        sim: &mut Simulation,
        cluster: &ShimCluster,
        layer: &StateLayer,
        cfg: OracleConfig,
    ) -> StateOracle {
        let violation = Rc::new(RefCell::new(None));
        let history = Rc::new(RefCell::new(StateHistory::new()));
        let watched_cluster = cluster.clone();
        let watched_layer = layer.clone();
        let sink = Rc::clone(&violation);
        let hist = Rc::clone(&history);
        sim.set_step_observer(Box::new(move || {
            if sink.borrow().is_some() {
                return;
            }
            let outcome = check_snapshot(&watched_cluster.snapshot(), &cfg)
                .and_then(|()| check_state(&watched_layer.snapshot(), &mut hist.borrow_mut()));
            if let Err(v) = outcome {
                *sink.borrow_mut() = Some(v);
            }
        }));
        StateOracle { cluster: cluster.clone(), layer: layer.clone(), cfg, violation, history }
    }

    /// The verdict: the first per-step violation if one was recorded, else a
    /// final quiescence check of both layers. `require_empty_arena`
    /// additionally demands zero parked segment slots — pass true when the
    /// scenario drops every region and drains every FIFO before exiting.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a human-readable message.
    pub fn verdict(&self, require_empty_arena: bool) -> Result<(), String> {
        if let Some(v) = self.violation.borrow().as_ref() {
            return Err(format!("[step] {v}"));
        }
        let snap = self.cluster.snapshot();
        check_snapshot(&snap, &self.cfg).map_err(|v| format!("[quiescence] {v}"))?;
        check_state(&self.layer.snapshot(), &mut self.history.borrow_mut())
            .map_err(|v| format!("[quiescence] {v}"))?;
        if require_empty_arena && snap.outstanding_segments != 0 {
            return Err(format!(
                "[quiescence] arena holds {} unresolved slot(s): {:?}",
                snap.outstanding_segments, snap.parked_segments
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::pu::PuId;
    use molecule_state::{RegionStateSnapshot, ReplicaSnapshot};

    fn snap(version: u64, floor: u64, replicas: Vec<(u16, u64, u64)>) -> StateSnapshot {
        StateSnapshot {
            regions: vec![RegionStateSnapshot {
                name: "r".into(),
                uuid: xpu_shim::GlobalUuid::new("uuid-r-g0"),
                gen: 0,
                master: PuId(0),
                version,
                floor,
                replicas: replicas
                    .into_iter()
                    .map(|(pu, version, digest)| ReplicaSnapshot { pu: PuId(pu), version, digest })
                    .collect(),
            }],
        }
    }

    #[test]
    fn monotone_history_passes_and_regressions_trip() {
        let mut h = StateHistory::new();
        check_state(&snap(0, 0, vec![(0, 0, 7)]), &mut h).unwrap();
        check_state(&snap(1, 1, vec![(0, 1, 9), (1, 0, 7)]), &mut h).unwrap();
        let err = check_state(&snap(0, 1, vec![(0, 0, 7)]), &mut h).unwrap_err();
        assert!(err.contains("moved backwards"), "{err}");
    }

    #[test]
    fn divergent_digest_for_same_version_trips() {
        let mut h = StateHistory::new();
        check_state(&snap(1, 1, vec![(0, 1, 0xaa)]), &mut h).unwrap();
        let err = check_state(&snap(1, 1, vec![(0, 1, 0xaa), (2, 1, 0xbb)]), &mut h).unwrap_err();
        assert!(err.contains("divergent pages"), "{err}");
    }

    #[test]
    fn version_above_floor_trips() {
        let mut h = StateHistory::new();
        let err = check_state(&snap(2, 1, vec![(0, 2, 0)]), &mut h).unwrap_err();
        assert!(err.contains("above floor"), "{err}");
    }
}
