#![warn(missing_docs)]

//! `molecule-simcheck` — loom/turmoil-style schedule exploration and
//! invariant oracles over the deterministic virtual-time engine.
//!
//! The hetsim engine orders events by `(time, seq)`, so every program runs
//! along exactly *one* schedule per seed. That is great for reproducibility
//! and terrible for finding concurrency bugs: races like the historical
//! concurrent-cfork thread-count corruption only manifest under schedules
//! the default tie-break never picks. This crate drives one test body
//! through hundreds of distinct interleavings by varying only the
//! same-instant tie-break (the engine's [`SchedulePolicy`] hook), checking
//! control-plane invariants after every step, and — when an oracle trips —
//! delta-debugging the schedule and the fault plan down to a minimal,
//! replayable repro.
//!
//! # The pieces
//!
//! * [`policy`] — [`ShuffledPolicy`] (seed-randomized ties) and
//!   [`ReplayPolicy`] (replay a recorded choice list byte-identically).
//! * [`explore`] — the exploration driver: a bounded DFS over tie-break
//!   alternatives (preemption-bounded, budget-capped) topped up with
//!   seed-shuffled random schedules, plus shrinking and replay-blob
//!   round-tripping (`SIMCHECK_REPLAY=<blob>`).
//! * [`oracle`] — invariant checks over [`xpu_shim::ClusterSnapshot`]:
//!   capability ownership is a partition, no dangling grants, FIFO UUIDs
//!   never both live and reclaimed, exactly-once reclamation accounting,
//!   SegmentArena slot balance; plus a per-writer FIFO-order tracker.
//! * [`state_oracle`] — coherence checks over the `molecule-state` shared
//!   tier: committed version vectors monotone per region, no divergent
//!   pages for the same committed version, region caps never leaking
//!   across reclaim.
//! * [`shrink`] — ddmin-lite minimization of choice lists and chaos
//!   [`FaultPlan`](molecule_chaos::FaultPlan)s.
//!
//! # Writing a scenario
//!
//! A scenario is a closure that assembles a system into a fresh
//! [`Simulation`](hetsim::engine::Simulation) and returns a *check*: a
//! second closure run after the simulation, which turns collected evidence
//! into a verdict. [`explore`](explore::explore) then runs the scenario
//! under many schedules:
//!
//! ```
//! use molecule_simcheck::explore::{explore, ExploreOptions};
//!
//! let report = explore(&ExploreOptions { trials: 50, ..ExploreOptions::default() }, |sim| {
//!     let (tx, rx) = sim.channel::<u32>();
//!     let tx2 = tx.clone();
//!     sim.spawn("a", move |_ctx| tx.send(1).unwrap());
//!     sim.spawn("b", move |_ctx| tx2.send(2).unwrap());
//!     let h = sim.spawn("reader", move |ctx| {
//!         let x = rx.recv(ctx).unwrap();
//!         let y = rx.recv(ctx).unwrap();
//!         (x, y)
//!     });
//!     Box::new(move |result| {
//!         result.as_ref().map_err(|e| e.to_string())?;
//!         let (x, y) = h.take_result().unwrap();
//!         // Both orders are legal; the *set* must be intact.
//!         if x + y == 3 { Ok(()) } else { Err(format!("lost a message: {x} {y}")) }
//!     })
//! });
//! assert!(report.violation.is_none());
//! assert!(report.distinct_schedules >= 2, "both delivery orders explored");
//! ```

pub mod explore;
pub mod oracle;
pub mod policy;
pub mod shrink;
pub mod state_oracle;

pub use explore::{explore, explore_faulty, Check, ExploreOptions, ExploreReport, ViolationReport};
pub use oracle::{check_snapshot, ClusterOracle, FifoOrderTracker, OracleConfig};
pub use policy::{ReplayPolicy, ShuffledPolicy};
pub use state_oracle::{check_state, StateHistory, StateOracle};

use hetsim::engine::SchedulePolicy;
// Re-exported so scenario code can name engine types through one crate.
pub use hetsim::engine::{ChoicePoint, SimError};

/// Convenience: the policy used for trial replays, as a boxed trait object.
pub fn boxed_replay(choices: Vec<u32>) -> Box<dyn SchedulePolicy> {
    Box::new(ReplayPolicy::new(choices))
}
