//! Schedule policies: randomized and replay tie-breaks.

use hetsim::engine::SchedulePolicy;
use hetsim::time::SimTime;
use rand::prelude::*;

/// Breaks every same-instant tie with a seeded random pick. The same seed
/// always produces the same schedule, so a "random" run is still perfectly
/// reproducible — record its choice log and hand it to [`ReplayPolicy`].
#[derive(Debug, Clone)]
pub struct ShuffledPolicy {
    rng: StdRng,
}

impl ShuffledPolicy {
    /// A policy drawing its tie-breaks from `seed`.
    pub fn new(seed: u64) -> ShuffledPolicy {
        ShuffledPolicy { rng: StdRng::seed_from_u64(seed) }
    }
}

impl SchedulePolicy for ShuffledPolicy {
    fn choose(&mut self, _now: SimTime, arity: usize) -> usize {
        self.rng.gen_range(0..arity)
    }
}

/// Replays a recorded choice list: the `i`-th consulted tie takes
/// `choices[i]`, clamped to the live arity; ties beyond the list fall back
/// to the default (index 0). Replaying the exact log of a previous run of
/// the same scenario reproduces that run bit-for-bit.
#[derive(Debug, Clone)]
pub struct ReplayPolicy {
    choices: Vec<u32>,
    cursor: usize,
}

impl ReplayPolicy {
    /// A policy replaying `choices` in order.
    pub fn new(choices: Vec<u32>) -> ReplayPolicy {
        ReplayPolicy { choices, cursor: 0 }
    }
}

impl SchedulePolicy for ReplayPolicy {
    fn choose(&mut self, _now: SimTime, arity: usize) -> usize {
        let c = self.choices.get(self.cursor).copied().unwrap_or(0) as usize;
        self.cursor += 1;
        c.min(arity.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffled_is_deterministic_per_seed() {
        let picks = |seed| {
            let mut p = ShuffledPolicy::new(seed);
            (0..32).map(|_| p.choose(SimTime::ZERO, 3)).collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
        assert!(picks(7).iter().all(|&c| c < 3));
    }

    #[test]
    fn replay_clamps_and_defaults_to_zero() {
        let mut p = ReplayPolicy::new(vec![2, 9, 1]);
        assert_eq!(p.choose(SimTime::ZERO, 3), 2);
        assert_eq!(p.choose(SimTime::ZERO, 2), 1, "out-of-range choice clamps");
        assert_eq!(p.choose(SimTime::ZERO, 4), 1);
        assert_eq!(p.choose(SimTime::ZERO, 4), 0, "past the list: default");
    }
}
