//! Shared-state coherence under schedule exploration: masters commit new
//! versions while remote replicas pull, read and push their own commits,
//! and — in the faulty suite — the mastering DPU is killed mid-stream and
//! the region re-mastered onto a survivor. Whatever the interleaving, the
//! [`StateOracle`] demands per-region version vectors stay monotone, no
//! two PUs ever expose divergent bytes for the same committed version, and
//! region capabilities and arena slots never leak across reclaim.
//!
//! Two identical region pipelines run side by side — same ops, same
//! charged costs — so they stay tied step for step, giving the explorer a
//! multi-way choice point at every instant. Regions are 8 pages (32 KiB),
//! well past the 16 KiB zero-copy threshold: every pull and remote commit
//! parks its payload in the segment arena and ships a descriptor, so slot
//! accounting is exercised on every transfer.

use hetsim::engine::{ProcCtx, Simulation};
use hetsim::pu::PuId;
use hetsim::time::{SimDuration, SimTime};
use hetsim::topology::Machine;
use molecule_chaos::{FaultAction, FaultPlan};
use molecule_simcheck::explore::{explore, explore_faulty, Check, ExploreOptions};
use molecule_simcheck::{OracleConfig, StateOracle};
use molecule_state::{RegionSpec, StateError, StateLayer};
use xpu_shim::{ShimCluster, ShimConfig};

/// 8 standard pages = 32 KiB — descriptor-eligible on every transfer.
const PAGES: u64 = 8;
const SIZE: usize = (PAGES * 4096) as usize;
const PIPELINES: usize = 2;
const ROUNDS: u8 = 3;

/// Errors that are legal transients while the master is dead, the region
/// is being re-mastered, or the scenario has already dropped it. Anything
/// else (out-of-bounds, OS-level corruption) is a real violation.
fn tolerable(err: &StateError) -> bool {
    matches!(
        err,
        StateError::Remastered(_)
            | StateError::Shim(_)
            | StateError::UnknownRegion(_)
            | StateError::NotAttached(_, _)
    )
}

/// Attaches with a bounded retry: remotes start concurrently with the
/// master's `create_region`, so losing that race ([`UnknownRegion`]) just
/// means "not yet".
///
/// [`UnknownRegion`]: StateError::UnknownRegion
fn attach_retrying(
    ctx: &mut ProcCtx,
    layer: &StateLayer,
    pu: PuId,
    region: &str,
) -> Result<(), String> {
    for _ in 0..100 {
        match layer.attach(ctx, pu, region) {
            Ok(_) => return Ok(()),
            Err(StateError::UnknownRegion(_)) => ctx.sleep(SimDuration::from_micros(10)),
            Err(e) => return Err(format!("attach {region} on {pu}: {e}")),
        }
    }
    Err(format!("attach {region} on {pu}: region never appeared"))
}

/// Every committed version in these scenarios is a whole-region write of a
/// single stamp byte, so any read of a committed version must be uniform —
/// a mixed read is a torn or half-merged version.
fn check_uniform(who: &str, bytes: &[u8]) -> Result<(), String> {
    if bytes.len() != SIZE {
        return Err(format!("{who}: short read ({} of {SIZE} bytes)", bytes.len()));
    }
    let stamp = bytes[0];
    if bytes.iter().any(|&b| b != stamp) {
        return Err(format!("{who}: torn committed version (stamp {stamp:#x} not uniform)"));
    }
    Ok(())
}

/// Races, per region: the host master committing whole-region versions, a
/// DPU replica pulling and reading, and a second DPU replica pushing its
/// own remote commits. The master drops the region once both remotes are
/// done, so quiescence can demand an empty arena.
fn commit_pull_race_scenario(sim: &mut Simulation) -> Check {
    let machine = Machine::paper_cpu_dpu_server();
    let cluster = ShimCluster::deploy(machine, ShimConfig::default());
    let layer = StateLayer::new(cluster.clone());
    let oracle = StateOracle::install(sim, &cluster, &layer, OracleConfig::default());

    let mut workers = Vec::new();
    for pipeline in 0..PIPELINES {
        let name = format!("grid-{pipeline}");
        let (done_tx, done_rx) = sim.channel::<()>();

        let l = layer.clone();
        let region = name.clone();
        workers.push(sim.spawn(&format!("master-{pipeline}"), move |ctx| {
            l.create_region(ctx, PuId(0), RegionSpec::new(&region, PAGES))
                .map_err(|e| format!("create {region}: {e}"))?;
            for round in 1..=ROUNDS {
                l.write(ctx, PuId(0), &region, 0, &[round; SIZE], None)
                    .map_err(|e| format!("master write {region}: {e}"))?;
                l.commit(ctx, PuId(0), &region)
                    .map_err(|e| format!("master commit {region}: {e}"))?;
                ctx.sleep(SimDuration::from_micros(20));
            }
            for _ in 0..2 {
                done_rx.recv(ctx).map_err(|e| format!("master {region}: lost remote: {e}"))?;
            }
            l.drop_region(ctx, &region).map_err(|e| format!("drop {region}: {e}"))?;
            Ok::<(), String>(())
        }));

        let l = layer.clone();
        let region = name.clone();
        let tx = done_tx.clone();
        workers.push(sim.spawn(&format!("puller-{pipeline}"), move |ctx| {
            let run = |ctx: &mut ProcCtx| -> Result<(), String> {
                attach_retrying(ctx, &l, PuId(1), &region)?;
                for _ in 0..ROUNDS {
                    l.pull(ctx, PuId(1), &region).map_err(|e| format!("pull: {e}"))?;
                    let bytes = l
                        .read(ctx, PuId(1), &region, 0, SIZE as u64)
                        .map_err(|e| format!("read: {e}"))?;
                    check_uniform(&format!("puller-{region}"), &bytes)?;
                    ctx.sleep(SimDuration::from_micros(20));
                }
                Ok(())
            };
            let outcome = run(ctx);
            tx.send(()).ok();
            outcome
        }));

        let l = layer.clone();
        let region = name.clone();
        let tx = done_tx;
        workers.push(sim.spawn(&format!("pusher-{pipeline}"), move |ctx| {
            let run = |ctx: &mut ProcCtx| -> Result<(), String> {
                attach_retrying(ctx, &l, PuId(2), &region)?;
                for round in 1..=ROUNDS {
                    l.write(ctx, PuId(2), &region, 0, &[0x80 + round; SIZE], None)
                        .map_err(|e| format!("remote write: {e}"))?;
                    l.commit(ctx, PuId(2), &region).map_err(|e| format!("remote commit: {e}"))?;
                    l.pull(ctx, PuId(2), &region).map_err(|e| format!("pull: {e}"))?;
                    let bytes = l
                        .read(ctx, PuId(2), &region, 0, SIZE as u64)
                        .map_err(|e| format!("read: {e}"))?;
                    check_uniform(&format!("pusher-{region}"), &bytes)?;
                    ctx.sleep(SimDuration::from_micros(20));
                }
                Ok(())
            };
            let outcome = run(ctx);
            tx.send(()).ok();
            outcome
        }));
    }

    Box::new(move |result| {
        result.as_ref().map_err(|e| e.to_string())?;
        for h in workers {
            h.take_result().ok_or("worker lost")??;
        }
        // Every region dropped, every FIFO drained: demand an empty arena.
        oracle.verdict(true)
    })
}

#[test]
fn commit_pull_races_stay_coherent() {
    let report = explore(&ExploreOptions::default(), commit_pull_race_scenario);
    report.assert_clean();
    assert!(
        report.distinct_schedules >= 200,
        "want >= 200 distinct schedules, got {}",
        report.distinct_schedules
    );
}

/// The faulty suite: the DPU mastering both regions is killed mid-stream.
/// A supervisor reclaims the dead PU's control-plane state and re-masters
/// its regions onto the freshest survivor; racing writers and pullers ride
/// through the crash on legal transients. The oracle demands the version
/// vector survives re-mastering monotonically and nothing leaks.
fn owner_kill_scenario(sim: &mut Simulation, plan: &FaultPlan) -> Check {
    let machine = Machine::paper_cpu_dpu_server();
    let cluster = ShimCluster::deploy(machine.clone(), ShimConfig::default());
    let layer = StateLayer::new(cluster.clone());
    let oracle = StateOracle::install(sim, &cluster, &layer, OracleConfig::default());
    molecule_chaos::spawn_injector(sim, &machine, plan);

    let mut workers = Vec::new();
    for pipeline in 0..PIPELINES {
        let name = format!("wal-{pipeline}");

        let l = layer.clone();
        let cl = cluster.clone();
        let region = name.clone();
        workers.push(sim.spawn(&format!("supervisor-{pipeline}"), move |ctx| {
            // Master on the doomed DPU; survivors attach from the workers.
            l.create_region(ctx, PuId(1), RegionSpec::new(&region, PAGES))
                .map_err(|e| format!("create {region}: {e}"))?;
            // Past the kill (300us): sweep the dead PU exactly once, then
            // re-master its regions. Supervisor 0 runs the sweep; the other
            // would double-reclaim, which reclaim_pu must tolerate anyway.
            ctx.sleep(SimDuration::from_micros(500));
            cl.reclaim_pu(ctx, PuId(1));
            l.handle_pu_death(ctx, PuId(1));
            // Let the stragglers run out, then tear the region down.
            ctx.sleep(SimDuration::from_millis(4));
            match l.drop_region(ctx, &region) {
                Ok(()) => Ok(()),
                Err(ref e) if tolerable(e) => Ok(()), // lost with its last replica
                Err(e) => Err(format!("drop {region}: {e}")),
            }
        }));

        let l = layer.clone();
        let region = name.clone();
        workers.push(sim.spawn(&format!("writer-{pipeline}"), move |ctx| {
            let mut attached = false;
            for round in 1..=6u8 {
                let result = if attached {
                    l.write(ctx, PuId(0), &region, 0, &[round; SIZE], None)
                        .and_then(|()| l.commit(ctx, PuId(0), &region))
                        .map(|_| ())
                } else {
                    l.attach(ctx, PuId(0), &region).map(|_| attached = true)
                };
                match result {
                    Ok(()) => {}
                    Err(ref e) if tolerable(e) => {}
                    Err(e) => return Err(format!("writer {region}: {e}")),
                }
                ctx.sleep(SimDuration::from_micros(120));
            }
            Ok::<(), String>(())
        }));

        let l = layer.clone();
        let region = name.clone();
        workers.push(sim.spawn(&format!("reader-{pipeline}"), move |ctx| {
            let mut attached = false;
            for _ in 0..6 {
                let result = if attached {
                    l.pull(ctx, PuId(2), &region)
                        .and_then(|_| l.read(ctx, PuId(2), &region, 0, SIZE as u64))
                } else {
                    l.attach(ctx, PuId(2), &region).map(|_| {
                        attached = true;
                        Vec::new()
                    })
                };
                match result {
                    Ok(bytes) if !bytes.is_empty() => {
                        check_uniform(&format!("reader-{region}"), &bytes)?;
                    }
                    Ok(_) => {}
                    Err(ref e) if tolerable(e) => {}
                    Err(e) => return Err(format!("reader {region}: {e}")),
                }
                ctx.sleep(SimDuration::from_micros(120));
            }
            Ok::<(), String>(())
        }));
    }

    Box::new(move |result| {
        result.as_ref().map_err(|e| e.to_string())?;
        for h in workers {
            h.take_result().ok_or("worker lost")??;
        }
        // Regions are dropped (or died with the DPU and were reclaimed);
        // either way no slot may survive.
        oracle.verdict(true)
    })
}

#[test]
fn owner_kill_reclaim_remaster_stays_coherent() {
    let plan = FaultPlan::new(0x5eed_dead)
        .with(SimTime::ZERO + SimDuration::from_micros(300), FaultAction::KillPu(PuId(1)));
    let report = explore_faulty(&ExploreOptions::default(), plan, owner_kill_scenario);
    report.assert_clean();
    assert!(
        report.distinct_schedules >= 200,
        "want >= 200 distinct schedules, got {}",
        report.distinct_schedules
    );
}
