//! DPU I/O offload under schedule exploration: host clients stream I/O
//! bodies through the [`ProxyPool`]'s DPU-resident proxies while the
//! explorer permutes every interleaving — and, in the faulty suite, kills
//! one of the two DPUs mid-stream. Whatever the schedule, the exactly-once
//! ledger must balance: every issued request is completed xor reclaimed,
//! never both (`double_faults == 0`), never neither (`issued ==
//! completed + reclaimed`), and the client-observed outcomes must agree
//! with the ledger count for count.

use bytes::Bytes;
use hetsim::engine::Simulation;
use hetsim::pu::{PuId, PuKind};
use hetsim::time::{SimDuration, SimTime};
use hetsim::topology::Machine;
use molecule_chaos::{FaultAction, FaultPlan};
use molecule_core::proxy::{ProxyError, ProxyPool, ProxyPoolConfig, ProxyStats};
use molecule_simcheck::explore::{explore, explore_faulty, Check, ExploreOptions};
use molecule_simcheck::{ClusterOracle, OracleConfig};
use xpu_shim::{ShimCluster, ShimConfig};

const CLIENTS: u8 = 3;
const OFFLOADS_PER_CLIENT: usize = 10;

/// What one run's driver hands the check closure.
struct Outcome {
    stats: ProxyStats,
    oks: u64,
    /// Errors that *issued* a request first (write failure or reply
    /// timeout) — `NoProxy` never issues and is counted separately.
    issued_errs: u64,
    no_proxy: u64,
    live_proxies: usize,
}

/// The ledger/client agreement every schedule must uphold, kills or not.
fn check_exactly_once(out: &Outcome) -> Result<(), String> {
    let s = out.stats;
    if s.double_faults != 0 {
        return Err(format!("{} requests both completed and reclaimed", s.double_faults));
    }
    if s.issued != s.completed + s.reclaimed {
        return Err(format!(
            "ledger leak: issued {} != completed {} + reclaimed {}",
            s.issued, s.completed, s.reclaimed
        ));
    }
    if s.completed != out.oks {
        return Err(format!("{} completions for {} client Oks", s.completed, out.oks));
    }
    if s.reclaimed != out.issued_errs {
        return Err(format!("{} reclaims for {} client errors", s.reclaimed, out.issued_errs));
    }
    if s.issued != out.oks + out.issued_errs {
        return Err(format!(
            "issued {} != client outcomes {}",
            s.issued,
            out.oks + out.issued_errs
        ));
    }
    Ok(())
}

/// Shared scenario body: a driver deploys the pool, fans out `CLIENTS`
/// host-side client processes each issuing a paced stream of mixed
/// inline/descriptor offloads, joins them, then (optionally) sweeps the
/// killed DPU and always shuts the proxies down so the run quiesces.
fn run_offload_fleet(
    sim: &mut Simulation,
    machine: Machine,
    reclaim_dead: Option<PuId>,
) -> (hetsim::engine::ProcHandle<Outcome>, ClusterOracle) {
    let cluster = ShimCluster::deploy(machine, ShimConfig::default());
    let oracle = ClusterOracle::install(sim, &cluster, OracleConfig::default());

    let cl = cluster.clone();
    let driver = sim.spawn("offload-driver", move |ctx| {
        let host = cl.machine().host_cpu();
        let config = ProxyPoolConfig {
            proxies_per_dpu: 2,
            window: 2,
            device_service: SimDuration::from_micros(3),
            reply_timeout: SimDuration::from_millis(2),
        };
        let pool = ProxyPool::deploy(ctx, &cl, config).expect("deploy pool");
        assert_eq!(pool.proxy_count(), 2 * cl.machine().pus_of_kind(PuKind::Dpu).len());

        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let pool = pool.clone();
            handles.push(ctx.spawn(&format!("io-client-{c}"), move |cctx| {
                let mut client = pool.client(cctx, host).expect("client setup");
                let (mut oks, mut issued_errs, mut no_proxy) = (0u64, 0u64, 0u64);
                for i in 0..OFFLOADS_PER_CLIENT {
                    // Mix inline and descriptor-eligible bodies, paced so
                    // the stream straddles the faulty suite's kill point.
                    let size = if i % 2 == 0 { 512 } else { 64 * 1024 };
                    match pool.offload(cctx, &mut client, Bytes::from(vec![c; size])) {
                        Ok(reply) => {
                            assert_eq!(reply.bytes_done, size as u64);
                            oks += 1;
                        }
                        Err(ProxyError::NoProxy) => no_proxy += 1,
                        Err(ProxyError::Timeout) | Err(ProxyError::Shim(_)) => issued_errs += 1,
                    }
                    cctx.sleep(SimDuration::from_micros(40));
                }
                (oks, issued_errs, no_proxy)
            }));
        }
        let (mut oks, mut issued_errs, mut no_proxy) = (0u64, 0u64, 0u64);
        for h in &handles {
            h.join(ctx);
            let (o, e, n) = h.take_result().expect("client finished");
            oks += o;
            issued_errs += e;
            no_proxy += n;
        }
        // In the faulty suite the control plane sweeps the dead DPU: that
        // closes its FIFOs, which is what unblocks its proxy processes.
        if let Some(dead) = reclaim_dead {
            cl.reclaim_pu(ctx, dead);
        }
        pool.shutdown(ctx);
        Outcome {
            stats: pool.stats(),
            oks,
            issued_errs,
            no_proxy,
            live_proxies: pool.live_proxies(),
        }
    });
    (driver, oracle)
}

/// Fault-free: every offload must succeed, nothing may be reclaimed.
fn offload_scenario(sim: &mut Simulation) -> Check {
    let (driver, oracle) = run_offload_fleet(sim, Machine::paper_cpu_dpu_server(), None);
    Box::new(move |result| {
        result.as_ref().map_err(|e| e.to_string())?;
        let out = driver.take_result().expect("driver finished");
        check_exactly_once(&out)?;
        let total = u64::from(CLIENTS) * OFFLOADS_PER_CLIENT as u64;
        if out.oks != total || out.issued_errs != 0 || out.no_proxy != 0 {
            return Err(format!(
                "fault-free losses: {} ok / {} err / {} no-proxy of {total}",
                out.oks, out.issued_errs, out.no_proxy
            ));
        }
        oracle.verdict(true)
    })
}

/// DPU-kill: one of the two DPUs dies mid-stream. Requests routed there
/// fail over; each failed request is reclaimed exactly once and the
/// survivor DPU's proxies keep serving.
fn dpu_kill_scenario(sim: &mut Simulation, plan: &FaultPlan) -> Check {
    // The plan kills PuId(1); the shared body sweeps it after the clients
    // drain so the run quiesces.
    let machine = Machine::paper_cpu_dpu_server();
    molecule_chaos::spawn_injector(sim, &machine, plan);
    let (driver, oracle) = run_offload_fleet(sim, machine, Some(PuId(1)));
    Box::new(move |result| {
        result.as_ref().map_err(|e| e.to_string())?;
        let out = driver.take_result().expect("driver finished");
        check_exactly_once(&out)?;
        if out.no_proxy != 0 {
            return Err(format!("{} NoProxy errors with a live survivor DPU", out.no_proxy));
        }
        if out.live_proxies == 0 {
            return Err("every proxy left rotation after a single-DPU kill".into());
        }
        oracle.verdict(true)
    })
}

#[test]
fn offload_ledger_balances_on_every_schedule() {
    let opts = ExploreOptions { trials: 256, seed: 0x0ff1_0ad0, ..ExploreOptions::default() };
    let report = explore(&opts, offload_scenario);
    report.assert_clean();
    assert!(
        report.distinct_schedules >= 200,
        "only {} distinct schedules in {} trials",
        report.distinct_schedules,
        report.trials_run
    );
}

#[test]
fn dpu_kill_reclaims_exactly_once_on_every_schedule() {
    let opts = ExploreOptions { trials: 256, seed: 0x00de_add9, ..ExploreOptions::default() };
    // Pool deployment alone charges ~72 ms of virtual time (xspawn boots
    // four proxies), and the three client streams then run from ~72.5 ms to
    // ~73.7 ms — so the kill lands at 73 ms, mid-stream on every schedule.
    let plan = FaultPlan::new(0x00de_add9)
        .with(SimTime::ZERO + SimDuration::from_micros(73_000), FaultAction::KillPu(PuId(1)));
    let report = explore_faulty(&opts, plan, dpu_kill_scenario);
    report.assert_clean();
    assert!(
        report.distinct_schedules >= 200,
        "only {} distinct schedules in {} trials",
        report.distinct_schedules,
        report.trials_run
    );
}
