//! Schedule exploration of the tenant capability domains: per-tenant
//! pipelines spawn children and stream messages while adversaries from a
//! different tenant hammer cross-tenant grants and connects — which must
//! fail on every interleaving. The per-step oracle additionally demands
//! that no capability, FIFO or region ever crosses a tenant boundary,
//! with and without a PU-kill/reclaim fault plan racing the pipelines.

use bytes::Bytes;
use hetsim::engine::Simulation;
use hetsim::pu::PuId;
use hetsim::time::{SimDuration, SimTime};
use hetsim::topology::Machine;
use molecule_chaos::{FaultAction, FaultPlan};
use molecule_simcheck::explore::{explore_faulty, Check, ExploreOptions};
use molecule_simcheck::{ClusterOracle, OracleConfig};
use xpu_shim::{Perm, ShimCluster, ShimConfig, ShimError, TenantId};

const TENANTS: u32 = 3;
const MESSAGES: u8 = 4;

/// Per tenant: a host pipeline (FIFO + spawned DPU writer child) and an
/// adversary attached under the *next* tenant's domain that keeps trying
/// to break in. Identical pipelines stay in lockstep, handing the explorer
/// a multi-way tie at every instant.
fn tenant_scenario(sim: &mut Simulation, plan: &FaultPlan) -> Check {
    let machine = Machine::paper_cpu_dpu_server();
    let cluster = ShimCluster::deploy(machine.clone(), ShimConfig::default());
    let oracle = ClusterOracle::install(sim, &cluster, OracleConfig::default());
    molecule_chaos::spawn_injector(sim, &machine, plan);
    let faulty = !plan.events().is_empty();

    let mut workers = Vec::new();
    for t in 1..=TENANTS {
        let tenant = TenantId(t);
        let cl = cluster.clone();
        workers.push(sim.spawn(&format!("pipeline-t{t}"), move |ctx| {
            let cpu = cl.shim_on(PuId(0)).unwrap();
            let me = cpu.attach_process_as(tenant);
            let fifo = cpu
                .xfifo_init(ctx, me, format!("t{t}-stream"))
                .map_err(|e| format!("t{t} init: {e}"))?;
            let uuid = fifo.uuid().clone();
            let capv = [(fifo.obj(), Perm::WRITE)];
            let child_cl = cl.clone();
            // The child may land on a PU the fault plan kills mid-stream:
            // clean shim errors are legal, a cross-tenant leak is not (the
            // oracle decides, after every engine step).
            let spawned = cpu.xspawn(ctx, me, PuId(1), "writer", &capv, move |cctx, pid| {
                if let Ok(dpu) = child_cl.shim_on(PuId(1)) {
                    if let Ok(w) = dpu.xfifo_connect(cctx, pid, &uuid) {
                        for seq in 0..MESSAGES {
                            if w.write(cctx, Bytes::from(vec![seq; 32])).is_err() {
                                break;
                            }
                            cctx.sleep(SimDuration::from_micros(3));
                        }
                    }
                }
            });
            let _ = spawned;
            let mut got = 0u8;
            while let Ok(msg) = fifo.read_timeout(ctx, SimDuration::from_millis(2)) {
                if msg.iter().any(|&b| b != msg[0]) {
                    return Err(format!("t{t}: corrupt delivery"));
                }
                got += 1;
                if got == MESSAGES {
                    break;
                }
            }
            Ok(())
        }));

        // The adversary lives in the *next* tenant's domain and must never
        // get a handle on this tenant's FIFO — not by being granted one,
        // not by granting itself one, not by connecting.
        let cl = cluster.clone();
        let intruder = TenantId(t % TENANTS + 1);
        workers.push(sim.spawn(&format!("adversary-t{t}"), move |ctx| {
            let cpu = cl.shim_on(PuId(0)).unwrap();
            let victim = cpu.attach_process_as(tenant);
            let mallory = cpu.attach_process_as(intruder);
            let fifo = cpu
                .xfifo_init(ctx, victim, format!("t{t}-secret"))
                .map_err(|e| format!("t{t} secret init: {e}"))?;
            for round in 0..4 {
                // Even the owner cannot hand a capability across tenants —
                // the denial is typed, not a generic permission error.
                match cpu.grant_cap(ctx, victim, mallory, fifo.obj(), Perm::READ) {
                    Err(ShimError::TenantDenied { .. }) => {}
                    Ok(()) => return Err(format!("t{t} round {round}: cross-tenant grant stuck")),
                    Err(e) => {
                        return Err(format!("t{t} round {round}: want TenantDenied, got {e}"))
                    }
                }
                // Connecting without a capability must bounce too.
                if cpu.xfifo_connect(ctx, mallory, fifo.uuid()).is_ok() {
                    return Err(format!("t{t} round {round}: capless cross-tenant connect"));
                }
                ctx.sleep(SimDuration::from_micros(2));
            }
            let _ = fifo.close(ctx);
            Ok(())
        }));
    }

    // Under a kill plan, sweep the dead PU's control-plane state exactly
    // once the crash has landed — the reclaim must stay tenant-scoped.
    if faulty {
        let cl = cluster.clone();
        sim.spawn("supervisor", move |ctx| {
            ctx.sleep(SimDuration::from_micros(500));
            cl.reclaim_pu(ctx, PuId(1));
        });
    }

    Box::new(move |result| {
        result.as_ref().map_err(|e| e.to_string())?;
        for worker in workers {
            worker.take_result().expect("worker finished")?;
        }
        oracle.verdict(false)
    })
}

#[test]
fn tenant_domains_hold_across_schedules() {
    let opts = ExploreOptions { trials: 256, seed: 47, ..ExploreOptions::default() };
    let report = explore_faulty(&opts, FaultPlan::new(47), tenant_scenario);
    report.assert_clean();
    assert!(
        report.distinct_schedules >= 200,
        "only {} distinct schedules in {} trials",
        report.distinct_schedules,
        report.trials_run
    );
}

#[test]
fn tenant_domains_hold_across_kill_and_reclaim() {
    let opts = ExploreOptions { trials: 256, seed: 53, ..ExploreOptions::default() };
    let plan = FaultPlan::new(53)
        .with(SimTime::ZERO + SimDuration::from_micros(300), FaultAction::KillPu(PuId(1)));
    let report = explore_faulty(&opts, plan, tenant_scenario);
    report.assert_clean();
    assert!(
        report.distinct_schedules >= 200,
        "only {} distinct schedules in {} trials",
        report.distinct_schedules,
        report.trials_run
    );
}
