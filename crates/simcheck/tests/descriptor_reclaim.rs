//! Zero-copy descriptor hand-off racing UUID reclamation: DPU writers
//! stream large (descriptor-eligible) payloads at host FIFOs while reapers
//! reclaim the FIFOs' UUIDs mid-stream. Whatever the interleaving: no
//! descriptor may resolve after the close, no arena slot may leak, and
//! every payload that *is* delivered must be byte-identical to what the
//! writer sent.
//!
//! Three identical stream pipelines run side by side — same ops, same
//! charged costs — so they stay tied step for step, giving the explorer a
//! multi-way choice point at every instant.

use bytes::Bytes;
use hetsim::engine::Simulation;
use hetsim::pu::PuId;
use hetsim::time::SimDuration;
use hetsim::topology::Machine;
use molecule_simcheck::explore::{explore, Check, ExploreOptions};
use molecule_simcheck::{ClusterOracle, OracleConfig};
use xpu_shim::{Perm, ShimCluster, ShimConfig};

/// Well past the zero-copy threshold (16 KiB), so every write places its
/// bytes in a shared-segment slot and ships a descriptor.
const PAYLOAD: usize = 64 * 1024;
const MESSAGES: u8 = 6;
const STREAMS: usize = 3;

fn big_payload(seq: u8) -> Bytes {
    Bytes::from(vec![seq; PAYLOAD])
}

fn descriptor_reclaim_scenario(sim: &mut Simulation) -> Check {
    let machine = Machine::paper_cpu_dpu_server();
    let cluster = ShimCluster::deploy(machine, ShimConfig::default());
    let oracle = ClusterOracle::install(sim, &cluster, OracleConfig::default());

    let mut readers = Vec::new();
    for stream in 0..STREAMS {
        let (uuid_tx, uuid_rx) = sim.channel();
        let cl = cluster.clone();
        readers.push(sim.spawn(&format!("reader-{stream}"), move |ctx| {
            let host_shim = cl.shim_on(PuId(0)).unwrap();
            let host = host_shim.attach_process();
            let fifo = host_shim.xfifo_init(ctx, host, format!("zero-copy-{stream}")).unwrap();
            let uuid = fifo.uuid().clone();
            let capv = [(fifo.obj(), Perm::WRITE)];
            let writer_cl = cl.clone();
            let writer_uuid = uuid.clone();
            host_shim
                .xspawn(ctx, host, PuId(1), "zc-writer", &capv, move |wctx, pid| {
                    let dpu = writer_cl.shim_on(PuId(1)).unwrap();
                    if let Ok(w) = dpu.xfifo_connect(wctx, pid, &writer_uuid) {
                        for seq in 0..MESSAGES {
                            // Reclamation can kill the FIFO mid-stream: a
                            // clean shim error is legal, corruption is not.
                            if w.write(wctx, big_payload(seq)).is_err() {
                                break;
                            }
                            wctx.sleep(SimDuration::from_micros(2));
                        }
                    }
                })
                .unwrap();
            uuid_tx.send(uuid).unwrap();

            let mut delivered = Vec::new();
            // A read error — timeout (stream dried up) or reclaim-induced
            // teardown — ends the stream cleanly.
            while let Ok(msg) = fifo.read_timeout(ctx, SimDuration::from_millis(2)) {
                // Byte-identical delivery: the whole payload is one
                // repeated stamp byte.
                let seq = msg[0];
                if msg.len() != PAYLOAD || msg.iter().any(|&b| b != seq) {
                    return Err(format!(
                        "corrupt delivery: seq {seq}, len {} (expected {PAYLOAD})",
                        msg.len()
                    ));
                }
                delivered.push(seq);
                if delivered.len() == MESSAGES as usize {
                    break;
                }
            }
            // Whatever made it through arrived in order, uncorrupted.
            if delivered.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("out-of-order delivery: {delivered:?}"));
            }
            Ok(())
        }));

        let cl = cluster.clone();
        sim.spawn(&format!("reaper-{stream}"), move |ctx| {
            let uuid = uuid_rx.recv(ctx).unwrap();
            // Land the reclaim mid-stream.
            ctx.sleep(SimDuration::from_micros(5));
            cl.reclaim_uuid(ctx, &uuid);
        });
    }

    Box::new(move |result| {
        result.as_ref().map_err(|e| e.to_string())?;
        for reader in readers {
            reader.take_result().expect("reader finished")?;
        }
        // Every placed segment slot must be resolved or reclaimed — a
        // parked slot after the FIFO is gone is a leak.
        oracle.verdict(true)
    })
}

#[test]
fn descriptor_handoff_vs_reclaim_leaks_nothing() {
    let opts = ExploreOptions { trials: 256, seed: 31, ..ExploreOptions::default() };
    let report = explore(&opts, descriptor_reclaim_scenario);
    report.assert_clean();
    assert!(
        report.distinct_schedules >= 200,
        "only {} distinct schedules in {} trials",
        report.distinct_schedules,
        report.trials_run
    );
}
