//! Batch-frame duplicated delivery under schedule exploration: every
//! host→DPU frame (the batched Cfork+Ping, and every retry) is delivered
//! twice, under hundreds of tie-break interleavings. The executors'
//! reply-cache dedup must keep each Cfork exactly-once — one started
//! instance per manager, never two — on every schedule.
//!
//! Two identical managers drive one executor each (the machine has two
//! BlueField DPUs) in lockstep: same ops, same charged costs, so every
//! step of the pipeline is a same-instant tie for the explorer to flip.

use hetsim::engine::Simulation;
use hetsim::pu::{PuId, PuKind};
use hetsim::time::SimDuration;
use hetsim::topology::Machine;
use molecule_core::executor::{launch_executor, ExecutorCommand, ExecutorReply};
use molecule_core::runtime::{Molecule, MoleculeConfig};
use molecule_core::FunctionDef;
use molecule_simcheck::explore::{explore, Check, ExploreOptions};
use vsandbox::spec::{FuncId, LangRuntime};

fn batch_dup_scenario(sim: &mut Simulation) -> Check {
    let m = Molecule::launch(Machine::paper_cpu_dpu_server(), MoleculeConfig::default());
    m.register_function(
        FunctionDef::builder("img", LangRuntime::Python)
            .profiles(&[PuKind::Cpu, PuKind::Dpu])
            .exec_ms(5.0)
            .build(),
    );

    let managers: Vec<_> = [PuId(1), PuId(2)]
        .into_iter()
        .map(|pu| {
            let m2 = m.clone();
            sim.spawn(&format!("manager-{}", pu.0), move |ctx| {
                m2.prepare_template(ctx, pu, LangRuntime::Python)
                    .map_err(|e| format!("template: {e}"))?;
                let exec = launch_executor(&m2, ctx, pu).map_err(|e| format!("launch: {e}"))?;
                // Every host->DPU frame is delivered twice from here on:
                // the executor sees the whole batch again and must replay
                // cached replies, not re-run the commands.
                m2.machine().fault_plane().set_fifo_dup(ctx.now(), PuId(0), pu, 1.0);
                let replies = exec
                    .call_batch(
                        ctx,
                        &[
                            ExecutorCommand::Cfork { func: FuncId::new("img") },
                            ExecutorCommand::Ping,
                        ],
                        SimDuration::from_millis(500),
                    )
                    .map_err(|e| format!("batch: {e}"))?;
                m2.machine().fault_plane().set_fifo_dup(ctx.now(), PuId(0), pu, 0.0);
                exec.shutdown(ctx).map_err(|e| format!("shutdown: {e}"))?;
                Ok::<_, String>(replies)
            })
        })
        .collect();

    Box::new(move |result| {
        result.as_ref().map_err(|e| e.to_string())?;
        for manager in &managers {
            let replies = manager.take_result().expect("manager finished")?;
            if !matches!(replies[0], ExecutorReply::Started { .. }) {
                return Err(format!("cfork reply was {:?}", replies[0]));
            }
            if !matches!(replies[1], ExecutorReply::Pong) {
                return Err(format!("ping reply was {:?}", replies[1]));
            }
        }
        let instances = m.instance_count();
        if instances != managers.len() {
            return Err(format!(
                "exactly-once broken: {} duplicated batches started {instances} instances",
                managers.len()
            ));
        }
        if m.cluster().stats().duplicated_messages == 0 {
            return Err("the dup fault never fired — the scenario tested nothing".into());
        }
        Ok(())
    })
}

#[test]
fn batched_cfork_is_exactly_once_under_duplicated_delivery() {
    let opts = ExploreOptions { trials: 256, seed: 47, ..ExploreOptions::default() };
    let report = explore(&opts, batch_dup_scenario);
    report.assert_clean();
    assert!(
        report.distinct_schedules >= 200,
        "only {} distinct schedules in {} trials",
        report.distinct_schedules,
        report.trials_run
    );
}
