//! Rack-scale coherence under schedule exploration: the shared-state tier
//! stretched across the RDMA fabric of a two-node rack. Masters commit on
//! one node while replicas on the *other* node pull, read and push their
//! own commits, so every transfer rides a `Route::Fabric` leg — and, in
//! the faulty suite, an entire node is killed mid-stream by the chaos
//! plane's `kill-node` verb and its PUs swept one by one, the way the rack
//! front's dead-node sweep does. Whatever the interleaving, the
//! [`StateOracle`] demands capability ownership stays a partition, FIFO
//! UUIDs reclaim exactly once, per-region version vectors stay monotone,
//! no two PUs expose divergent bytes for the same committed version, and
//! no arena slot survives quiescence.
//!
//! Two identical cross-node pipelines run side by side — same ops, same
//! charged costs — so they stay tied step for step, giving the explorer a
//! multi-way choice point at every instant. Regions are 8 pages (32 KiB),
//! past the 16 KiB zero-copy threshold: every pull and remote commit parks
//! its payload in the writer node's segment arena and ships a descriptor
//! across the fabric, so cross-node slot accounting is exercised on every
//! transfer.

use hetsim::engine::{ProcCtx, Simulation};
use hetsim::pu::{NodeId, PuId};
use hetsim::time::{SimDuration, SimTime};
use hetsim::topology::Machine;
use molecule_chaos::{FaultAction, FaultPlan};
use molecule_simcheck::explore::{explore, explore_faulty, Check, ExploreOptions};
use molecule_simcheck::{OracleConfig, StateOracle};
use molecule_state::{RegionSpec, StateError, StateLayer};
use xpu_shim::{ShimCluster, ShimConfig};

/// 8 standard pages = 32 KiB — descriptor-eligible on every transfer.
const PAGES: u64 = 8;
const SIZE: usize = (PAGES * 4096) as usize;
const PIPELINES: usize = 2;
const ROUNDS: u8 = 3;

/// Errors that are legal transients while the mastering node is dead, the
/// region is being re-mastered, or the scenario has already dropped it.
/// Anything else (out-of-bounds, OS-level corruption) is a real violation.
fn tolerable(err: &StateError) -> bool {
    matches!(
        err,
        StateError::Remastered(_)
            | StateError::Shim(_)
            | StateError::UnknownRegion(_)
            | StateError::NotAttached(_, _)
    )
}

/// Attaches with a bounded retry: remotes start concurrently with the
/// master's `create_region` on the far node, so losing that race
/// ([`UnknownRegion`]) just means "not yet".
///
/// [`UnknownRegion`]: StateError::UnknownRegion
fn attach_retrying(
    ctx: &mut ProcCtx,
    layer: &StateLayer,
    pu: PuId,
    region: &str,
) -> Result<(), String> {
    for _ in 0..100 {
        match layer.attach(ctx, pu, region) {
            Ok(_) => return Ok(()),
            Err(StateError::UnknownRegion(_)) => ctx.sleep(SimDuration::from_micros(10)),
            Err(e) => return Err(format!("attach {region} on {pu}: {e}")),
        }
    }
    Err(format!("attach {region} on {pu}: region never appeared"))
}

/// Every committed version is a whole-region write of one stamp byte, so
/// any read of a committed version must be uniform — a mixed read is a
/// torn or half-merged version that leaked across the fabric.
fn check_uniform(who: &str, bytes: &[u8]) -> Result<(), String> {
    if bytes.len() != SIZE {
        return Err(format!("{who}: short read ({} of {SIZE} bytes)", bytes.len()));
    }
    let stamp = bytes[0];
    if bytes.iter().any(|&b| b != stamp) {
        return Err(format!("{who}: torn committed version (stamp {stamp:#x} not uniform)"));
    }
    Ok(())
}

/// Races, per region: the node-0 host committing whole-region versions
/// while node 1's DPU pulls and reads and node 1's host pushes its own
/// remote commits — every leg a fabric crossing. The master drops the
/// region once both remotes are done, so quiescence can demand an empty
/// arena on *both* nodes.
fn cross_node_race_scenario(sim: &mut Simulation) -> Check {
    let machine = Machine::rack(2, 1);
    let cluster = ShimCluster::deploy(machine, ShimConfig::default());
    let layer = StateLayer::new(cluster.clone());
    let oracle = StateOracle::install(sim, &cluster, &layer, OracleConfig::default());

    let mut workers = Vec::new();
    for pipeline in 0..PIPELINES {
        let name = format!("fabric-{pipeline}");
        let (done_tx, done_rx) = sim.channel::<()>();

        let l = layer.clone();
        let region = name.clone();
        workers.push(sim.spawn(&format!("master-{pipeline}"), move |ctx| {
            l.create_region(ctx, PuId(0), RegionSpec::new(&region, PAGES))
                .map_err(|e| format!("create {region}: {e}"))?;
            for round in 1..=ROUNDS {
                l.write(ctx, PuId(0), &region, 0, &[round; SIZE], None)
                    .map_err(|e| format!("master write {region}: {e}"))?;
                l.commit(ctx, PuId(0), &region)
                    .map_err(|e| format!("master commit {region}: {e}"))?;
                ctx.sleep(SimDuration::from_micros(20));
            }
            for _ in 0..2 {
                done_rx.recv(ctx).map_err(|e| format!("master {region}: lost remote: {e}"))?;
            }
            l.drop_region(ctx, &region).map_err(|e| format!("drop {region}: {e}"))?;
            Ok::<(), String>(())
        }));

        let l = layer.clone();
        let region = name.clone();
        let tx = done_tx.clone();
        workers.push(sim.spawn(&format!("far-puller-{pipeline}"), move |ctx| {
            let run = |ctx: &mut ProcCtx| -> Result<(), String> {
                attach_retrying(ctx, &l, PuId(3), &region)?;
                for _ in 0..ROUNDS {
                    l.pull(ctx, PuId(3), &region).map_err(|e| format!("pull: {e}"))?;
                    let bytes = l
                        .read(ctx, PuId(3), &region, 0, SIZE as u64)
                        .map_err(|e| format!("read: {e}"))?;
                    check_uniform(&format!("far-puller-{region}"), &bytes)?;
                    ctx.sleep(SimDuration::from_micros(20));
                }
                Ok(())
            };
            let outcome = run(ctx);
            tx.send(()).ok();
            outcome
        }));

        let l = layer.clone();
        let region = name.clone();
        let tx = done_tx;
        workers.push(sim.spawn(&format!("far-pusher-{pipeline}"), move |ctx| {
            let run = |ctx: &mut ProcCtx| -> Result<(), String> {
                attach_retrying(ctx, &l, PuId(2), &region)?;
                for round in 1..=ROUNDS {
                    l.write(ctx, PuId(2), &region, 0, &[0x80 + round; SIZE], None)
                        .map_err(|e| format!("remote write: {e}"))?;
                    l.commit(ctx, PuId(2), &region).map_err(|e| format!("remote commit: {e}"))?;
                    l.pull(ctx, PuId(2), &region).map_err(|e| format!("pull: {e}"))?;
                    let bytes = l
                        .read(ctx, PuId(2), &region, 0, SIZE as u64)
                        .map_err(|e| format!("read: {e}"))?;
                    check_uniform(&format!("far-pusher-{region}"), &bytes)?;
                    ctx.sleep(SimDuration::from_micros(20));
                }
                Ok(())
            };
            let outcome = run(ctx);
            tx.send(()).ok();
            outcome
        }));
    }

    Box::new(move |result| {
        result.as_ref().map_err(|e| e.to_string())?;
        for h in workers {
            h.take_result().ok_or("worker lost")??;
        }
        // Every region dropped, every descriptor resolved: demand empty
        // arenas on both nodes.
        oracle.verdict(true)
    })
}

#[test]
fn cross_node_commit_pull_races_stay_coherent() {
    let report = explore(&ExploreOptions::default(), cross_node_race_scenario);
    report.assert_clean();
    assert!(
        report.distinct_schedules >= 200,
        "want >= 200 distinct schedules, got {}",
        report.distinct_schedules
    );
}

/// The faulty suite: node 1 — mastering both regions — is killed whole by
/// the chaos plane's `kill-node` verb mid-stream. A supervisor sweeps the
/// dead node's PUs one by one (reclaim + re-master), the way the rack
/// front's dead-node sweep does; racing node-0 writers and readers ride
/// through the crash on legal transients. The oracle demands the version
/// vector survives re-mastering monotonically and nothing leaks.
fn node_kill_scenario(sim: &mut Simulation, plan: &FaultPlan) -> Check {
    let machine = Machine::rack(2, 1);
    let cluster = ShimCluster::deploy(machine.clone(), ShimConfig::default());
    let layer = StateLayer::new(cluster.clone());
    let oracle = StateOracle::install(sim, &cluster, &layer, OracleConfig::default());
    molecule_chaos::spawn_injector(sim, &machine, plan);

    let mut workers = Vec::new();
    for pipeline in 0..PIPELINES {
        let name = format!("rackwal-{pipeline}");

        let l = layer.clone();
        let cl = cluster.clone();
        let m = machine.clone();
        let region = name.clone();
        workers.push(sim.spawn(&format!("supervisor-{pipeline}"), move |ctx| {
            // Master on the doomed node's DPU; survivors attach from node 0.
            l.create_region(ctx, PuId(3), RegionSpec::new(&region, PAGES))
                .map_err(|e| format!("create {region}: {e}"))?;
            // Past the node kill (300us): sweep every PU of the dead node,
            // then re-master its regions onto the freshest survivor.
            ctx.sleep(SimDuration::from_micros(500));
            for pu in m.node_pus(NodeId(1)) {
                cl.reclaim_pu(ctx, pu);
                l.handle_pu_death(ctx, pu);
            }
            // Let the stragglers run out, then tear the region down.
            ctx.sleep(SimDuration::from_millis(4));
            match l.drop_region(ctx, &region) {
                Ok(()) => Ok(()),
                Err(ref e) if tolerable(e) => Ok(()), // lost with its last replica
                Err(e) => Err(format!("drop {region}: {e}")),
            }
        }));

        let l = layer.clone();
        let region = name.clone();
        workers.push(sim.spawn(&format!("writer-{pipeline}"), move |ctx| {
            let mut attached = false;
            for round in 1..=6u8 {
                let result = if attached {
                    l.write(ctx, PuId(0), &region, 0, &[round; SIZE], None)
                        .and_then(|()| l.commit(ctx, PuId(0), &region))
                        .map(|_| ())
                } else {
                    l.attach(ctx, PuId(0), &region).map(|_| attached = true)
                };
                match result {
                    Ok(()) => {}
                    Err(ref e) if tolerable(e) => {}
                    Err(e) => return Err(format!("writer {region}: {e}")),
                }
                ctx.sleep(SimDuration::from_micros(120));
            }
            Ok::<(), String>(())
        }));

        let l = layer.clone();
        let region = name.clone();
        workers.push(sim.spawn(&format!("reader-{pipeline}"), move |ctx| {
            let mut attached = false;
            for _ in 0..6 {
                let result = if attached {
                    l.pull(ctx, PuId(1), &region)
                        .and_then(|_| l.read(ctx, PuId(1), &region, 0, SIZE as u64))
                } else {
                    l.attach(ctx, PuId(1), &region).map(|_| {
                        attached = true;
                        Vec::new()
                    })
                };
                match result {
                    Ok(bytes) if !bytes.is_empty() => {
                        check_uniform(&format!("reader-{region}"), &bytes)?;
                    }
                    Ok(_) => {}
                    Err(ref e) if tolerable(e) => {}
                    Err(e) => return Err(format!("reader {region}: {e}")),
                }
                ctx.sleep(SimDuration::from_micros(120));
            }
            Ok::<(), String>(())
        }));
    }

    Box::new(move |result| {
        result.as_ref().map_err(|e| e.to_string())?;
        for h in workers {
            h.take_result().ok_or("worker lost")??;
        }
        // Regions were dropped (or died with node 1 and were reclaimed);
        // either way no capability or arena slot may survive.
        oracle.verdict(true)
    })
}

#[test]
fn node_kill_sweep_remaster_stays_coherent() {
    let plan = FaultPlan::new(0x7ac4_5eed)
        .with(SimTime::ZERO + SimDuration::from_micros(300), FaultAction::KillNode(NodeId(1)));
    let report = explore_faulty(&ExploreOptions::default(), plan, node_kill_scenario);
    report.assert_clean();
    assert!(
        report.distinct_schedules >= 200,
        "want >= 200 distinct schedules, got {}",
        report.distinct_schedules
    );
}
