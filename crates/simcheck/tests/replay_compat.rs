//! Replay-blob compatibility: `SIMCHECK_REPLAY` artifacts recorded against
//! the pre-overhaul engine (global `BinaryHeap` event queue) must drive the
//! current engine through byte-identical schedules.
//!
//! The golden data below was captured by running the fixed scenario under
//! the seed engine (PR 9's parent commit) with each blob installed as a
//! `ReplayPolicy` and recording the resulting choice log and observed
//! message order. The event-queue overhaul (sharded calendar lanes over a
//! flat arena) must preserve `(time, seq)` pop order exactly, so the same
//! blobs must keep producing the same logs forever.

use molecule_simcheck::explore::{decode_replay, encode_replay};
use molecule_simcheck::ReplayPolicy;

use hetsim::engine::{ChoicePoint, Simulation};

/// The fixed scenario: four same-instant writers racing into one channel,
/// one reader consuming all four messages. Returns `(choice_log, order)`.
fn run_with_blob(blob: &str) -> (Vec<(u32, u32)>, Vec<u32>) {
    let choices = decode_replay(blob).unwrap_or_else(|e| panic!("bad blob {blob:?}: {e}"));
    let mut sim = Simulation::new();
    sim.set_schedule_policy(Box::new(ReplayPolicy::new(choices)));
    let (tx, rx) = sim.channel::<u32>();
    for i in 0..4u32 {
        let tx = tx.clone();
        sim.spawn(&format!("w{i}"), move |_| tx.send(i).unwrap());
    }
    drop(tx);
    let h = sim.spawn("reader", move |ctx| {
        let mut got = Vec::new();
        while let Ok(v) = rx.recv(ctx) {
            got.push(v);
        }
        got
    });
    sim.run().unwrap();
    let log: Vec<(u32, u32)> =
        sim.take_choice_log().iter().map(|c: &ChoicePoint| (c.arity, c.chosen)).collect();
    (log, h.take_result().unwrap())
}

/// Pre-refactor golden: `(blob, expected choice log, expected order)`.
/// Captured on the seed engine; do not regenerate after engine changes —
/// divergence here means recorded replay artifacts broke.
type Golden = (&'static str, &'static [(u32, u32)], &'static [u32]);
const GOLDENS: &[Golden] = &[
    ("v1:0:", &[(5, 0), (4, 0), (3, 0), (2, 0)], &[0, 1, 2, 3]),
    ("v1:16:0.3", &[(5, 3), (4, 0), (3, 0), (2, 0)], &[3, 0, 1, 2]),
    ("v1:16:1.2,3.1", &[(5, 0), (4, 2), (3, 0), (2, 1)], &[0, 3, 1, 2]),
    ("v1:16:0.4,2.2,5.1", &[(5, 4), (4, 0), (4, 2), (3, 0), (2, 0)], &[0, 3, 1, 2]),
];

#[test]
fn pre_refactor_blobs_replay_to_the_same_choice_log() {
    for (blob, want_log, want_order) in GOLDENS {
        let (log, order) = run_with_blob(blob);
        assert_eq!(&log, want_log, "choice log diverged for blob {blob}");
        assert_eq!(&order, want_order, "observed order diverged for blob {blob}");
    }
}

#[test]
fn replay_is_stable_across_reruns() {
    for (blob, _, _) in GOLDENS {
        assert_eq!(run_with_blob(blob), run_with_blob(blob), "blob {blob} not deterministic");
    }
}

#[test]
fn blob_roundtrip_still_works() {
    let blob = "v1:4:1.2,3.1";
    assert_eq!(encode_replay(&decode_replay(blob).unwrap()), blob);
}
