//! Schedule exploration over the cross-PU control plane: `xSpawn` racing
//! grant/revoke churn racing PU death + reclamation, with the cluster
//! invariant oracle watching every step; per-writer FIFO order under
//! every tie-break; and byte-identical schedule replay.

use bytes::Bytes;
use hetsim::engine::{SchedulePolicy, Simulation};
use hetsim::pu::PuId;
use hetsim::time::SimDuration;
use hetsim::topology::Machine;
use molecule_simcheck::explore::{explore, Check, ExploreOptions};
use molecule_simcheck::{
    ClusterOracle, FifoOrderTracker, OracleConfig, ReplayPolicy, ShuffledPolicy,
};
use xpu_shim::{Perm, ShimCluster, ShimConfig};

/// Three racers over one cluster:
///
/// * a *spawner* that `xSpawn`s a DPU child with a WRITE capv and waits for
///   its message;
/// * a *churner* granting and revoking WRITE on its own FIFO in a loop;
/// * a *reaper* that kills the DPU mid-churn and reclaims it twice (the
///   duplicated crash notification the chaos plane can produce).
///
/// Every interleaving must keep the capability table a partition, leak no
/// grants, and reclaim each UUID exactly once — the per-step oracle checks
/// all of it after every event.
fn control_plane_scenario(sim: &mut Simulation) -> Check {
    let machine = Machine::paper_cpu_dpu_server();
    let cluster = ShimCluster::deploy(machine.clone(), ShimConfig::default());
    let oracle = ClusterOracle::install(sim, &cluster, OracleConfig::default());

    let cl = cluster.clone();
    sim.spawn("spawner", move |ctx| {
        let shim = cl.shim_on(PuId(0)).unwrap();
        let host = shim.attach_process();
        let fifo = shim.xfifo_init(ctx, host, "spawn-reply").unwrap();
        let uuid = fifo.uuid().clone();
        let capv = [(fifo.obj(), Perm::WRITE)];
        let child_cl = cl.clone();
        // The child may land on a PU the reaper has already killed, or be
        // reclaimed mid-write: every shim error is legal, silent corruption
        // is not (the oracle decides).
        let spawned = shim.xspawn(ctx, host, PuId(1), "replier", &capv, move |cctx, pid| {
            if let Ok(dpu) = child_cl.shim_on(PuId(1)) {
                if let Ok(w) = dpu.xfifo_connect(cctx, pid, &uuid) {
                    let _ = w.write(cctx, Bytes::from_static(b"hello"));
                }
            }
        });
        let _ = spawned;
        let _ = fifo.read_timeout(ctx, SimDuration::from_millis(5));
    });

    // Identical churners stay in lockstep (same ops, same charged costs),
    // so every round of the loop is a fresh same-instant tie — the raw
    // material the explorer permutes.
    for i in 0..3 {
        let cl = cluster.clone();
        sim.spawn(&format!("churner-{i}"), move |ctx| {
            let host_shim = cl.shim_on(PuId(0)).unwrap();
            let host = host_shim.attach_process();
            let dpu_shim = cl.shim_on(PuId(1)).unwrap();
            let peer = dpu_shim.attach_process();
            let fifo = host_shim.xfifo_init(ctx, host, format!("churn-{i}")).unwrap();
            for _ in 0..4 {
                let _ = host_shim.grant_cap(ctx, host, peer, fifo.obj(), Perm::WRITE);
                let _ = host_shim.revoke_cap(ctx, host, peer, fifo.obj(), Perm::WRITE);
            }
            let _ = fifo.close(ctx);
        });
    }

    let cl = cluster.clone();
    sim.spawn("reaper", move |ctx| {
        ctx.sleep(SimDuration::from_micros(50));
        cl.machine().fault_plane().kill_pu(ctx.now(), PuId(1));
        cl.reclaim_pu(ctx, PuId(1));
        // The duplicated notification must reclaim nothing further.
        let again = cl.reclaim_pu(ctx, PuId(1));
        assert_eq!(again.processes, 0, "duplicate reclaim found processes");
    });

    Box::new(move |result| {
        result.as_ref().map_err(|e| e.to_string())?;
        oracle.verdict(false)
    })
}

#[test]
fn xspawn_grant_revoke_reclaim_races_hold_invariants() {
    let opts = ExploreOptions { trials: 256, seed: 11, ..ExploreOptions::default() };
    let report = explore(&opts, control_plane_scenario);
    report.assert_clean();
    assert!(
        report.distinct_schedules >= 200,
        "only {} distinct schedules in {} trials",
        report.distinct_schedules,
        report.trials_run
    );
}

/// Two DPU writers interleave seq-stamped messages into one host FIFO.
/// Whatever the tie-break, each writer's messages must be delivered in
/// its own send order (per-writer FIFO is the contract `write_fifo`'s
/// strictly-monotone arrival clamp exists to keep).
fn fifo_order_scenario(sim: &mut Simulation) -> hetsim::engine::ProcHandle<Vec<(u64, u64)>> {
    const PER_WRITER: u64 = 12;
    const WRITERS: usize = 4;
    let machine = Machine::paper_cpu_dpu_server();
    let cluster = ShimCluster::deploy(machine, ShimConfig::default());

    let mut txs = Vec::new();
    let mut rxs = Vec::new();
    for _ in 0..WRITERS {
        let (tx, rx) = sim.channel();
        txs.push(tx);
        rxs.push(rx);
    }
    let cl = cluster.clone();
    let reader = sim.spawn("reader", move |ctx| {
        let host_shim = cl.shim_on(PuId(0)).unwrap();
        let host = host_shim.attach_process();
        let dpu_shim = cl.shim_on(PuId(1)).unwrap();
        let fifo = host_shim.xfifo_init(ctx, host, "ordered").unwrap();
        // Build every writer handle first, then hand them out back-to-back
        // (no charged call in between): all writers wake at the same
        // instant and their identical write loops stay tied step for step —
        // every round is a multi-way choice point for the explorer.
        let writers: Vec<_> = (0..WRITERS)
            .map(|_| {
                let pid = dpu_shim.attach_process();
                host_shim.grant_cap(ctx, host, pid, fifo.obj(), Perm::WRITE).unwrap();
                dpu_shim.xfifo_connect(ctx, pid, fifo.uuid()).unwrap()
            })
            .collect();
        for (tx, writer) in txs.into_iter().zip(writers) {
            tx.send(writer).unwrap();
        }
        let mut deliveries = Vec::new();
        while deliveries.len() < WRITERS * PER_WRITER as usize {
            match fifo.read_timeout(ctx, SimDuration::from_millis(10)) {
                Ok(msg) => deliveries.push((u64::from(msg[0]), u64::from(msg[1]))),
                Err(e) => panic!("reader lost messages after {deliveries:?}: {e}"),
            }
        }
        deliveries
    });
    for (id, rx) in (1u8..).zip(rxs) {
        sim.spawn(&format!("writer-{id}"), move |ctx| {
            let writer = rx.recv(ctx).unwrap();
            for seq in 0..PER_WRITER as u8 {
                writer.write(ctx, Bytes::from(vec![id, seq])).unwrap();
                // Equal pacing re-ties the writers after every write.
                ctx.sleep(SimDuration::from_micros(1));
            }
        });
    }

    reader
}

fn fifo_order_check(reader: hetsim::engine::ProcHandle<Vec<(u64, u64)>>) -> Check {
    Box::new(move |result| {
        result.as_ref().map_err(|e| e.to_string())?;
        let mut tracker = FifoOrderTracker::new();
        for (writer, seq) in reader.take_result().unwrap() {
            tracker.note(writer, seq);
        }
        tracker.verdict()
    })
}

#[test]
fn per_writer_fifo_order_holds_under_every_tie_break() {
    let opts = ExploreOptions { trials: 256, seed: 23, ..ExploreOptions::default() };
    let report = explore(&opts, |sim| fifo_order_check(fifo_order_scenario(sim)));
    report.assert_clean();
    assert!(
        report.distinct_schedules >= 200,
        "only {} distinct schedules in {} trials",
        report.distinct_schedules,
        report.trials_run
    );
}

/// A recorded random schedule must replay bit-for-bit: same choice log,
/// same end time, same event count, same message delivery order.
#[test]
fn recorded_schedules_replay_byte_identically() {
    let run = |policy: Box<dyn SchedulePolicy>| {
        let mut sim = Simulation::new();
        sim.set_schedule_policy(policy);
        let reader = fifo_order_scenario(&mut sim);
        let report = sim.run().expect("scenario runs clean");
        let log = sim.take_choice_log();
        let trace = format!(
            "end={:?} events={} deliveries={:?}",
            report.end_time,
            report.events_fired,
            reader.take_result().unwrap()
        );
        (trace, log)
    };

    let (trace_rand, log_rand) = run(Box::new(ShuffledPolicy::new(0xFEED)));
    assert!(!log_rand.is_empty(), "scenario produced no tie points");
    let choices: Vec<u32> = log_rand.iter().map(|c| c.chosen).collect();
    let (trace_replay, log_replay) = run(Box::new(ReplayPolicy::new(choices)));
    assert_eq!(log_rand, log_replay, "replay diverged from the recorded schedule");
    assert_eq!(trace_rand, trace_replay, "replay produced a different execution");

    // And a different seed is a genuinely different schedule (the replay
    // comparison above is not vacuous).
    let (_, log_other) = run(Box::new(ShuffledPolicy::new(0xBEEF)));
    assert_ne!(log_rand, log_other, "two seeds collided on the same schedule");
}
