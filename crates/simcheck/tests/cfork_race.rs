//! Re-introduces the historical concurrent-cfork race (behind
//! `set_unserialized_cfork_for_test`) and checks that schedule exploration
//! finds it and shrinks it to a small repro — and that with the
//! serialization gate in place the same scenario survives the full budget.
//!
//! The race: cfork merges the template's runtime threads to one, forks,
//! then re-expands. Two unserialized cforks can interleave so one forks
//! while the other has already re-expanded the template (fork of a
//! multi-threaded process fails), or leave the template's thread count
//! corrupted. The gate (a one-permit semaphore around merge→fork→expand)
//! is what makes the interleaving safe; this suite is the regression proof.

use hetsim::calib::Calibration;
use hetsim::engine::Simulation;
use hetsim::os::LocalOs;
use hetsim::pu::{PuId, PuSpec};
use molecule_simcheck::explore::{explore, Check, ExploreOptions};
use molecule_simcheck::shrink::nonzero_choices;
use vsandbox::runc::{CforkOpts, RuncRuntime};
use vsandbox::spec::{LangRuntime, SandboxConfig, SandboxId};

fn cfork_race_scenario(unserialized: bool, racers: usize) -> impl FnMut(&mut Simulation) -> Check {
    move |sim| {
        let calib = Calibration::desktop();
        let spec = PuSpec::xeon_host(PuId(0));
        let os = LocalOs::boot(&spec, calib.cpu_os, 64 * 1024);
        let rt = RuncRuntime::new(os, &calib);
        rt.set_unserialized_cfork_for_test(unserialized);

        // The template must exist before the racers start; hand it out
        // through channels back-to-back so every racer wakes at the same
        // instant.
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..racers {
            let (tx, rx) = sim.channel::<SandboxId>();
            txs.push(tx);
            rxs.push(rx);
        }
        let prep_rt = rt.clone();
        let template = sim.spawn("prep", move |ctx| {
            let id = prep_rt.prepare_template(ctx, LangRuntime::Python, 256).unwrap();
            for tx in txs {
                tx.send(id.clone()).unwrap();
            }
            id
        });
        let racers: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let rt = rt.clone();
                sim.spawn(&format!("cfork-{i}"), move |ctx| {
                    let tmpl = rx.recv(ctx).unwrap();
                    let cfg = SandboxConfig::general("image-resize", LangRuntime::Python, 128);
                    rt.cfork(
                        ctx,
                        &tmpl,
                        &SandboxId::new(format!("child-{i}")),
                        &cfg,
                        CforkOpts::default(),
                    )
                })
            })
            .collect();

        let check_rt = rt.clone();
        Box::new(move |result| {
            result.as_ref().map_err(|e| e.to_string())?;
            for h in &racers {
                h.take_result()
                    .expect("racer finished")
                    .map_err(|e| format!("{}: cfork failed: {e}", h.name()))?;
            }
            // Even when both cforks "succeed", the template must be left
            // intact: exactly its three runtime threads.
            let tmpl = template.take_result().expect("template prepared");
            let pid = check_rt.os_pid(&tmpl).ok_or("template process gone")?;
            let threads =
                check_rt.os().process(pid).ok_or("template process unregistered")?.threads;
            if threads != 3 {
                return Err(format!("template left with {threads} threads (expected 3)"));
            }
            Ok(())
        })
    }
}

#[test]
fn unserialized_cfork_race_is_caught_and_shrunk() {
    let opts = ExploreOptions { trials: 128, seed: 5, ..ExploreOptions::default() };
    let report = explore(&opts, cfork_race_scenario(true, 2));
    let v = report.violation.expect("the re-introduced race must be caught");
    assert!(
        v.message.contains("cfork failed") || v.message.contains("threads"),
        "unexpected violation: {}",
        v.message
    );
    assert!(
        nonzero_choices(&v.choices) <= 10,
        "repro not minimal: {} non-default choices in {:?}",
        nonzero_choices(&v.choices),
        v.choices
    );
    assert!(!v.replay.is_empty(), "violation must ship a replay artifact");
}

#[test]
fn serialized_cfork_survives_the_same_schedules() {
    let opts = ExploreOptions { trials: 256, seed: 5, ..ExploreOptions::default() };
    let report = explore(&opts, cfork_race_scenario(false, 4));
    report.assert_clean();
    assert!(
        report.distinct_schedules >= 200,
        "only {} distinct schedules in {} trials",
        report.distinct_schedules,
        report.trials_run
    );
}
