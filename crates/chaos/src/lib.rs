#![warn(missing_docs)]

//! `molecule-chaos` — deterministic fault injection for the Molecule
//! reproduction.
//!
//! The simulator's [`hetsim::fault::FaultPlane`] holds the machine's fault
//! *state*; this crate owns the fault *plans* and drives them in virtual
//! time:
//!
//! * [`plan`] — [`FaultPlan`]: a seeded, ordered schedule of fault actions
//!   (PU crash/hang, link degradation/partition, FIFO loss/duplication,
//!   FPGA bitstream-load failures) with a small text DSL, so scenarios are
//!   data, not code;
//! * [`inject`] — the injector: a simulated process that sleeps to each
//!   event's virtual time and applies it to the machine's fault plane;
//! * [`scenario`] — end-to-end crash-recovery scenarios over the full
//!   stack (XPU-Shim, vsandbox, Molecule, gateway, health checker), each
//!   returning a [`ScenarioReport`] whose event log replays byte-identically
//!   under the same seed.

pub mod inject;
pub mod plan;
pub mod scenario;

pub use inject::{apply, install, spawn_injector, spawn_injector_with_sink};
pub use plan::{FaultAction, FaultEvent, FaultPlan, PlanParseError};
pub use scenario::{dpu_crash_alexa, dpu_crash_plan, ScenarioReport};
