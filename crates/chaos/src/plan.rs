//! Seeded fault plans and their text DSL.
//!
//! A [`FaultPlan`] is the unit of chaos: a sampling seed plus an ordered
//! schedule of [`FaultEvent`]s in virtual time. Plans are plain data — they
//! can be built programmatically or parsed from a small line-oriented DSL:
//!
//! ```text
//! # a DPU crash under lossy nIPC
//! seed 42
//! at 0ms lose pu0 pu1 0.05
//! at 0ms dup pu0 pu1 0.05
//! at 150ms kill pu1
//! at 300ms revive pu1
//! at 10ms hang pu2 for 500us
//! at 20ms degrade pu0 pu2 x4
//! at 30ms heal pu0 pu2
//! at 40ms partition pu0 pu2
//! at 50ms heal-partition pu0 pu2
//! at 60ms fail-fpga pu3 2
//! at 70ms kill-node node1
//! at 80ms revive-node node1
//! at 90ms partition-nodes node0 node1
//! at 95ms heal-nodes node0 node1
//! at 100ms flood-tenant t1 400 2s
//! ```
//!
//! The `node` verbs are rack-level: `kill-node` crashes every PU of one
//! node (the injector expands it against the machine's topology), and
//! `partition-nodes` cuts the inter-node fabric link between two nodes'
//! hosts, severing every cross-node path while leaving both nodes healthy
//! internally.
//!
//! Durations accept `ns`, `us`, `ms` and `s` suffixes. Events are kept
//! sorted by time (stable, so same-instant events apply in written order).

use std::fmt;

use hetsim::pu::{NodeId, PuId};
use hetsim::time::{SimDuration, SimTime};

/// One injectable fault (or repair) action.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Crash a PU: it stops answering xcalls and nIPC entirely.
    KillPu(PuId),
    /// Revive a crashed PU (models flapping hardware).
    RevivePu(PuId),
    /// Hang a PU — alive but unresponsive — for the given window.
    HangPu(PuId, SimDuration),
    /// Multiply the latency of the `a <-> b` link by the factor.
    DegradeLink(PuId, PuId, f64),
    /// Remove a degradation from `a <-> b`.
    HealLink(PuId, PuId),
    /// Cut the `a <-> b` link entirely.
    Partition(PuId, PuId),
    /// Restore a partitioned `a <-> b` link.
    HealPartition(PuId, PuId),
    /// Drop each `from -> to` FIFO message with probability `p`.
    FifoLoss(PuId, PuId, f64),
    /// Deliver each `from -> to` FIFO message twice with probability `p`.
    FifoDup(PuId, PuId, f64),
    /// Fail the next `count` FPGA bitstream loads on the PU.
    FailFpgaLoads(PuId, u32),
    /// Crash every PU of one rack node (node death).
    KillNode(NodeId),
    /// Revive every PU of one rack node.
    ReviveNode(NodeId),
    /// Cut the inter-node fabric between two nodes' hosts.
    PartitionNodes(NodeId, NodeId),
    /// Restore the inter-node fabric between two nodes' hosts.
    HealNodes(NodeId, NodeId),
    /// Flood the platform with requests attributed to one tenant — an
    /// antagonist workload, not a hardware fault. The plain injector logs
    /// it as a no-op; [`spawn_injector_with_sink`] realises it by driving
    /// seeded open-loop Poisson arrivals into the provided submission sink.
    ///
    /// [`spawn_injector_with_sink`]: crate::inject::spawn_injector_with_sink
    FloodTenant {
        /// The flooding tenant's raw id.
        tenant: u32,
        /// Offered load in requests per virtual second.
        rate: f64,
        /// How long the flood lasts.
        dur: SimDuration,
    },
}

/// A [`FaultAction`] scheduled at a virtual-time instant.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When (virtual time from simulation start) the action applies.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// A seeded, ordered schedule of fault events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan with the given sampling seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, events: Vec::new() }
    }

    /// The loss/duplication sampling seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, sorted by time (stable).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Schedules `action` at `at` (builder style).
    #[must_use]
    pub fn with(mut self, at: SimTime, action: FaultAction) -> FaultPlan {
        self.push(at, action);
        self
    }

    /// Schedules `action` at `at`, keeping the schedule sorted.
    pub fn push(&mut self, at: SimTime, action: FaultAction) {
        self.events.push(FaultEvent { at, action });
        self.events.sort_by_key(|e| e.at);
    }

    /// A copy of the plan with event `idx` removed (same seed). The
    /// delta-debugging shrinker calls this to test whether a fault event is
    /// necessary to reproduce an invariant violation.
    ///
    /// Out-of-range indices return an unchanged copy.
    #[must_use]
    pub fn without_event(&self, idx: usize) -> FaultPlan {
        let mut plan = self.clone();
        if idx < plan.events.len() {
            plan.events.remove(idx);
        }
        plan
    }

    /// Parses the text DSL (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// [`PlanParseError`] naming the offending line and what was expected.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::new(0);
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks[0] {
                "seed" => {
                    let [_, n] = expect_arity(&toks, lineno, "seed <u64>")?;
                    plan.seed = n
                        .parse::<u64>()
                        .map_err(|_| PlanParseError::new(lineno, "seed wants a u64"))?;
                }
                "at" => {
                    if toks.len() < 3 {
                        return Err(PlanParseError::new(lineno, "at <time> <verb> ..."));
                    }
                    let at = SimTime::ZERO + parse_duration(toks[1], lineno)?;
                    let action = parse_action(&toks[2..], lineno)?;
                    plan.push(at, action);
                }
                other => {
                    return Err(PlanParseError::new(
                        lineno,
                        &format!("unknown directive `{other}` (want `seed` or `at`)"),
                    ));
                }
            }
        }
        Ok(plan)
    }
}

fn parse_action(toks: &[&str], lineno: usize) -> Result<FaultAction, PlanParseError> {
    match toks[0] {
        "kill" => {
            let [_, pu] = expect_arity(toks, lineno, "kill <pu>")?;
            Ok(FaultAction::KillPu(parse_pu(pu, lineno)?))
        }
        "revive" => {
            let [_, pu] = expect_arity(toks, lineno, "revive <pu>")?;
            Ok(FaultAction::RevivePu(parse_pu(pu, lineno)?))
        }
        "hang" => {
            let [_, pu, kw, dur] = expect_arity(toks, lineno, "hang <pu> for <dur>")?;
            if kw != "for" {
                return Err(PlanParseError::new(lineno, "hang <pu> for <dur>"));
            }
            Ok(FaultAction::HangPu(parse_pu(pu, lineno)?, parse_duration(dur, lineno)?))
        }
        "degrade" => {
            let [_, a, b, f] = expect_arity(toks, lineno, "degrade <pu> <pu> x<factor>")?;
            let factor = f
                .strip_prefix('x')
                .unwrap_or(f)
                .parse::<f64>()
                .map_err(|_| PlanParseError::new(lineno, "degrade wants a factor like x4"))?;
            Ok(FaultAction::DegradeLink(parse_pu(a, lineno)?, parse_pu(b, lineno)?, factor))
        }
        "heal" => {
            let [_, a, b] = expect_arity(toks, lineno, "heal <pu> <pu>")?;
            Ok(FaultAction::HealLink(parse_pu(a, lineno)?, parse_pu(b, lineno)?))
        }
        "partition" => {
            let [_, a, b] = expect_arity(toks, lineno, "partition <pu> <pu>")?;
            Ok(FaultAction::Partition(parse_pu(a, lineno)?, parse_pu(b, lineno)?))
        }
        "heal-partition" => {
            let [_, a, b] = expect_arity(toks, lineno, "heal-partition <pu> <pu>")?;
            Ok(FaultAction::HealPartition(parse_pu(a, lineno)?, parse_pu(b, lineno)?))
        }
        "lose" => {
            let [_, a, b, p] = expect_arity(toks, lineno, "lose <from> <to> <p>")?;
            Ok(FaultAction::FifoLoss(
                parse_pu(a, lineno)?,
                parse_pu(b, lineno)?,
                parse_prob(p, lineno)?,
            ))
        }
        "dup" => {
            let [_, a, b, p] = expect_arity(toks, lineno, "dup <from> <to> <p>")?;
            Ok(FaultAction::FifoDup(
                parse_pu(a, lineno)?,
                parse_pu(b, lineno)?,
                parse_prob(p, lineno)?,
            ))
        }
        "fail-fpga" => {
            let [_, pu, n] = expect_arity(toks, lineno, "fail-fpga <pu> <count>")?;
            let count = n
                .parse::<u32>()
                .map_err(|_| PlanParseError::new(lineno, "fail-fpga wants a count"))?;
            Ok(FaultAction::FailFpgaLoads(parse_pu(pu, lineno)?, count))
        }
        "kill-node" => {
            let [_, node] = expect_arity(toks, lineno, "kill-node <node>")?;
            Ok(FaultAction::KillNode(parse_node(node, lineno)?))
        }
        "revive-node" => {
            let [_, node] = expect_arity(toks, lineno, "revive-node <node>")?;
            Ok(FaultAction::ReviveNode(parse_node(node, lineno)?))
        }
        "partition-nodes" => {
            let [_, a, b] = expect_arity(toks, lineno, "partition-nodes <node> <node>")?;
            Ok(FaultAction::PartitionNodes(parse_node(a, lineno)?, parse_node(b, lineno)?))
        }
        "heal-nodes" => {
            let [_, a, b] = expect_arity(toks, lineno, "heal-nodes <node> <node>")?;
            Ok(FaultAction::HealNodes(parse_node(a, lineno)?, parse_node(b, lineno)?))
        }
        "flood-tenant" => {
            let [_, t, rate, dur] = expect_arity(toks, lineno, "flood-tenant t<id> <rate> <dur>")?;
            let tenant =
                t.strip_prefix('t').and_then(|n| n.parse::<u32>().ok()).ok_or_else(|| {
                    PlanParseError::new(lineno, &format!("`{t}` is not a tenant (want tN)"))
                })?;
            let rate =
                rate.parse::<f64>().ok().filter(|r| r.is_finite() && *r > 0.0).ok_or_else(
                    || PlanParseError::new(lineno, "flood-tenant wants a positive rate"),
                )?;
            Ok(FaultAction::FloodTenant { tenant, rate, dur: parse_duration(dur, lineno)? })
        }
        other => Err(PlanParseError::new(lineno, &format!("unknown fault verb `{other}`"))),
    }
}

/// Destructures `toks` into exactly `N` tokens or reports the usage string.
fn expect_arity<'a, const N: usize>(
    toks: &[&'a str],
    lineno: usize,
    usage: &str,
) -> Result<[&'a str; N], PlanParseError> {
    <[&'a str; N]>::try_from(toks).map_err(|_| PlanParseError::new(lineno, usage))
}

fn parse_pu(tok: &str, lineno: usize) -> Result<PuId, PlanParseError> {
    tok.strip_prefix("pu")
        .and_then(|n| n.parse::<u16>().ok())
        .map(PuId)
        .ok_or_else(|| PlanParseError::new(lineno, &format!("`{tok}` is not a PU (want puN)")))
}

fn parse_node(tok: &str, lineno: usize) -> Result<NodeId, PlanParseError> {
    tok.strip_prefix("node")
        .and_then(|n| n.parse::<u16>().ok())
        .map(NodeId)
        .ok_or_else(|| PlanParseError::new(lineno, &format!("`{tok}` is not a node (want nodeN)")))
}

fn parse_prob(tok: &str, lineno: usize) -> Result<f64, PlanParseError> {
    match tok.parse::<f64>() {
        Ok(p) if (0.0..=1.0).contains(&p) => Ok(p),
        _ => Err(PlanParseError::new(lineno, &format!("`{tok}` is not a probability in [0, 1]"))),
    }
}

fn parse_duration(tok: &str, lineno: usize) -> Result<SimDuration, PlanParseError> {
    let err = || PlanParseError::new(lineno, &format!("`{tok}` is not a duration (want 5ms/3us)"));
    let split = tok.find(|c: char| c.is_ascii_alphabetic()).ok_or_else(err)?;
    let (num, unit) = tok.split_at(split);
    let value: f64 = num.parse().map_err(|_| err())?;
    let nanos = match unit {
        "ns" => value,
        "us" => value * 1e3,
        "ms" => value * 1e6,
        "s" => value * 1e9,
        _ => return Err(err()),
    };
    if nanos.is_nan() || nanos < 0.0 {
        return Err(err());
    }
    Ok(SimDuration::from_nanos(nanos as u64))
}

/// A syntax error in the fault-plan DSL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line the error is on.
    pub line: usize,
    /// What the parser expected.
    pub expected: String,
}

impl PlanParseError {
    fn new(line: usize, expected: &str) -> PlanParseError {
        PlanParseError { line, expected: expected.to_owned() }
    }
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.expected)
    }
}

impl std::error::Error for PlanParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb_with_comments_and_blank_lines() {
        let plan = FaultPlan::parse(
            "# full grammar\n\
             seed 42\n\
             \n\
             at 150ms kill pu1   # crash\n\
             at 300ms revive pu1\n\
             at 10ms hang pu2 for 500us\n\
             at 20ms degrade pu0 pu2 x4\n\
             at 30ms heal pu0 pu2\n\
             at 40ms partition pu0 pu2\n\
             at 50ms heal-partition pu0 pu2\n\
             at 0ms lose pu0 pu1 0.2\n\
             at 0ms dup pu0 pu1 0.1\n\
             at 60ms fail-fpga pu3 2\n",
        )
        .unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.events().len(), 10);
        // Sorted by time; same-instant events keep written order.
        assert_eq!(plan.events()[0].action, FaultAction::FifoLoss(PuId(0), PuId(1), 0.2));
        assert_eq!(plan.events()[1].action, FaultAction::FifoDup(PuId(0), PuId(1), 0.1));
        let last = plan.events().last().unwrap();
        assert_eq!(last.at, SimTime::ZERO + SimDuration::from_millis(300));
        assert_eq!(last.action, FaultAction::RevivePu(PuId(1)));
    }

    #[test]
    fn duration_units_and_hang_window() {
        let plan = FaultPlan::parse("at 1.5ms hang pu1 for 2us\n").unwrap();
        let ev = &plan.events()[0];
        assert_eq!(ev.at, SimTime::ZERO + SimDuration::from_nanos(1_500_000));
        assert_eq!(ev.action, FaultAction::HangPu(PuId(1), SimDuration::from_nanos(2_000)));
    }

    #[test]
    fn errors_name_the_line_and_expectation() {
        let err = FaultPlan::parse("seed 1\nat 5ms explode pu1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.expected.contains("explode"), "{err}");
        assert!(FaultPlan::parse("at 5 kill pu1").is_err(), "missing unit");
        assert!(FaultPlan::parse("at 5ms kill cpu1").is_err(), "bad pu token");
        assert!(FaultPlan::parse("at 5ms lose pu0 pu1 1.5").is_err(), "p out of range");
        assert!(FaultPlan::parse("at 5ms hang pu1 until 3ms").is_err(), "bad keyword");
        assert!(FaultPlan::parse("frobnicate").is_err(), "unknown directive");
    }

    #[test]
    fn flood_tenant_verb_parses_and_rejects_garbage() {
        let plan = FaultPlan::parse("seed 5\nat 100ms flood-tenant t1 400 2s\n").unwrap();
        assert_eq!(
            plan.events()[0].action,
            FaultAction::FloodTenant { tenant: 1, rate: 400.0, dur: SimDuration::from_secs(2) }
        );
        assert!(FaultPlan::parse("at 1ms flood-tenant pu1 400 2s").is_err(), "bad tenant token");
        assert!(FaultPlan::parse("at 1ms flood-tenant t1 -3 2s").is_err(), "negative rate");
        assert!(FaultPlan::parse("at 1ms flood-tenant t1 400").is_err(), "missing duration");
    }

    #[test]
    fn builder_keeps_events_sorted() {
        let plan = FaultPlan::new(7)
            .with(SimTime::ZERO + SimDuration::from_millis(9), FaultAction::KillPu(PuId(2)))
            .with(SimTime::ZERO + SimDuration::from_millis(1), FaultAction::KillPu(PuId(1)));
        assert_eq!(plan.events()[0].action, FaultAction::KillPu(PuId(1)));
        assert_eq!(plan.events()[1].action, FaultAction::KillPu(PuId(2)));
    }
}
