//! End-to-end crash-recovery scenarios over the full Molecule stack.
//!
//! The flagship scenario, [`dpu_crash_alexa`], runs the ServerlessBench
//! Alexa skill chain (re-profiled to prefer the DPUs) against the paper's
//! CPU+DPU server while a seeded [`FaultPlan`] makes the host↔DPU nIPC
//! path lossy and duplicating, then kills both DPUs mid-run. The health
//! checker detects each crash, runs the reclamation/purge pipeline, and
//! the gateway fails requests over — first to the surviving DPU, then
//! (degraded) to the CPU cost table. The returned [`ScenarioReport`]
//! carries the fault plane's ordered event log: the same seed replays it
//! byte-identically.

use std::collections::{BTreeMap, HashMap};

use hetsim::engine::Simulation;
use hetsim::pu::{PuId, PuKind};
use hetsim::time::{SimDuration, SimTime};
use hetsim::topology::Machine;
use molecule_core::executor::launch_executor;
use molecule_core::keepalive::Lru;
use molecule_core::schedule::Scheduler;
use molecule_core::{
    ApiGateway, GatewayConfig, HealthChecker, HealthPolicy, Molecule, MoleculeConfig,
    RecoveryReport,
};
use vsandbox::spec::FuncId;

use crate::inject;
use crate::plan::FaultPlan;

/// Outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The fault plan's sampling seed.
    pub seed: u64,
    /// Requests the driver issued.
    pub issued: usize,
    /// Requests that completed (zero-loss means `issued == completed`).
    pub completed: usize,
    /// Requests that failed outright (`issued - completed`).
    pub lost: usize,
    /// Completed requests served on a different PU than the same
    /// function's previous request (re-routes after crashes).
    pub rerouted: usize,
    /// Times the driver's executor ping gave a PU up and moved to the
    /// next live executor.
    pub executor_failovers: usize,
    /// Gateway requests transparently retried away from a failed PU.
    pub failed_over: u64,
    /// Requests served on a non-preferred PU kind because the preferred
    /// kind was entirely gone (DPU functions on the CPU cost table).
    pub degraded: u64,
    /// Completed requests per serving PU, sorted by PU.
    pub requests_per_pu: Vec<(PuId, usize)>,
    /// Every crashed-PU recovery the health checker ran, in order.
    pub recoveries: Vec<RecoveryReport>,
    /// The fault plane's ordered event log — the replay artifact.
    pub event_log: Vec<String>,
}

impl ScenarioReport {
    /// Detection latency of the first crash (crash → declared dead).
    pub fn detect_latency(&self) -> Option<SimDuration> {
        self.recoveries.first().map(|r| r.detect_latency)
    }

    /// Recovery latency of the first crash (declared dead → reclamation,
    /// purge and failover marking finished).
    pub fn recovery_latency(&self) -> Option<SimDuration> {
        self.recoveries.first().map(|r| r.recovery_latency)
    }
}

/// The seeded plan behind [`dpu_crash_alexa`]: lossy, duplicating nIPC
/// between the host and the first DPU from the start, then both DPUs
/// crash mid-run.
pub fn dpu_crash_plan(seed: u64) -> FaultPlan {
    FaultPlan::parse(&format!(
        "seed {seed}\n\
         at 0ms lose pu0 pu1 0.2\n\
         at 0ms lose pu1 pu0 0.2\n\
         at 0ms dup pu0 pu1 0.2\n\
         at 8000ms kill pu1\n\
         at 8800ms kill pu2\n"
    ))
    .expect("static plan parses")
}

/// Runs the DPU-crash-under-Alexa scenario (see the module docs).
///
/// The driver issues waves of requests to the five Alexa functions
/// (re-profiled to prefer the DPUs) and pings its primary live executor
/// each wave through the fault-tolerant keyed-retry path; the injector
/// kills `pu1` and later `pu2` while traffic is in flight.
pub fn dpu_crash_alexa(seed: u64) -> ScenarioReport {
    let machine = Machine::paper_cpu_dpu_server();
    let plan = dpu_crash_plan(seed);
    let molecule = Molecule::launch(machine.clone(), MoleculeConfig::default());
    for mut def in workloads::serverlessbench::alexa_chain() {
        // Prefer the DPUs so the crashes sit in the request path.
        def.profiles = vec![PuKind::Dpu, PuKind::Cpu];
        molecule.register_function(def);
    }
    let gateway = ApiGateway::new(
        molecule.clone(),
        Scheduler::default(),
        GatewayConfig::default(),
        Box::new(Lru::new()),
    );
    let health = HealthChecker::new(gateway.clone(), HealthPolicy::default());

    let mut sim = Simulation::new();
    inject::spawn_injector(&mut sim, &machine, &plan);

    // Health daemon: probe until well past the end of traffic.
    let hc = health.clone();
    sim.spawn("health", move |ctx| {
        hc.run(ctx, 20_000);
    });

    let gw = gateway.clone();
    let mol = molecule.clone();
    let driver = sim.spawn("driver", move |ctx| {
        mol.bootstrap(ctx).expect("bootstrap");
        gw.prepare_all_templates(ctx).expect("templates");
        let chain: Vec<FuncId> =
            workloads::serverlessbench::alexa_chain().iter().map(|d| d.id.clone()).collect();
        // Live executors on both DPUs: the keyed-retry nIPC path under
        // loss/duplication, with by-hand failover when a PU is given up.
        let executors = [
            launch_executor(&mol, ctx, PuId(1)).expect("executor on pu1"),
            launch_executor(&mol, ctx, PuId(2)).expect("executor on pu2"),
        ];
        let ping_deadline = SimDuration::from_micros(500);
        let mut primary = 0usize;
        let mut executor_failovers = 0usize;
        let mut issued = 0usize;
        let mut completed = 0usize;
        let mut rerouted = 0usize;
        let mut last_pu: HashMap<FuncId, PuId> = HashMap::new();
        let mut per_pu: BTreeMap<PuId, usize> = BTreeMap::new();
        // Keep traffic flowing until both scheduled crashes are behind us.
        let horizon = SimTime::ZERO + SimDuration::from_millis(9_500);
        let mut wave = 0usize;
        while wave < 12 || ctx.now() < horizon {
            for func in &chain {
                issued += 1;
                if let Ok(report) = gw.handle_request(ctx, func, 1024) {
                    completed += 1;
                    *per_pu.entry(report.pu).or_insert(0) += 1;
                    if let Some(prev) = last_pu.insert(func.clone(), report.pu) {
                        if prev != report.pu {
                            rerouted += 1;
                        }
                    }
                }
            }
            while primary < executors.len() && !executors[primary].ping(ctx, ping_deadline) {
                executor_failovers += 1;
                primary += 1;
            }
            ctx.sleep(SimDuration::from_millis(1));
            wave += 1;
        }
        (issued, completed, rerouted, executor_failovers, per_pu)
    });
    sim.run().expect("scenario simulation");
    let (issued, completed, rerouted, executor_failovers, per_pu) =
        driver.take_result().expect("driver result");
    let stats = gateway.stats();
    ScenarioReport {
        seed,
        issued,
        completed,
        lost: issued - completed,
        rerouted,
        executor_failovers,
        failed_over: stats.failed_over,
        degraded: stats.degraded,
        requests_per_pu: per_pu.into_iter().collect(),
        recoveries: health.recoveries(),
        event_log: machine.fault_plane().event_log(),
    }
}
