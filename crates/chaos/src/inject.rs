//! The fault injector: applies a [`FaultPlan`] to a machine in virtual time.

use hetsim::engine::{ProcCtx, Simulation};
use hetsim::time::SimTime;
use hetsim::topology::Machine;

use crate::plan::{FaultAction, FaultPlan};

/// Installs the plan's seed on the machine's fault plane. Called once
/// before the simulation starts so the same seed always produces the same
/// loss/duplication pattern.
pub fn install(machine: &Machine, plan: &FaultPlan) {
    machine.fault_plane().reseed(plan.seed());
}

/// Applies one action to the machine's fault plane at `now`.
pub fn apply(machine: &Machine, now: SimTime, action: &FaultAction) {
    let plane = machine.fault_plane();
    match *action {
        FaultAction::KillPu(pu) => plane.kill_pu(now, pu),
        FaultAction::RevivePu(pu) => plane.revive_pu(now, pu),
        FaultAction::HangPu(pu, for_) => plane.hang_pu(now, pu, for_),
        FaultAction::DegradeLink(a, b, factor) => plane.degrade_link(now, a, b, factor),
        FaultAction::HealLink(a, b) => plane.heal_link(now, a, b),
        FaultAction::Partition(a, b) => plane.partition(now, a, b),
        FaultAction::HealPartition(a, b) => plane.heal_partition(now, a, b),
        FaultAction::FifoLoss(from, to, p) => plane.set_fifo_loss(now, from, to, p),
        FaultAction::FifoDup(from, to, p) => plane.set_fifo_dup(now, from, to, p),
        FaultAction::FailFpgaLoads(pu, count) => plane.fail_fpga_loads(now, pu, count),
    }
    telemetry::with(|r| r.metrics().counter_add("chaos.injected", 1));
}

/// Installs the plan and spawns the injector process: it sleeps to each
/// event's virtual time and applies it, in schedule order.
pub fn spawn_injector(sim: &mut Simulation, machine: &Machine, plan: &FaultPlan) {
    install(machine, plan);
    let machine = machine.clone();
    let plan = plan.clone();
    sim.spawn("chaos-injector", move |ctx: &mut ProcCtx| {
        for event in plan.events() {
            if event.at > ctx.now() {
                ctx.sleep(event.at - ctx.now());
            }
            apply(&machine, ctx.now(), &event.action);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::time::SimDuration;

    #[test]
    fn injector_applies_events_at_their_virtual_times() {
        let machine = Machine::paper_cpu_dpu_server();
        let plan = FaultPlan::parse(
            "seed 9\n\
             at 2ms degrade pu0 pu1 x3\n\
             at 5ms kill pu1\n\
             at 8ms revive pu1\n",
        )
        .unwrap();
        let mut sim = Simulation::new();
        spawn_injector(&mut sim, &machine, &plan);
        let machine2 = machine.clone();
        sim.spawn("observer", move |ctx| {
            let plane = machine2.fault_plane();
            ctx.sleep(SimDuration::from_millis(3));
            assert_eq!(plane.link_factor(hetsim::pu::PuId(0), hetsim::pu::PuId(1)), 3.0);
            assert!(!plane.is_dead(hetsim::pu::PuId(1)));
            ctx.sleep(SimDuration::from_millis(3));
            assert!(plane.is_dead(hetsim::pu::PuId(1)));
            ctx.sleep(SimDuration::from_millis(3));
            assert!(!plane.is_dead(hetsim::pu::PuId(1)));
        });
        sim.run().unwrap();
        assert_eq!(machine.fault_plane().seed(), 9);
        let log = machine.fault_plane().event_log();
        assert_eq!(log.len(), 3);
        assert!(log[0].contains("degrade"), "{log:?}");
        assert!(log[1].starts_with("[     5000000ns]"), "{log:?}");
    }
}
