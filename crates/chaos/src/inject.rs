//! The fault injector: applies a [`FaultPlan`] to a machine in virtual time.

use hetsim::engine::{ProcCtx, Simulation};
use hetsim::time::SimTime;
use hetsim::topology::Machine;

use crate::plan::{FaultAction, FaultPlan};

/// Installs the plan's seed on the machine's fault plane. Called once
/// before the simulation starts so the same seed always produces the same
/// loss/duplication pattern.
pub fn install(machine: &Machine, plan: &FaultPlan) {
    machine.fault_plane().reseed(plan.seed());
}

/// Applies one action to the machine's fault plane at `now`.
pub fn apply(machine: &Machine, now: SimTime, action: &FaultAction) {
    let plane = machine.fault_plane();
    match *action {
        FaultAction::KillPu(pu) => plane.kill_pu(now, pu),
        FaultAction::RevivePu(pu) => plane.revive_pu(now, pu),
        FaultAction::HangPu(pu, for_) => plane.hang_pu(now, pu, for_),
        FaultAction::DegradeLink(a, b, factor) => plane.degrade_link(now, a, b, factor),
        FaultAction::HealLink(a, b) => plane.heal_link(now, a, b),
        FaultAction::Partition(a, b) => plane.partition(now, a, b),
        FaultAction::HealPartition(a, b) => plane.heal_partition(now, a, b),
        FaultAction::FifoLoss(from, to, p) => plane.set_fifo_loss(now, from, to, p),
        FaultAction::FifoDup(from, to, p) => plane.set_fifo_dup(now, from, to, p),
        FaultAction::FailFpgaLoads(pu, count) => plane.fail_fpga_loads(now, pu, count),
        // Node-level verbs expand against the machine's topology: plans can
        // name a node without spelling out which PUs it holds.
        FaultAction::KillNode(node) => {
            for pu in machine.node_pus(node) {
                plane.kill_pu(now, pu);
            }
        }
        FaultAction::ReviveNode(node) => {
            for pu in machine.node_pus(node) {
                plane.revive_pu(now, pu);
            }
        }
        FaultAction::PartitionNodes(a, b) => {
            if let Some((ha, hb)) = node_hosts(machine, a, b) {
                plane.partition(now, ha, hb);
            }
        }
        FaultAction::HealNodes(a, b) => {
            if let Some((ha, hb)) = node_hosts(machine, a, b) {
                plane.heal_partition(now, ha, hb);
            }
        }
        // Not a hardware fault: nothing to flip on the fault plane. The
        // flood is realised by `spawn_injector_with_sink`; without a sink
        // the event is a logged no-op, so hardware-only harnesses can
        // replay mixed plans unchanged.
        FaultAction::FloodTenant { tenant, .. } => {
            telemetry::counter_add_tenant("chaos.flood_noop", tenant, 1);
        }
    }
    telemetry::with(|r| r.metrics().counter_add("chaos.injected", 1));
}

/// Both nodes' host PUs, or `None` when either node is not in the machine
/// (a plan written for a bigger rack is a no-op on the smaller one).
fn node_hosts(
    machine: &Machine,
    a: hetsim::pu::NodeId,
    b: hetsim::pu::NodeId,
) -> Option<(hetsim::pu::PuId, hetsim::pu::PuId)> {
    let count = machine.node_count() as u16;
    (a.raw() < count && b.raw() < count).then(|| (machine.node_host(a), machine.node_host(b)))
}

/// Installs the plan and spawns the injector process: it sleeps to each
/// event's virtual time and applies it, in schedule order.
pub fn spawn_injector(sim: &mut Simulation, machine: &Machine, plan: &FaultPlan) {
    install(machine, plan);
    let machine = machine.clone();
    let plan = plan.clone();
    sim.spawn("chaos-injector", move |ctx: &mut ProcCtx| {
        for event in plan.events() {
            if event.at > ctx.now() {
                ctx.sleep(event.at - ctx.now());
            }
            apply(&machine, ctx.now(), &event.action);
        }
    });
}

/// Like [`spawn_injector`], but realises `flood-tenant` events: each one
/// gets its own flooder process driving seeded open-loop Poisson arrivals
/// into `sink` (typically a gateway submit on the antagonist tenant's
/// behalf), so a long flood never delays later fault events.
///
/// The arrival pattern is a pure function of the plan seed, the tenant id
/// and the event's position in the plan — replays are byte-identical, and
/// two floods in one plan don't share an RNG stream.
///
/// Hardware events still run on the plain injector; `flood-tenant` events
/// reach [`apply`] as logged no-ops there.
pub fn spawn_injector_with_sink<F>(
    sim: &mut Simulation,
    machine: &Machine,
    plan: &FaultPlan,
    sink: F,
) where
    F: FnMut(&mut ProcCtx, u32, u64) + Clone + Send + 'static,
{
    for (idx, event) in plan.events().iter().enumerate() {
        let FaultAction::FloodTenant { tenant, rate, dur } = event.action.clone() else {
            continue;
        };
        let start = event.at;
        let seed = plan.seed() ^ u64::from(tenant).rotate_left(17) ^ ((idx as u64) << 1);
        let mut sink = sink.clone();
        sim.spawn(&format!("chaos-flood-t{tenant}"), move |ctx: &mut ProcCtx| {
            if start > ctx.now() {
                ctx.sleep(start - ctx.now());
            }
            let mut arrivals = workloads::generator::PoissonArrivals::new(rate, seed);
            let end = start + dur;
            let mut sent = 0u64;
            loop {
                let at = start + (arrivals.next_arrival() - SimTime::ZERO);
                if at >= end {
                    break;
                }
                if at > ctx.now() {
                    ctx.sleep(at - ctx.now());
                }
                sink(ctx, tenant, sent);
                telemetry::counter_add_tenant("chaos.flood", tenant, 1);
                sent += 1;
            }
        });
    }
    spawn_injector(sim, machine, plan);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::time::SimDuration;

    #[test]
    fn injector_applies_events_at_their_virtual_times() {
        let machine = Machine::paper_cpu_dpu_server();
        let plan = FaultPlan::parse(
            "seed 9\n\
             at 2ms degrade pu0 pu1 x3\n\
             at 5ms kill pu1\n\
             at 8ms revive pu1\n",
        )
        .unwrap();
        let mut sim = Simulation::new();
        spawn_injector(&mut sim, &machine, &plan);
        let machine2 = machine.clone();
        sim.spawn("observer", move |ctx| {
            let plane = machine2.fault_plane();
            ctx.sleep(SimDuration::from_millis(3));
            assert_eq!(plane.link_factor(hetsim::pu::PuId(0), hetsim::pu::PuId(1)), 3.0);
            assert!(!plane.is_dead(hetsim::pu::PuId(1)));
            ctx.sleep(SimDuration::from_millis(3));
            assert!(plane.is_dead(hetsim::pu::PuId(1)));
            ctx.sleep(SimDuration::from_millis(3));
            assert!(!plane.is_dead(hetsim::pu::PuId(1)));
        });
        sim.run().unwrap();
        assert_eq!(machine.fault_plane().seed(), 9);
        let log = machine.fault_plane().event_log();
        assert_eq!(log.len(), 3);
        assert!(log[0].contains("degrade"), "{log:?}");
        assert!(log[1].starts_with("[     5000000ns]"), "{log:?}");
    }

    #[test]
    fn flood_tenant_drives_a_seeded_replayable_arrival_stream() {
        use std::sync::{Arc, Mutex};

        fn run(plan_text: &str) -> Vec<(u64, u32, u64)> {
            let machine = Machine::paper_cpu_dpu_server();
            let plan = FaultPlan::parse(plan_text).unwrap();
            let mut sim = Simulation::new();
            let log: Arc<Mutex<Vec<(u64, u32, u64)>>> = Arc::new(Mutex::new(Vec::new()));
            let sink_log = Arc::clone(&log);
            spawn_injector_with_sink(&mut sim, &machine, &plan, move |ctx, tenant, i| {
                sink_log.lock().unwrap().push((ctx.now().as_nanos(), tenant, i));
            });
            sim.run().unwrap();
            Arc::try_unwrap(log).unwrap().into_inner().unwrap()
        }

        let text = "seed 11\nat 1ms flood-tenant t3 2000 50ms\nat 10ms kill pu1\n";
        let a = run(text);
        let b = run(text);
        assert_eq!(a, b, "same seed must replay byte-identically");
        assert!(a.len() > 50, "2000 rps for 50ms should land ~100 arrivals, got {}", a.len());
        let start = SimTime::ZERO + SimDuration::from_millis(1);
        let end = start + SimDuration::from_millis(50);
        for (at, tenant, _) in &a {
            assert_eq!(*tenant, 3);
            let at = SimTime::ZERO + SimDuration::from_nanos(*at);
            assert!(at >= start && at < end, "arrival outside the flood window");
        }
        assert_eq!(a.last().unwrap().2 as usize, a.len() - 1, "arrival index is dense");
        // A different seed shifts the arrival pattern.
        let c = run("seed 12\nat 1ms flood-tenant t3 2000 50ms\nat 10ms kill pu1\n");
        assert_ne!(a, c, "different seed must change the arrival pattern");
    }

    #[test]
    fn node_verbs_expand_against_the_rack_topology() {
        use hetsim::pu::{NodeId, PuId};
        // rack(2, 2): node 0 = {pu0..pu2}, node 1 = {pu3..pu5}.
        let machine = Machine::rack(2, 2);
        let plan = FaultPlan::parse(
            "seed 3\n\
             at 1ms partition-nodes node0 node1\n\
             at 2ms kill-node node1\n\
             at 3ms revive-node node1\n\
             at 4ms heal-nodes node0 node1\n",
        )
        .unwrap();
        let mut sim = Simulation::new();
        spawn_injector(&mut sim, &machine, &plan);
        let m = machine.clone();
        sim.spawn("observer", move |ctx| {
            let plane = m.fault_plane();
            ctx.sleep(SimDuration::from_nanos(1_500_000));
            // Fabric cut: every cross-node path is severed, same-node fine.
            assert!(m.path_cut(PuId(1), PuId(4)));
            assert!(!m.path_cut(PuId(1), PuId(2)));
            ctx.sleep(SimDuration::from_millis(1));
            for pu in m.node_pus(NodeId(1)) {
                assert!(plane.is_dead(pu), "{pu} should be dead with its node");
            }
            assert!(!plane.is_dead(PuId(0)), "node 0 survives");
            ctx.sleep(SimDuration::from_millis(1));
            assert!(!plane.is_dead(PuId(3)));
            ctx.sleep(SimDuration::from_millis(1));
            assert!(!m.path_cut(PuId(1), PuId(4)), "fabric healed");
        });
        sim.run().unwrap();
        // A node-sized plan against a single machine is a no-op, not a panic.
        let single = Machine::paper_cpu_dpu_server();
        apply(&single, SimTime::ZERO, &FaultAction::PartitionNodes(NodeId(0), NodeId(1)));
        apply(&single, SimTime::ZERO, &FaultAction::KillNode(NodeId(1)));
        assert!(!single.fault_plane().is_dead(PuId(0)));
    }
}
