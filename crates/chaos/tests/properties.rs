//! Property tests for crash-recovery invariants (the reclamation paths the
//! chaos plane actually triggers):
//!
//! * no capability in a dead PU's `CAP_Group` remains grantable after the
//!   crash is reclaimed;
//! * FIFO UUIDs are reclaimed exactly once, even when reclamation requests
//!   are duplicated.

use hetsim::engine::Simulation;
use hetsim::pu::PuId;
use hetsim::time::SimTime;
use hetsim::topology::Machine;
use proptest::prelude::*;
use xpu_shim::{GlobalUuid, Perm, ShimCluster, ShimConfig, XpuPid};

proptest! {
    #[test]
    fn dead_pu_cap_groups_are_not_grantable_after_reclaim(
        n_procs in 1usize..4,
        n_caps in 1usize..5,
    ) {
        let machine = Machine::paper_cpu_dpu_server();
        let cluster = ShimCluster::deploy(machine.clone(), ShimConfig::default());
        let mut sim = Simulation::new();
        let cl = cluster.clone();
        let mach = machine.clone();
        sim.spawn("driver", move |ctx| {
            let host_shim = cl.shim_on(PuId(0)).unwrap();
            let host = host_shim.attach_process();
            let dpu_shim = cl.shim_on(PuId(1)).unwrap();

            // Host-owned FIFOs whose WRITE caps get granted to DPU procs.
            let mut objs = Vec::new();
            for i in 0..n_caps {
                let fifo = host_shim.xfifo_init(ctx, host, format!("cap-fifo-{i}")).unwrap();
                objs.push(fifo.obj());
            }
            let mut dpu_pids: Vec<XpuPid> = Vec::new();
            for _ in 0..n_procs {
                let pid = dpu_shim.attach_process();
                for obj in &objs {
                    host_shim.grant_cap(ctx, host, pid, *obj, Perm::WRITE).unwrap();
                }
                dpu_pids.push(pid);
            }
            for pid in &dpu_pids {
                assert_eq!(cl.cap_count(*pid), Some(n_caps));
            }

            mach.fault_plane().kill_pu(ctx.now(), PuId(1));
            let report = cl.reclaim_pu(ctx, PuId(1));
            assert!(report.processes >= n_procs, "{report:?}");
            assert!(report.caps_dropped >= n_procs * n_caps, "{report:?}");

            // The dead procs' CAP_Groups are gone: nothing can be granted
            // to them, and they can grant nothing.
            for pid in &dpu_pids {
                assert!(!cl.has_process(*pid));
                assert_eq!(cl.cap_count(*pid), None);
                assert!(
                    host_shim.grant_cap(ctx, host, *pid, objs[0], Perm::WRITE).is_err(),
                    "grant to a reclaimed process must fail"
                );
                assert!(
                    host_shim.grant_cap(ctx, *pid, host, objs[0], Perm::WRITE).is_err(),
                    "grant by a reclaimed process must fail"
                );
            }
            assert!(cl.pids_on(PuId(1)).is_empty());
        });
        sim.run().unwrap();
    }

    #[test]
    fn fifo_uuids_are_reclaimed_exactly_once_under_duplicated_requests(
        n_fifos in 1usize..6,
        extra_rounds in 1usize..4,
    ) {
        let machine = Machine::paper_cpu_dpu_server();
        let cluster = ShimCluster::deploy(machine.clone(), ShimConfig::default());
        let mut sim = Simulation::new();
        let cl = cluster.clone();
        let mach = machine.clone();
        sim.spawn("driver", move |ctx| {
            let dpu_shim = cl.shim_on(PuId(1)).unwrap();
            let owner = dpu_shim.attach_process();
            let mut uuids: Vec<GlobalUuid> = Vec::new();
            for i in 0..n_fifos {
                let fifo = dpu_shim.xfifo_init(ctx, owner, format!("dpu-fifo-{i}")).unwrap();
                uuids.push(fifo.uuid().clone());
            }

            mach.fault_plane().kill_pu(ctx.now(), PuId(1));
            let report = cl.reclaim_pu(ctx, PuId(1));
            assert_eq!(report.fifos_reclaimed, n_fifos, "{report:?}");

            // A duplicated crash notification (the at-least-once world the
            // chaos plane creates) must not double-free any UUID.
            for _ in 0..extra_rounds {
                let again = cl.reclaim_pu(ctx, PuId(1));
                assert_eq!(again.fifos_reclaimed, 0, "{again:?}");
                assert_eq!(again.processes, 0, "{again:?}");
                for uuid in &uuids {
                    assert!(!cl.reclaim_uuid(ctx, uuid), "second reclaim must be a no-op");
                    assert!(!cl.fifo_exists(uuid));
                }
            }
            assert_eq!(
                cl.stats().reclaimed_uuids,
                n_fifos as u64,
                "each UUID counted exactly once"
            );
        });
        sim.run().unwrap();
    }
}

/// Crash a PU while the fault plane clock is mid-simulation: the plane's
/// death time feeds detection latency, so it must round-trip.
#[test]
fn death_time_round_trips_through_the_plane() {
    let machine = Machine::paper_cpu_dpu_server();
    let t = SimTime::ZERO + hetsim::time::SimDuration::from_millis(3);
    machine.fault_plane().kill_pu(t, PuId(2));
    assert_eq!(machine.fault_plane().death_time(PuId(2)), Some(t));
    assert_eq!(machine.fault_plane().dead_pus(), vec![PuId(2)]);
}
