//! The flagship DPU-crash scenario: zero lost requests, visible failover
//! and degradation, and a populated recovery report.

use hetsim::pu::PuId;
use molecule_chaos::dpu_crash_alexa;

#[test]
fn dpu_crash_mid_alexa_loses_nothing_and_fails_over() {
    let report = dpu_crash_alexa(42);

    // Every issued request completed: in-flight and subsequent work was
    // re-routed, not dropped.
    assert!(report.issued > 20, "the driver issued real traffic: {report:?}");
    assert_eq!(report.lost, 0, "zero lost requests: {report:?}");
    assert_eq!(report.completed, report.issued);

    // Both DPUs were declared dead and recovered, in order.
    let pus: Vec<PuId> = report.recoveries.iter().map(|r| r.pu).collect();
    assert_eq!(pus, vec![PuId(1), PuId(2)], "{report:?}");
    for rec in &report.recoveries {
        assert!(rec.reclaim.processes >= 1, "executor pids reclaimed: {rec:?}");
        assert!(rec.recovery_latency.as_nanos() > 0, "{rec:?}");
    }

    // The driver's executor pings failed over off both dead DPUs, and
    // requests moved PUs after each crash.
    assert!(report.executor_failovers >= 1, "{report:?}");
    assert!(report.rerouted >= 1, "{report:?}");

    // With every DPU gone, the DPU-preferring chain degraded to the CPU.
    assert!(report.degraded >= 1, "{report:?}");
    let cpu_served =
        report.requests_per_pu.iter().find(|(pu, _)| *pu == PuId(0)).map_or(0, |(_, n)| *n);
    assert!(cpu_served >= 1, "CPU absorbed the degraded tail: {report:?}");

    // The event log recorded both the faults and the recoveries.
    let log = report.event_log.join("\n");
    assert!(log.contains("fault: kill pu1"), "{log}");
    assert!(log.contains("fault: kill pu2"), "{log}");
    assert!(log.contains("declared dead"), "{log}");
}
