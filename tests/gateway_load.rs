//! Integration: the API gateway under load — warm-pool behaviour, arrival
//! processes, auto-scaling, and cost accounting.

use hetsim::engine::Simulation;
use hetsim::pu::{PuId, PuKind};
use hetsim::time::SimDuration;
use hetsim::topology::Machine;
use molecule_core::gateway::{ApiGateway, GatewayConfig};
use molecule_core::keepalive::Lru;
use molecule_core::runtime::{Molecule, MoleculeConfig, StartupKind};
use molecule_core::schedule::Scheduler;
use vsandbox::spec::{FuncId, LangRuntime};
use workloads::generator::PoissonArrivals;
use workloads::serverlessbench;

fn gateway() -> ApiGateway {
    let molecule = Molecule::launch(Machine::paper_cpu_dpu_server(), MoleculeConfig::default());
    molecule.register_function(serverlessbench::image_processing());
    molecule.register_function(serverlessbench::helloworld());
    ApiGateway::new(molecule, Scheduler::default(), GatewayConfig::default(), Box::new(Lru::new()))
}

#[test]
fn poisson_load_is_mostly_warm_after_the_first_request() {
    let gw = gateway();
    let mut sim = Simulation::new();
    let g = gw.clone();
    let out = sim.spawn("load", move |ctx| {
        g.molecule().bootstrap(ctx).unwrap();
        g.prepare_all_templates(ctx).unwrap();
        let mut arrivals = PoissonArrivals::new(20.0, 7); // 20 req/s
        let mut latencies = Vec::new();
        for _ in 0..40 {
            let at = arrivals.next_arrival();
            let wait = at.saturating_duration_since(ctx.now());
            ctx.sleep(wait);
            let r = g.handle_request(ctx, &FuncId::new("sb-image-process"), 2048).unwrap();
            latencies.push(r);
        }
        latencies
    });
    sim.run().unwrap();
    let reports = out.take_result().unwrap();
    let stats = gw.stats();
    assert_eq!(stats.cold_starts + stats.warm_hits, 40);
    // Sequential closed-ish load on one function: one cold start suffices.
    assert_eq!(stats.cold_starts, 1);
    assert!(reports[0].cold_start);
    assert!(reports[1..].iter().all(|r| !r.cold_start));
    // Warm requests are dominated by the 14.1ms handler.
    let warm = reports[1].latency.as_millis_f64();
    assert!((14.0..=15.5).contains(&warm), "warm latency {warm}ms");
}

#[test]
fn two_functions_share_the_machine_without_interference() {
    let gw = gateway();
    let mut sim = Simulation::new();
    let g = gw.clone();
    sim.spawn("load", move |ctx| {
        g.molecule().bootstrap(ctx).unwrap();
        g.prepare_all_templates(ctx).unwrap();
        for i in 0..10 {
            let func = if i % 2 == 0 { "sb-image-process" } else { "helloworld" };
            g.handle_request(ctx, &FuncId::new(func), 256).unwrap();
        }
    });
    sim.run().unwrap();
    let stats = gw.stats();
    assert_eq!(stats.cold_starts, 2, "one cold start per function");
    assert_eq!(stats.warm_hits, 8);
    assert_eq!(gw.live_instances(), 2);
}

#[test]
fn scale_up_path_is_configurable_per_deployment() {
    // The same load served via cold-baseline scale-up costs much more
    // startup time overall — the homo-vs-molecule contrast at gateway level.
    let run_with = |how: StartupKind| {
        let molecule = Molecule::launch(Machine::paper_cpu_dpu_server(), MoleculeConfig::default());
        molecule.register_function(serverlessbench::image_processing());
        let gw = ApiGateway::new(
            molecule,
            Scheduler::default(),
            GatewayConfig { scale_up: how, max_warm_per_function: 0, ..GatewayConfig::default() },
            Box::new(Lru::new()),
        );
        let mut sim = Simulation::new();
        let g = gw.clone();
        let out = sim.spawn("load", move |ctx| {
            g.molecule().bootstrap(ctx).unwrap();
            g.prepare_all_templates(ctx).unwrap();
            let t0 = ctx.now();
            for _ in 0..5 {
                g.handle_request(ctx, &FuncId::new("sb-image-process"), 1024).unwrap();
            }
            ctx.now() - t0
        });
        sim.run().unwrap();
        (out.take_result().unwrap(), gw.stats())
    };
    let (molecule_total, m_stats) = run_with(StartupKind::CforkLocal);
    let (homo_total, h_stats) = run_with(StartupKind::ColdBaseline);
    assert_eq!(m_stats.cold_starts, 5, "warm pool disabled: every request cold");
    assert_eq!(h_stats.cold_starts, 5);
    let ratio = homo_total.ratio(molecule_total);
    assert!(ratio > 5.0, "cold-baseline scale-up should cost >5x, got {ratio}");
}

#[test]
fn dpu_overflow_when_the_cpu_fills_up() {
    // Fill the CPU's instance memory; the scheduler must overflow new
    // placements onto a DPU (the Fig. 2a story at the gateway level).
    let gw = gateway();
    let mut sim = Simulation::new();
    let g = gw.clone();
    let out = sim.spawn("load", move |ctx| {
        g.molecule().bootstrap(ctx).unwrap();
        g.prepare_all_templates(ctx).unwrap();
        let machine = g.molecule().machine().clone();
        let cpu_os = machine.os(PuId(0)).unwrap();
        let free = cpu_os.usable_mib() - cpu_os.reserved_mib();
        cpu_os.try_reserve_mib(free - 100).unwrap(); // < one 128MiB instance left
        let r = g.handle_request(ctx, &FuncId::new("sb-image-process"), 512).unwrap();
        machine.pu(r.pu).unwrap().kind
    });
    sim.run().unwrap();
    assert_eq!(out.take_result().unwrap(), PuKind::Dpu);
}

/// One full open-loop run against the scheduling gateway; returns the
/// resolved outcomes (in submit order) and the gateway stats.
fn open_loop_sched_run(
    rate: f64,
    n: usize,
    seed: u64,
) -> (Vec<molecule_sched::JobOutcome>, molecule_sched::SchedStats) {
    use molecule_sched::{SchedConfig, SchedGateway, SubmitOpts};
    let molecule = Molecule::launch(Machine::paper_cpu_dpu_server(), MoleculeConfig::default());
    molecule.register_function(serverlessbench::image_processing());
    let api = ApiGateway::new(
        molecule,
        Scheduler::default(),
        GatewayConfig::default(),
        Box::new(Lru::new()),
    );
    let gw = SchedGateway::new(api, SchedConfig::default());
    let mut sim = Simulation::new();
    let g = gw.clone();
    let out = sim.spawn("load", move |ctx| {
        g.api().molecule().bootstrap(ctx).unwrap();
        g.api().prepare_all_templates(ctx).unwrap();
        g.start(ctx);
        let arrivals = workloads::generator::open_loop_arrivals(rate, n, seed);
        let mut rxs = Vec::new();
        // submit() is non-blocking (the reply arrives on a channel), so the
        // arrival process never waits on completions: a true open loop.
        workloads::generator::drive_open_loop(ctx, &arrivals, |ctx, _| {
            rxs.push(g.submit(ctx, &FuncId::new("sb-image-process"), 2048, SubmitOpts::default()));
        });
        let outcomes: Vec<_> =
            rxs.into_iter().filter_map(Result::ok).map(|rx| rx.recv(ctx).unwrap()).collect();
        g.shutdown();
        outcomes
    });
    sim.run().unwrap();
    (out.take_result().unwrap(), gw.stats())
}

#[test]
fn open_loop_poisson_load_completes_without_loss_or_shedding() {
    use molecule_sched::JobOutcome;
    // 50 req/s against a machine that sustains far more: nothing sheds.
    let (outcomes, stats) = open_loop_sched_run(50.0, 60, 7);
    assert_eq!(stats.submitted, 60);
    assert_eq!(stats.completed, 60, "low load must complete everything: {stats:?}");
    assert_eq!(stats.shed + stats.rejected + stats.failed, 0);
    assert!(outcomes.iter().all(|o| matches!(o, JobOutcome::Completed { .. })));
}

#[test]
fn open_loop_runs_are_deterministic_per_seed() {
    let (a, sa) = open_loop_sched_run(200.0, 80, 13);
    let (b, sb) = open_loop_sched_run(200.0, 80, 13);
    assert_eq!(sa, sb, "same seed, same stats");
    assert_eq!(a, b, "same seed, same outcome sequence");
    let (_, sc) = open_loop_sched_run(200.0, 80, 14);
    assert_eq!(sc.submitted, 80, "different seed still conserves requests");
}

#[test]
fn idle_reaping_frees_capacity_for_new_functions() {
    let gw = gateway();
    let mut sim = Simulation::new();
    let g = gw.clone();
    let out = sim.spawn("load", move |ctx| {
        g.molecule().bootstrap(ctx).unwrap();
        g.prepare_all_templates(ctx).unwrap();
        g.handle_request(ctx, &FuncId::new("sb-image-process"), 512).unwrap();
        let reserved_before = g.molecule().machine().os(PuId(0)).unwrap().reserved_mib();
        ctx.sleep(SimDuration::from_secs(1200));
        // LRU with a capacity of 64 keeps everything; shrink by reaping with
        // a zero-capacity sweep via a fresh policy decision: simulate the
        // operator forcing a reap by retiring through the policy window.
        let reaped = g.reap_idle(ctx).unwrap();
        let reserved_after = g.molecule().machine().os(PuId(0)).unwrap().reserved_mib();
        (reserved_before, reaped, reserved_after)
    });
    sim.run().unwrap();
    let (before, reaped, after) = out.take_result().unwrap();
    // LRU keeps the function in its keep set, so nothing reaps...
    assert_eq!(reaped, 0);
    assert_eq!(before, after);
    let _ = LangRuntime::Python; // silence unused import paths on some cfgs
}
