//! Integration: boot the full heterogeneous machine and exercise the whole
//! stack — multi-OS boot, cross-PU spawn with capabilities, every sandbox
//! runtime, and the end-to-end serverless paths.

use bytes::Bytes;
use hetsim::engine::Simulation;
use hetsim::pu::{PuId, PuKind};
use hetsim::time::SimDuration;
use hetsim::topology::Machine;
use molecule_core::function::{ExecModel, FunctionDef};
use molecule_core::runtime::{Molecule, MoleculeConfig, StartupKind};
use vsandbox::spec::{FuncId, LangRuntime};
use workloads::matrix;
use xpu_shim::cap::Perm;

#[test]
fn full_machine_boots_with_every_device_class() {
    let machine = Machine::full_heterogeneous();
    assert_eq!(machine.pus().len(), 5); // CPU + 2 DPU + FPGA + GPU
    assert_eq!(machine.pus_of_kind(PuKind::Dpu).len(), 2);
    // Three local OSes = the paper's multi-OS system.
    let oses = machine.pus().iter().filter(|p| machine.os(p.id).is_some()).count();
    assert_eq!(oses, 3);
    assert!(machine.fpga(machine.pus_of_kind(PuKind::Fpga)[0]).is_some());
    assert!(machine.gpu(machine.pus_of_kind(PuKind::Gpu)[0]).is_some());
}

#[test]
fn molecule_runs_cpu_dpu_and_fpga_functions_on_one_machine() {
    let machine = Machine::full_heterogeneous();
    let fpga = machine.pus_of_kind(PuKind::Fpga)[0];
    let molecule = Molecule::launch(machine, MoleculeConfig::default());
    molecule.register_function(
        FunctionDef::builder("py-fn", LangRuntime::Python)
            .profiles(&[PuKind::Cpu, PuKind::Dpu])
            .exec_ms(5.0)
            .build(),
    );
    molecule.register_function(
        FunctionDef::builder("hw-fn", LangRuntime::OpenCl)
            .profiles(&[PuKind::Fpga])
            .fpga(matrix::kernel_spec("madd"), ExecModel::Fixed(SimDuration::from_micros(60)))
            .build(),
    );

    let mut sim = Simulation::new();
    let m = molecule.clone();
    let out = sim.spawn("gateway", move |ctx| {
        m.bootstrap(ctx).unwrap();
        m.prepare_template(ctx, PuId(0), LangRuntime::Python).unwrap();
        m.prepare_template(ctx, PuId(1), LangRuntime::Python).unwrap();

        let on_cpu =
            m.start_instance(ctx, &"py-fn".into(), PuId(0), StartupKind::CforkLocal).unwrap();
        let on_dpu = m
            .start_instance(
                ctx,
                &"py-fn".into(),
                PuId(1),
                StartupKind::CforkXpu { issued_from: PuId(0) },
            )
            .unwrap();
        let on_fpga =
            m.start_instance(ctx, &"hw-fn".into(), fpga, StartupKind::ColdBaseline).unwrap();

        let cpu_exec = m.invoke(ctx, on_cpu.instance, 1024).unwrap().latency;
        let dpu_exec = m.invoke(ctx, on_dpu.instance, 1024).unwrap().latency;
        let fpga_exec = m.invoke(ctx, on_fpga.instance, 1024).unwrap().latency;
        (cpu_exec, dpu_exec, fpga_exec)
    });
    sim.run().unwrap();
    let (cpu_exec, dpu_exec, fpga_exec) = out.take_result().unwrap();
    // The same Python function runs ~6.2x slower on the BF-1 DPU.
    let ratio = dpu_exec.ratio(cpu_exec);
    assert!((5.5..=7.0).contains(&ratio), "DPU/CPU exec ratio {ratio}");
    // FPGA invocation = DMA + dispatch + 60us kernel, well under a ms.
    assert!(fpga_exec < SimDuration::from_millis(1));
    assert_eq!(molecule.executor_count(), 2);
    assert_eq!(molecule.meter().invocations(), 3);
}

#[test]
fn cross_pu_capability_flow_via_xspawn() {
    // A manager on the CPU creates a FIFO, xSpawns a worker on the DPU with
    // exactly the write capability, and the worker (and only the worker)
    // can feed it.
    let machine = Machine::paper_cpu_dpu_server();
    let cluster = xpu_shim::cluster::ShimCluster::deploy(machine, Default::default());
    let mut sim = Simulation::new();
    let c = cluster.clone();
    let out = sim.spawn("manager", move |ctx| {
        let cpu = c.shim_on(PuId(0)).unwrap();
        let me = cpu.attach_process();
        let inbox = cpu.xfifo_init(ctx, me, "manager-inbox").unwrap();
        let uuid = inbox.uuid().clone();
        let obj = inbox.obj();
        let c2 = c.clone();
        cpu.xspawn(ctx, me, PuId(1), "worker", &[(obj, Perm::WRITE)], move |wctx, wpid| {
            let dpu = c2.shim_on(PuId(1)).unwrap();
            let w = dpu.xfifo_connect(wctx, wpid, &uuid).unwrap();
            w.write(wctx, Bytes::from_static(b"from-the-dpu")).unwrap();
        })
        .unwrap();
        // A stranger without the capability cannot connect.
        let stranger = cpu.attach_process();
        let denied = cpu.xfifo_connect(ctx, stranger, &inbox.uuid().clone());
        let msg = inbox.read(ctx).unwrap();
        (denied.is_err(), msg)
    });
    sim.run().unwrap();
    let (denied, msg) = out.take_result().unwrap();
    assert!(denied);
    assert_eq!(&msg[..], b"from-the-dpu");
}

#[test]
fn gpu_functions_coexist_with_the_rest() {
    let machine = Machine::full_heterogeneous();
    let gpu = machine.pus_of_kind(PuKind::Gpu)[0];
    let molecule = Molecule::launch(machine, MoleculeConfig::default());
    let rung = molecule.rung(gpu).expect("runG deployed on the GPU").clone();
    let mut sim = Simulation::new();
    let out = sim.spawn("gateway", move |ctx| {
        use vsandbox::oci::VectorizedRuntime;
        use vsandbox::spec::{SandboxConfig, SandboxId};
        let entries: Vec<(SandboxId, SandboxConfig)> = (0..4)
            .map(|i| {
                (
                    SandboxId::new(format!("g{i}")),
                    SandboxConfig {
                        func: FuncId::new(format!("kern{i}")),
                        lang: LangRuntime::Cuda,
                        memory_mib: 256,
                        fpga_kernel: None,
                    },
                )
            })
            .collect();
        rung.create_vec(ctx, &entries).unwrap();
        let ids: Vec<SandboxId> = entries.iter().map(|(i, _)| i.clone()).collect();
        rung.start_vec(ctx, &ids).unwrap();
        for id in &ids {
            rung.invoke(ctx, id, SimDuration::from_micros(200)).unwrap();
        }
        rung.device().resident_kernels()
    });
    sim.run().unwrap();
    assert_eq!(out.take_result().unwrap(), 4);
}

#[test]
fn billing_reflects_pu_prices_end_to_end() {
    let molecule = Molecule::launch(Machine::paper_cpu_dpu_server(), MoleculeConfig::default());
    molecule.register_function(
        FunctionDef::builder("f", LangRuntime::Python)
            .profiles(&[PuKind::Cpu, PuKind::Dpu])
            .exec_ms(10.0)
            .build(),
    );
    let mut sim = Simulation::new();
    let m = molecule.clone();
    sim.spawn("gateway", move |ctx| {
        m.bootstrap(ctx).unwrap();
        m.prepare_template(ctx, PuId(0), LangRuntime::Python).unwrap();
        m.prepare_template(ctx, PuId(1), LangRuntime::Python).unwrap();
        let a = m.start_instance(ctx, &"f".into(), PuId(0), StartupKind::CforkLocal).unwrap();
        let b = m.start_instance(ctx, &"f".into(), PuId(1), StartupKind::CforkLocal).unwrap();
        m.invoke(ctx, a.instance, 0).unwrap();
        m.invoke(ctx, b.instance, 0).unwrap();
    });
    sim.run().unwrap();
    let meter = molecule.meter();
    let cpu = meter.total_for(PuKind::Cpu);
    let dpu = meter.total_for(PuKind::Dpu);
    // The DPU ran 6.2x longer but at 0.4x the price: 62ms * 0.4 = 24.8 vs
    // 10ms * 1.0 = 10.
    assert!(cpu > 0.0 && dpu > 0.0);
    assert!((2.0..=3.0).contains(&(dpu / cpu)), "dpu/cpu billing ratio {}", dpu / cpu);
}
