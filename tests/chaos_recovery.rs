//! Seeded crash-recovery end-to-end: a DPU crash mid-run under the Alexa
//! workload completes with zero lost requests, and the whole scenario —
//! fault injection, loss/duplication sampling, detection, reclamation,
//! failover — replays byte-identically under the same seed.

use molecule_chaos::dpu_crash_alexa;

#[test]
fn dpu_crash_scenario_replays_byte_identically_under_the_same_seed() {
    let first = dpu_crash_alexa(7);
    let second = dpu_crash_alexa(7);

    // Deterministic replay: the ordered fault/recovery event log is the
    // replay artifact and must match byte for byte.
    assert_eq!(first.event_log, second.event_log);
    assert_eq!(first.issued, second.issued);
    assert_eq!(first.completed, second.completed);
    assert_eq!(first.recoveries, second.recoveries);
    assert_eq!(first.requests_per_pu, second.requests_per_pu);

    // Zero lost requests: everything in flight was re-routed.
    assert_eq!(first.lost, 0, "{first:?}");
    assert!(first.rerouted >= 1, "{first:?}");
    assert!(first.executor_failovers >= 1, "{first:?}");
    assert_eq!(first.recoveries.len(), 2, "both DPUs recovered: {first:?}");
}

#[test]
fn different_seeds_diverge_in_loss_sampling_but_not_in_outcome() {
    let a = dpu_crash_alexa(1);
    let b = dpu_crash_alexa(2);
    // The seeds drive nIPC loss/duplication sampling, so the logs differ...
    assert_ne!(a.event_log, b.event_log);
    // ...but recovery holds regardless of the loss pattern.
    assert_eq!(a.lost, 0);
    assert_eq!(b.lost, 0);
    assert_eq!(a.recoveries.len(), 2);
    assert_eq!(b.recoveries.len(), 2);
}
