//! Integration: function chains end to end — Alexa over nIPC, MapReduce,
//! and FPGA chains with warm/cold transitions.

use hetsim::engine::Simulation;
use hetsim::pu::{PuId, PuKind};
use hetsim::time::SimDuration;
use hetsim::topology::Machine;
use molecule_core::dag::{run_chain, ChainSpec, ChainStage, CommMethod};
use molecule_core::runtime::{Molecule, MoleculeConfig};
use workloads::serverlessbench::{alexa_chain, mapreduce_chain};

fn cpu_dpu_molecule_with_chains() -> Molecule {
    let m = Molecule::launch(Machine::paper_cpu_dpu_server(), MoleculeConfig::default());
    for def in alexa_chain() {
        m.register_function(def);
    }
    for def in mapreduce_chain() {
        m.register_function(def);
    }
    m
}

#[test]
fn alexa_all_cross_pu_still_beats_baseline() {
    let molecule = cpu_dpu_molecule_with_chains();
    let mut sim = Simulation::new();
    let m = molecule.clone();
    let out = sim.spawn("driver", move |ctx| {
        let names =
            ["alexa-frontend", "alexa-interact", "alexa-smarthome", "alexa-door", "alexa-light"];
        let stages: Vec<ChainStage> = names
            .iter()
            .enumerate()
            .map(|(i, n)| ChainStage::new(*n, if i % 2 == 0 { PuId(0) } else { PuId(1) }))
            .collect();
        let ipc = run_chain(
            &m,
            ctx,
            &ChainSpec::new("x-ipc", stages.clone(), CommMethod::DirectIpc).rounds(3),
        )
        .unwrap();
        let http = run_chain(
            &m,
            ctx,
            &ChainSpec::new("x-http", stages, CommMethod::HttpGateway).rounds(3),
        )
        .unwrap();
        (ipc.mean_end_to_end(), http.mean_end_to_end())
    });
    sim.run().unwrap();
    let (ipc, http) = out.take_result().unwrap();
    assert!(ipc < http, "nIPC chain {ipc} must beat HTTP chain {http}");
    // Every inter-function call crossed a PU and the chain still completed
    // with sub-ms hops.
    assert!(http.ratio(ipc) > 1.3);
}

#[test]
fn mapreduce_repeats_are_deterministic() {
    let run_once = || {
        let molecule = cpu_dpu_molecule_with_chains();
        let mut sim = Simulation::new();
        let m = molecule.clone();
        let out = sim.spawn("driver", move |ctx| {
            let stages: Vec<ChainStage> = ["mr-split", "mr-map", "mr-reduce"]
                .iter()
                .map(|n| ChainStage::new(*n, PuId(0)))
                .collect();
            run_chain(&m, ctx, &ChainSpec::new("mr", stages, CommMethod::DirectIpc).rounds(5))
                .unwrap()
                .end_to_end
        });
        sim.run().unwrap();
        out.take_result().unwrap()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "the simulation must be bit-for-bit deterministic");
    assert_eq!(a.len(), 5);
}

#[test]
fn chain_rounds_amortize_nothing_but_stay_stable() {
    // Pre-wired chains serve every round at the same latency (no hidden
    // warm-up effects in the communication path).
    let molecule = cpu_dpu_molecule_with_chains();
    let mut sim = Simulation::new();
    let m = molecule.clone();
    let out = sim.spawn("driver", move |ctx| {
        let stages: Vec<ChainStage> = ["mr-split", "mr-map", "mr-reduce"]
            .iter()
            .map(|n| ChainStage::new(*n, PuId(1)))
            .collect();
        run_chain(&m, ctx, &ChainSpec::new("st", stages, CommMethod::DirectIpc).rounds(4))
            .unwrap()
            .end_to_end
    });
    sim.run().unwrap();
    let rounds = out.take_result().unwrap();
    for w in rounds.windows(2) {
        assert_eq!(w[0], w[1], "round latencies must be identical");
    }
}

#[test]
fn fpga_chain_survives_image_replacement() {
    // Run a chain, evict its image with an unrelated create, run it again:
    // the second run must re-start from the cached image and produce the
    // same steady-state latency.
    use molecule_core::function::{ExecModel, FunctionDef};
    use vsandbox::spec::LangRuntime;
    use workloads::matrix;

    let machine = Machine::paper_f1_instance();
    let fpga = machine.pus_of_kind(PuKind::Fpga)[0];
    let molecule = Molecule::launch(machine, MoleculeConfig::default());
    for i in 0..3 {
        molecule.register_function(
            FunctionDef::builder(format!("k{i}"), LangRuntime::OpenCl)
                .profiles(&[PuKind::Fpga])
                .fpga(
                    matrix::kernel_spec(&format!("k{i}")),
                    ExecModel::Fixed(SimDuration::from_micros(50)),
                )
                .output_bytes(4096)
                .build(),
        );
    }
    molecule.register_function(
        FunctionDef::builder("evictor", LangRuntime::OpenCl)
            .profiles(&[PuKind::Fpga])
            .fpga(matrix::kernel_spec("evictor"), ExecModel::Fixed(SimDuration::from_micros(1)))
            .build(),
    );

    let mut sim = Simulation::new();
    let m = molecule.clone();
    let out = sim.spawn("driver", move |ctx| {
        let stages: Vec<ChainStage> =
            (0..3).map(|i| ChainStage::new(format!("k{i}"), fpga)).collect();
        let spec = ChainSpec::new("fc", stages, CommMethod::FpgaShm).input_bytes(4096);
        let first = run_chain(&m, ctx, &spec).unwrap().mean_end_to_end();
        // Evict: a fresh create replaces the image on the fabric.
        m.cache_fpga_functions(ctx, fpga, &["evictor".into()]).unwrap();
        let second = run_chain(&m, ctx, &spec).unwrap().mean_end_to_end();
        (first, second)
    });
    sim.run().unwrap();
    let (first, second) = out.take_result().unwrap();
    assert_eq!(first, second, "steady-state chain latency must be restored after re-flash");
}
