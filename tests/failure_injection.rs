//! Integration: failure injection and recovery paths.

use bytes::Bytes;
use hetsim::engine::{SimError, Simulation};
use hetsim::pu::{PuId, PuKind};
use hetsim::time::SimDuration;
use hetsim::topology::Machine;
use molecule_core::runtime::{Molecule, MoleculeConfig, StartupKind};
use vsandbox::spec::LangRuntime;
use xpu_shim::cap::Perm;
use xpu_shim::cluster::{ShimCluster, ShimConfig};
use xpu_shim::error::ShimError;

#[test]
fn deadlocked_function_is_reported_not_hung() {
    // A function waiting on a FIFO no one will ever write must surface as a
    // deadlock report, naming the stuck process.
    let cluster = ShimCluster::deploy(Machine::paper_cpu_dpu_server(), ShimConfig::default());
    let mut sim = Simulation::new();
    sim.spawn("orphan-function", move |ctx| {
        let shim = cluster.shim_on(PuId(0)).unwrap();
        let me = shim.attach_process();
        let fifo = shim.xfifo_init(ctx, me, "never-written").unwrap();
        let _ = fifo.read(ctx);
    });
    match sim.run() {
        Err(SimError::Deadlock { blocked }) => {
            assert_eq!(blocked, vec!["orphan-function".to_owned()]);
        }
        other => panic!("expected deadlock report, got {other:?}"),
    }
}

#[test]
fn revocation_cuts_off_a_compromised_writer_mid_stream() {
    let cluster = ShimCluster::deploy(Machine::paper_cpu_dpu_server(), ShimConfig::default());
    let mut sim = Simulation::new();
    let out = sim.spawn("owner", move |ctx| {
        let cpu = cluster.shim_on(PuId(0)).unwrap();
        let dpu = cluster.shim_on(PuId(1)).unwrap();
        let me = cpu.attach_process();
        let writer_pid = dpu.attach_process();
        let fifo = cpu.xfifo_init(ctx, me, "stream").unwrap();
        cpu.grant_cap(ctx, me, writer_pid, fifo.obj(), Perm::WRITE).unwrap();
        let w = dpu.xfifo_connect(ctx, writer_pid, &fifo.uuid().clone()).unwrap();
        for i in 0..3 {
            w.write(ctx, Bytes::from(vec![i])).unwrap();
        }
        // Compromise detected: revoke.
        cpu.revoke_cap(ctx, me, writer_pid, fifo.obj(), Perm::WRITE).unwrap();
        let blocked = w.write(ctx, Bytes::from_static(b"evil"));
        // Already-sent messages still drain.
        let mut drained = 0;
        while fifo.read_timeout(ctx, SimDuration::from_millis(1)).is_ok() {
            drained += 1;
        }
        (blocked.is_err(), drained)
    });
    sim.run().unwrap();
    let (blocked, drained) = out.take_result().unwrap();
    assert!(blocked);
    assert_eq!(drained, 3);
}

#[test]
fn dead_executor_is_replaced_by_respawn() {
    // Model an executor crash: detach its process and xSpawn a replacement;
    // new instances keep starting on the DPU.
    let molecule = Molecule::launch(Machine::paper_cpu_dpu_server(), MoleculeConfig::default());
    molecule.register_function(
        molecule_core::function::FunctionDef::builder("f", LangRuntime::Python)
            .profiles(&[PuKind::Cpu, PuKind::Dpu])
            .exec_ms(1.0)
            .build(),
    );
    let mut sim = Simulation::new();
    let m = molecule.clone();
    let out = sim.spawn("gateway", move |ctx| {
        m.bootstrap(ctx).unwrap();
        m.prepare_template(ctx, PuId(1), LangRuntime::Python).unwrap();
        let before = m.start_instance(ctx, &"f".into(), PuId(1), StartupKind::CforkLocal).unwrap();
        // Crash: the executor process disappears from the shim's view.
        let cluster = m.cluster().clone();
        let shim = cluster.shim_on(PuId(1)).unwrap();
        let crashed = shim.attach_process(); // stand-in for the executor's pid
        shim.detach_process(crashed);
        // Respawn via xSpawn and keep serving.
        let manager = cluster.shim_on(PuId(0)).unwrap().attach_process();
        let replacement = cluster
            .shim_on(PuId(0))
            .unwrap()
            .xspawn_inert(ctx, manager, PuId(1), "molecule-executor", &[])
            .unwrap();
        let after = m.start_instance(ctx, &"f".into(), PuId(1), StartupKind::CforkLocal).unwrap();
        (before.latency, after.latency, replacement.pu)
    });
    sim.run().unwrap();
    let (before, after, pu) = out.take_result().unwrap();
    assert_eq!(pu, PuId(1));
    assert_eq!(before, after, "recovery restores the normal startup path");
}

#[test]
fn accelerator_without_direct_link_falls_back_to_cpu_interception() {
    // DPU -> FPGA has no direct path in the prototype (§5); traffic must be
    // forwarded by the host and is accounted as intercepted.
    let machine = Machine::full_heterogeneous();
    let dpu = machine.pus_of_kind(PuKind::Dpu)[0];
    let fpga = machine.pus_of_kind(PuKind::Fpga)[0];
    let route = machine.route(dpu, fpga);
    assert!(route.is_intercepted());

    let cluster = ShimCluster::deploy(machine, ShimConfig::default());
    let mut sim = Simulation::new();
    let c = cluster.clone();
    sim.spawn("driver", move |ctx| {
        // The virtual FPGA shim is hosted on the CPU; a FIFO owned by an
        // FPGA-side process lives there.
        let fpga_shim = c.shim_on(fpga).unwrap();
        let dpu_shim = c.shim_on(dpu).unwrap();
        let owner = fpga_shim.attach_process();
        let writer_pid = dpu_shim.attach_process();
        let fifo = fpga_shim.xfifo_init(ctx, owner, "accel-in").unwrap();
        fpga_shim.grant_cap(ctx, owner, writer_pid, fifo.obj(), Perm::WRITE).unwrap();
        let w = dpu_shim.xfifo_connect(ctx, writer_pid, &fifo.uuid().clone()).unwrap();
        w.write(ctx, Bytes::from_static(b"dpu-to-fpga")).unwrap();
        let msg = fifo.read(ctx).unwrap();
        assert_eq!(&msg[..], b"dpu-to-fpga");
    });
    sim.run().unwrap();
    assert!(cluster.stats().intercepted_transfers >= 1);
}

#[test]
fn shim_errors_are_descriptive_and_typed() {
    let cluster = ShimCluster::deploy(Machine::paper_cpu_dpu_server(), ShimConfig::default());
    let mut sim = Simulation::new();
    let out = sim.spawn("driver", move |ctx| {
        let shim = cluster.shim_on(PuId(0)).unwrap();
        let me = shim.attach_process();
        let missing =
            shim.xfifo_connect(ctx, me, &xpu_shim::id::GlobalUuid::new("ghost")).unwrap_err();
        let no_pu = cluster.shim_on(PuId(42)).unwrap_err();
        (missing, no_pu)
    });
    sim.run().unwrap();
    let (missing, no_pu) = out.take_result().unwrap();
    assert!(matches!(missing, ShimError::UnknownUuid(_)));
    assert!(missing.to_string().contains("ghost"));
    assert_eq!(no_pu, ShimError::NoSuchPu(PuId(42)));
}

#[test]
fn explicit_lazy_flush_drains_pending_reclamations() {
    // Shutdown path: whatever sits in the lazy queue must flush on demand.
    let cluster = ShimCluster::deploy(Machine::paper_cpu_dpu_server(), ShimConfig::default());
    let mut sim = Simulation::new();
    let c = cluster.clone();
    sim.spawn("driver", move |ctx| {
        let shim = c.shim_on(PuId(0)).unwrap();
        let me = shim.attach_process();
        for i in 0..3 {
            let fifo = shim.xfifo_init(ctx, me, format!("f{i}")).unwrap();
            fifo.close(ctx).unwrap();
        }
        assert_eq!(c.stats().lazy_pending, 3, "below the batch threshold");
        assert_eq!(c.stats().lazy_flushes, 0);
        c.flush_lazy(ctx, PuId(0));
        assert_eq!(c.stats().lazy_pending, 0);
        assert_eq!(c.stats().lazy_flushes, 1);
        // Idempotent on an empty queue.
        c.flush_lazy(ctx, PuId(0));
        assert_eq!(c.stats().lazy_flushes, 1);
    });
    sim.run().unwrap();
}
