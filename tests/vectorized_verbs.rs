//! Integration: the complete vectorized-verb surface of Table 3, exercised
//! on both `runc` (loop-based vectorization) and `runf` (true vectorized
//! packing).

use hetsim::calib::Calibration;
use hetsim::engine::Simulation;
use hetsim::fpga::{FpgaDevice, FpgaResources, KernelSpec};
use hetsim::os::LocalOs;
use hetsim::pu::{PuId, PuSpec};
use vsandbox::oci::{OciRuntime, VectorizedRuntime};
use vsandbox::runc::RuncRuntime;
use vsandbox::runf::RunfRuntime;
use vsandbox::spec::{LangRuntime, SandboxConfig, SandboxId, SandboxState, Signal};

fn runc() -> RuncRuntime {
    let calib = Calibration::paper_server();
    let os = LocalOs::boot(&PuSpec::xeon_host(PuId(0)), calib.cpu_os, 16 * 1024);
    RuncRuntime::new(os, &calib)
}

fn runf() -> RunfRuntime {
    RunfRuntime::new(FpgaDevice::new(PuId(1), Calibration::paper_server().fpga))
}

fn py_cfg(i: usize) -> (SandboxId, SandboxConfig) {
    (
        SandboxId::new(format!("c{i}")),
        SandboxConfig::general(format!("fn{i}"), LangRuntime::Python, 64),
    )
}

fn fpga_cfg(i: usize) -> (SandboxId, SandboxConfig) {
    let kernel = KernelSpec {
        name: format!("k{i}"),
        resources: FpgaResources { luts: 4_000, regs: 6_000, brams: 12, dsps: 24 },
    };
    (SandboxId::new(format!("k{i}")), SandboxConfig::fpga(format!("k{i}"), kernel))
}

#[test]
fn runc_full_vector_lifecycle() {
    let rt = runc();
    let mut sim = Simulation::new();
    let out = sim.spawn("driver", move |ctx| {
        let entries: Vec<_> = (0..4).map(py_cfg).collect();
        let ids: Vec<SandboxId> = entries.iter().map(|(i, _)| i.clone()).collect();
        rt.create_vec(ctx, &entries).unwrap();
        assert_eq!(rt.state_vec(ctx, &ids).unwrap(), vec![SandboxState::Created; 4]);
        rt.start_vec(ctx, &ids).unwrap();
        assert_eq!(rt.state_vec(ctx, &ids).unwrap(), vec![SandboxState::Running; 4]);
        let kills: Vec<(SandboxId, Signal)> =
            ids.iter().map(|i| (i.clone(), Signal::Term)).collect();
        rt.kill_vec(ctx, &kills).unwrap();
        assert_eq!(rt.state_vec(ctx, &ids).unwrap(), vec![SandboxState::Stopped; 4]);
        rt.delete_vec(ctx, &ids).unwrap();
        rt.state_vec(ctx, &ids).unwrap()
    });
    sim.run().unwrap();
    assert_eq!(out.take_result().unwrap(), vec![SandboxState::Deleted; 4]);
}

#[test]
fn runf_full_vector_lifecycle_with_one_flash() {
    let rt = runf();
    let mut sim = Simulation::new();
    let out = sim.spawn("driver", move |ctx| {
        let entries: Vec<_> = (0..4).map(fpga_cfg).collect();
        let ids: Vec<SandboxId> = entries.iter().map(|(i, _)| i.clone()).collect();
        let t0 = ctx.now();
        rt.create_vec(ctx, &entries).unwrap();
        let create_cost = ctx.now() - t0;
        // One flash for the whole vector, not four (load_full 3.75s + 4
        // compose steps, well under 2 full flashes).
        assert!(create_cost.as_secs_f64() < 7.5, "vector create {create_cost}");
        rt.start_vec(ctx, &ids).unwrap();
        assert_eq!(rt.state_vec(ctx, &ids).unwrap(), vec![SandboxState::Running; 4]);
        // Lazy vector delete: free.
        let t0 = ctx.now();
        rt.delete_vec(ctx, &ids).unwrap();
        let delete_cost = ctx.now() - t0;
        assert!(delete_cost.is_zero(), "lazy delete cost {delete_cost}");
        (rt.state_vec(ctx, &ids).unwrap(), rt.device().is_resident("k0"))
    });
    sim.run().unwrap();
    let (states, still_flashed) = out.take_result().unwrap();
    assert_eq!(states, vec![SandboxState::Deleted; 4]);
    assert!(still_flashed, "lazy delete leaves kernels on the fabric");
}

#[test]
fn vector_ops_fail_atomically_on_the_first_bad_entry() {
    let rt = runc();
    let mut sim = Simulation::new();
    let out = sim.spawn("driver", move |ctx| {
        let good = py_cfg(0);
        rt.create(ctx, &good.0, &good.1).unwrap();
        // Second create collides; the vector call reports it.
        let entries = vec![py_cfg(1), py_cfg(0)];
        let err = rt.create_vec(ctx, &entries).unwrap_err();
        // The entry before the failure was created.
        let st = rt.state(ctx, &SandboxId::new("c1")).unwrap();
        (err, st)
    });
    sim.run().unwrap();
    let (err, st) = out.take_result().unwrap();
    assert!(matches!(err, vsandbox::oci::SandboxError::AlreadyExists(_)));
    assert_eq!(st, SandboxState::Created);
}

#[test]
fn runf_vector_create_rejects_oversized_vectors() {
    let rt = runf();
    let mut sim = Simulation::new();
    let out = sim.spawn("driver", move |ctx| {
        // ~300 kernels at 4k LUTs each exceed F1's 1.18M LUTs.
        let entries: Vec<_> = (0..300).map(fpga_cfg).collect();
        rt.create_vec(ctx, &entries).unwrap_err()
    });
    sim.run().unwrap();
    assert!(matches!(out.take_result().unwrap(), vsandbox::oci::SandboxError::Device(_)));
}
