//! Integration: the whole stack is deterministic — the property that makes
//! the experiment harness a *reproduction* rather than a sampling exercise.

use molecule_bench as bench;

#[test]
fn fig08_series_are_identical_across_runs() {
    let a = bench::fig08::nipc_series(xpu_shim::xcall::XcallTransport::MpscPoll);
    let b = bench::fig08::nipc_series(xpu_shim::xcall::XcallTransport::MpscPoll);
    assert_eq!(a, b);
}

#[test]
fn fig12_edges_are_identical_across_runs() {
    let a = bench::fig12::edges_under(bench::fig12::Placement::DpuToCpu);
    let b = bench::fig12::edges_under(bench::fig12::Placement::DpuToCpu);
    assert_eq!(a, b);
}

#[test]
fn fig14_panel_is_identical_across_runs() {
    let a = bench::fig14::functionbench_panel(bench::fig14::FbTarget::ColdCpu);
    let b = bench::fig14::functionbench_panel(bench::fig14::FbTarget::ColdCpu);
    assert_eq!(a, b);
}

#[test]
fn ablation_sync_rows_are_identical_across_runs() {
    assert_eq!(bench::ablations::sync_batching(), bench::ablations::sync_batching());
}

#[test]
fn density_is_stateless_between_invocations() {
    // pack/release leaves the machine clean, so repeating the whole
    // experiment yields the same packing.
    let a = bench::fig02::density();
    let b = bench::fig02::density();
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------------
// Cross-process determinism. The in-process double-runs above share one
// address space, so they cannot catch nondeterminism that varies *between*
// processes — HashMap iteration order under ASLR-seeded RandomState being
// the classic offender. Here the test re-executes its own binary twice and
// diffs the chaos event log and a BENCH JSON summary byte for byte.

const CHILD_ENV: &str = "MOLECULE_DETERMINISM_CHILD";
const BEGIN_MARK: &str = "===DETERMINISM-PAYLOAD-BEGIN===";
const END_MARK: &str = "===DETERMINISM-PAYLOAD-END===";

/// The probe a child process runs: one seeded chaos scenario (its ordered
/// fault-plane event log is the replay artifact) and the BENCH-style JSON
/// summary built from the same report.
fn child_payload() -> String {
    let report = molecule_chaos::dpu_crash_alexa(42);
    let rows = vec![vec![
        report.seed.to_string(),
        report.issued.to_string(),
        report.completed.to_string(),
        report.lost.to_string(),
        report.failed_over.to_string(),
        format!("{:?}", report.requests_per_pu),
    ]];
    let summary = telemetry::BenchSummary::new(
        "determinism_probe",
        "cross-process determinism probe",
        &["seed", "issued", "completed", "lost", "failed_over", "per_pu"],
        &rows,
    );
    let mut out = String::new();
    for line in &report.event_log {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&summary.to_json());
    out.push('\n');
    out
}

/// Runs this same test in a fresh OS process (child mode) and returns the
/// marker-delimited payload it printed.
fn run_child(test_name: &str) -> String {
    let exe = std::env::current_exe().expect("own test binary path");
    let out = std::process::Command::new(exe)
        .args([test_name, "--exact", "--nocapture", "--test-threads=1"])
        .env(CHILD_ENV, "1")
        .output()
        .expect("spawn child test process");
    let stdout = String::from_utf8(out.stdout).expect("child stdout is utf-8");
    assert!(
        out.status.success(),
        "child process failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let begin = stdout.find(BEGIN_MARK).expect("child printed the begin marker");
    let end = stdout.find(END_MARK).expect("child printed the end marker");
    stdout[begin + BEGIN_MARK.len()..end].to_owned()
}

/// The rack probe a child process runs: a tiny one-point scaling sweep
/// rendered as the same BENCH_rack.json rows `fig_rack` exports, plus the
/// chaos event log of a seeded node-kill plan against a 2-node rack front.
fn rack_child_payload() -> String {
    let row = bench::fig_rack::run_scale_point(2, 40.0);
    let summary = telemetry::BenchSummary::new(
        "rack",
        "cross-process rack determinism probe",
        &bench::fig_rack::SCALE_HEADER,
        &bench::fig_rack::scale_table(std::slice::from_ref(&row)),
    );
    let (event_log, front_stats) = bench::fig_rack::node_kill_probe(42);
    let mut out = String::new();
    for line in &event_log {
        out.push_str(line);
        out.push('\n');
    }
    for line in &front_stats {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&summary.to_json());
    out.push('\n');
    out
}

#[test]
fn rack_bench_json_and_chaos_log_are_byte_identical_across_processes() {
    if std::env::var_os(CHILD_ENV).is_some() {
        println!("{BEGIN_MARK}");
        print!("{}", rack_child_payload());
        println!("{END_MARK}");
        return;
    }
    let name = "rack_bench_json_and_chaos_log_are_byte_identical_across_processes";
    let a = run_child(name);
    let b = run_child(name);
    assert!(!a.trim().is_empty(), "child produced an empty payload");
    assert!(a.contains("\"figure\":\"rack\""), "payload lost the BENCH_rack JSON: {a}");
    assert!(a.contains("fault:"), "payload lost the rack chaos event log: {a}");
    assert!(a.contains("node_deaths="), "payload lost the rack front accounting: {a}");
    assert_eq!(a, b, "two OS processes disagreed on the same seeded rack run");
}

/// The engine probe a child process runs: the fixed-size timer storm on
/// the overhauled event core, single-lane and sharded, plus the legacy
/// cost-model emulation — all three must agree on events fired, virtual
/// end time and the order-sensitive fire checksum, and the whole payload
/// must be byte-identical across OS processes (the event arena, lane
/// merge and timing wheels use no process-varying state).
fn engine_child_payload() -> String {
    let single = bench::fig_engine::probe_line();
    let sharded = bench::fig_engine::run_timer_storm(
        bench::fig_engine::PROBE_TIMERS,
        bench::fig_engine::PROBE_TICKS,
        bench::fig_engine::STORM_LANES,
    );
    let legacy = bench::fig_engine::run_legacy_storm(
        bench::fig_engine::PROBE_TIMERS,
        bench::fig_engine::PROBE_TICKS,
    );
    format!(
        "single {single}\n\
         sharded events={} end_ns={} checksum={:016x}\n\
         legacy events={} end_ns={} checksum={:016x}\n",
        sharded.events,
        sharded.end_ns,
        sharded.checksum,
        legacy.events,
        legacy.end_ns,
        legacy.checksum,
    )
}

#[test]
fn engine_timer_storm_is_byte_identical_across_processes() {
    if std::env::var_os(CHILD_ENV).is_some() {
        println!("{BEGIN_MARK}");
        print!("{}", engine_child_payload());
        println!("{END_MARK}");
        return;
    }
    let name = "engine_timer_storm_is_byte_identical_across_processes";
    let a = run_child(name);
    let b = run_child(name);
    assert!(a.contains("single events="), "payload lost the engine probe: {a}");
    assert_eq!(a, b, "two OS processes disagreed on the same timer storm");
    // The three configurations inside one payload must agree with each
    // other too: sharding and the legacy core are observationally
    // equivalent orderings of the same schedule.
    let checksums: Vec<&str> = a.lines().filter_map(|l| l.split("checksum=").nth(1)).collect();
    assert_eq!(checksums.len(), 3, "payload lost a probe line: {a}");
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "engine/sharded/legacy fire orders diverged: {a}"
    );
}

#[test]
fn chaos_log_and_bench_json_are_byte_identical_across_processes() {
    if std::env::var_os(CHILD_ENV).is_some() {
        println!("{BEGIN_MARK}");
        print!("{}", child_payload());
        println!("{END_MARK}");
        return;
    }
    let name = "chaos_log_and_bench_json_are_byte_identical_across_processes";
    let a = run_child(name);
    let b = run_child(name);
    assert!(!a.trim().is_empty(), "child produced an empty payload");
    assert!(a.contains("determinism_probe"), "payload lost the BENCH JSON: {a}");
    assert!(a.contains("fault:"), "payload lost the chaos event log: {a}");
    assert_eq!(a, b, "two OS processes disagreed on the same seeded run");
}
