//! Integration: the whole stack is deterministic — the property that makes
//! the experiment harness a *reproduction* rather than a sampling exercise.

use molecule_bench as bench;

#[test]
fn fig08_series_are_identical_across_runs() {
    let a = bench::fig08::nipc_series(xpu_shim::xcall::XcallTransport::MpscPoll);
    let b = bench::fig08::nipc_series(xpu_shim::xcall::XcallTransport::MpscPoll);
    assert_eq!(a, b);
}

#[test]
fn fig12_edges_are_identical_across_runs() {
    let a = bench::fig12::edges_under(bench::fig12::Placement::DpuToCpu);
    let b = bench::fig12::edges_under(bench::fig12::Placement::DpuToCpu);
    assert_eq!(a, b);
}

#[test]
fn fig14_panel_is_identical_across_runs() {
    let a = bench::fig14::functionbench_panel(bench::fig14::FbTarget::ColdCpu);
    let b = bench::fig14::functionbench_panel(bench::fig14::FbTarget::ColdCpu);
    assert_eq!(a, b);
}

#[test]
fn ablation_sync_rows_are_identical_across_runs() {
    assert_eq!(bench::ablations::sync_batching(), bench::ablations::sync_batching());
}

#[test]
fn density_is_stateless_between_invocations() {
    // pack/release leaves the machine clean, so repeating the whole
    // experiment yields the same packing.
    let a = bench::fig02::density();
    let b = bench::fig02::density();
    assert_eq!(a, b);
}
