//! Integration: the Dorylus-style GNN round (§2.4) — the paper's motivating
//! case for GPU serverless functions — end to end through Molecule.

use hetsim::engine::Simulation;
use hetsim::pu::{PuId, PuKind};
use hetsim::topology::Machine;
use molecule_core::dag::{run_chain, ChainSpec, ChainStage, CommMethod};
use molecule_core::runtime::{Molecule, MoleculeConfig, StartupKind};
use vsandbox::spec::LangRuntime;
use workloads::gnn;

fn gnn_molecule() -> (Molecule, PuId) {
    let machine = Machine::full_heterogeneous();
    let gpu = machine.pus_of_kind(PuKind::Gpu)[0];
    let molecule = Molecule::launch(machine, MoleculeConfig::default());
    for def in gnn::training_round() {
        molecule.register_function(def);
    }
    (molecule, gpu)
}

#[test]
fn gpu_apply_stage_accelerates_the_training_round() {
    let (molecule, gpu) = gnn_molecule();
    let mut sim = Simulation::new();
    let m = molecule.clone();
    let out = sim.spawn("trainer", move |ctx| {
        m.bootstrap(ctx).unwrap();
        m.prepare_template(ctx, PuId(0), LangRuntime::Python).unwrap();

        let cpu_stages = vec![
            ChainStage::new("gnn-gather", PuId(0)),
            ChainStage::new("gnn-apply", PuId(0)),
            ChainStage::new("gnn-scatter", PuId(0)),
        ];
        let gpu_stages = vec![
            ChainStage::new("gnn-gather", PuId(0)),
            ChainStage::new("gnn-apply", gpu),
            ChainStage::new("gnn-scatter", PuId(0)),
        ];
        let cpu_round = run_chain(
            &m,
            ctx,
            &ChainSpec::new("gnn-cpu", cpu_stages, CommMethod::DirectIpc)
                .input_bytes(gnn::PARTITION_BYTES),
        )
        .unwrap()
        .mean_end_to_end();
        let gpu_round = run_chain(
            &m,
            ctx,
            &ChainSpec::new("gnn-gpu", gpu_stages, CommMethod::DirectIpc)
                .input_bytes(gnn::PARTITION_BYTES),
        )
        .unwrap()
        .mean_end_to_end();
        (cpu_round, gpu_round)
    });
    sim.run().unwrap();
    let (cpu_round, gpu_round) = out.take_result().unwrap();
    let speedup = cpu_round.ratio(gpu_round);
    assert!(
        (1.8..=6.0).contains(&speedup),
        "GPU round must be several times faster: {speedup} (cpu {cpu_round}, gpu {gpu_round})"
    );
}

#[test]
fn gpu_instances_start_and_bill_through_the_runtime() {
    let (molecule, gpu) = gnn_molecule();
    let mut sim = Simulation::new();
    let m = molecule.clone();
    let out = sim.spawn("trainer", move |ctx| {
        let started =
            m.start_instance(ctx, &"gnn-apply".into(), gpu, StartupKind::ColdBaseline).unwrap();
        // First start pays context creation + module load; a second kernel
        // amortizes the context.
        let second =
            m.start_instance(ctx, &"gnn-apply".into(), gpu, StartupKind::ColdBaseline).unwrap();
        let invoke = m.invoke(ctx, started.instance, gnn::PARTITION_BYTES).unwrap();
        m.retire_instance(ctx, second.instance).unwrap();
        (started.latency, second.latency, invoke.latency)
    });
    sim.run().unwrap();
    let (first, second, invoke) = out.take_result().unwrap();
    assert!(first > second, "context creation amortizes: {first} vs {second}");
    // Invoke = PCIe transfer of the partition + launch + ~2.57ms kernel.
    let ms = invoke.as_millis_f64();
    assert!((2.5..=3.5).contains(&ms), "gpu invoke {ms}ms");
    let meter = molecule.meter();
    assert!(meter.total_for(PuKind::Gpu) > 0.0, "GPU time is billed");
}

#[test]
fn gpu_function_without_profile_is_rejected() {
    let (molecule, gpu) = gnn_molecule();
    let mut sim = Simulation::new();
    let out = sim.spawn("trainer", move |ctx| {
        // gather has no GPU profile.
        molecule
            .start_instance(ctx, &"gnn-gather".into(), gpu, StartupKind::ColdBaseline)
            .unwrap_err()
    });
    sim.run().unwrap();
    assert!(matches!(
        out.take_result().unwrap(),
        molecule_core::MoleculeError::UnsupportedPu { .. }
    ));
}
