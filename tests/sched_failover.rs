//! End-to-end failover: a PU dies mid-burst and every request queued on it
//! completes on a surviving PU — the scheduling gateway's conservation
//! guarantee wired through the real health-checker pipeline.

use hetsim::engine::Simulation;
use hetsim::pu::PuKind;
use hetsim::topology::Machine;
use molecule_core::function::FunctionDef;
use molecule_core::gateway::{ApiGateway, GatewayConfig};
use molecule_core::health::{HealthChecker, HealthPolicy};
use molecule_core::keepalive::Lru;
use molecule_core::runtime::{Molecule, MoleculeConfig};
use molecule_core::schedule::Scheduler;
use molecule_sched::{JobOutcome, SchedConfig, SchedGateway, SubmitOpts};
use vsandbox::spec::{FuncId, LangRuntime};

#[test]
fn queued_requests_survive_a_pu_death_mid_burst() {
    let molecule = Molecule::launch(Machine::paper_cpu_dpu_server(), MoleculeConfig::default());
    // DPU-only function: a burst spreads over the two DPUs, so killing one
    // strands real queued work that must fail over to the other.
    molecule.register_function(
        FunctionDef::builder("edge-infer", LangRuntime::Python)
            .profiles(&[PuKind::Dpu])
            .exec_ms(8.0)
            .init_ms(5.0)
            .cfork_first_run_ms(1.0)
            .build(),
    );
    let api = ApiGateway::new(
        molecule,
        Scheduler::default(),
        GatewayConfig::default(),
        Box::new(Lru::new()),
    );
    let gw = SchedGateway::new(api, SchedConfig { dpu_tokens: 1, ..SchedConfig::default() });
    let health = HealthChecker::new(gw.api().clone(), HealthPolicy::default());
    gw.attach_health(&health);

    let mut sim = Simulation::new();
    let g = gw.clone();
    let hc = health.clone();
    let out = sim.spawn("driver", move |ctx| {
        g.api().molecule().bootstrap(ctx).unwrap();
        g.api().prepare_all_templates(ctx).unwrap();
        g.start(ctx);

        // Burst of 16 before any worker gets a turn: both DPU queues fill.
        let rxs: Vec<_> = (0..16)
            .map(|_| {
                g.submit(ctx, &FuncId::new("edge-infer"), 1024, SubmitOpts::default()).unwrap()
            })
            .collect();

        // Kill one DPU with its queue still loaded, then let the health
        // checker find the corpse and fire the drain hook.
        let machine = g.api().molecule().machine().clone();
        let victim = machine.pus_of_kind(PuKind::Dpu)[0];
        machine.fault_plane().kill_pu(ctx.now(), victim);
        hc.run(ctx, 8);

        let outcomes: Vec<JobOutcome> = rxs.into_iter().map(|rx| rx.recv(ctx).unwrap()).collect();
        g.shutdown();
        (victim, outcomes)
    });
    sim.run().unwrap();
    let (victim, outcomes) = out.take_result().unwrap();

    assert_eq!(outcomes.len(), 16, "every admitted request must resolve");
    for o in &outcomes {
        match o {
            JobOutcome::Completed { pu, .. } => {
                assert_ne!(*pu, victim, "a request completed on the dead PU");
            }
            other => panic!("request lost to the failure: {other:?}"),
        }
    }
    assert!(health.dead_pus().contains(&victim), "health checker should declare the DPU dead");
    let stats = gw.stats();
    assert_eq!(stats.submitted, 16);
    assert_eq!(stats.completed, 16);
    assert!(
        stats.requeued > 0,
        "the victim's queue should have drained into a survivor: {stats:?}"
    );
    assert_eq!(stats.failed, 0, "{stats:?}");
}
