//! End-to-end failover: a PU dies mid-burst and every request queued on it
//! completes on a surviving PU — the scheduling gateway's conservation
//! guarantee wired through the real health-checker pipeline.

use hetsim::engine::Simulation;
use hetsim::pu::PuKind;
use hetsim::time::SimDuration;
use hetsim::topology::Machine;
use molecule_core::function::FunctionDef;
use molecule_core::gateway::{ApiGateway, GatewayConfig};
use molecule_core::health::{HealthChecker, HealthPolicy};
use molecule_core::keepalive::Lru;
use molecule_core::runtime::{Molecule, MoleculeConfig};
use molecule_core::schedule::Scheduler;
use molecule_sched::{JobOutcome, SchedConfig, SchedGateway, SubmitOpts};
use vsandbox::spec::{FuncId, LangRuntime};

#[test]
fn queued_requests_survive_a_pu_death_mid_burst() {
    let molecule = Molecule::launch(Machine::paper_cpu_dpu_server(), MoleculeConfig::default());
    // DPU-only function: a burst spreads over the two DPUs, so killing one
    // strands real queued work that must fail over to the other.
    molecule.register_function(
        FunctionDef::builder("edge-infer", LangRuntime::Python)
            .profiles(&[PuKind::Dpu])
            .exec_ms(8.0)
            .init_ms(5.0)
            .cfork_first_run_ms(1.0)
            .build(),
    );
    let api = ApiGateway::new(
        molecule,
        Scheduler::default(),
        GatewayConfig::default(),
        Box::new(Lru::new()),
    );
    let gw = SchedGateway::new(api, SchedConfig { dpu_tokens: 1, ..SchedConfig::default() });
    let health = HealthChecker::new(gw.api().clone(), HealthPolicy::default());
    gw.attach_health(&health);

    let mut sim = Simulation::new();
    let g = gw.clone();
    let hc = health.clone();
    let out = sim.spawn("driver", move |ctx| {
        g.api().molecule().bootstrap(ctx).unwrap();
        g.api().prepare_all_templates(ctx).unwrap();
        g.start(ctx);

        // Burst of 16 before any worker gets a turn: both DPU queues fill.
        let rxs: Vec<_> = (0..16)
            .map(|_| {
                g.submit(ctx, &FuncId::new("edge-infer"), 1024, SubmitOpts::default()).unwrap()
            })
            .collect();

        // Kill one DPU with its queue still loaded, then let the health
        // checker find the corpse and fire the drain hook.
        let machine = g.api().molecule().machine().clone();
        let victim = machine.pus_of_kind(PuKind::Dpu)[0];
        machine.fault_plane().kill_pu(ctx.now(), victim);
        hc.run(ctx, 8);

        let outcomes: Vec<JobOutcome> = rxs.into_iter().map(|rx| rx.recv(ctx).unwrap()).collect();
        g.shutdown();
        (victim, outcomes)
    });
    sim.run().unwrap();
    let (victim, outcomes) = out.take_result().unwrap();

    assert_eq!(outcomes.len(), 16, "every admitted request must resolve");
    for o in &outcomes {
        match o {
            JobOutcome::Completed { pu, .. } => {
                assert_ne!(*pu, victim, "a request completed on the dead PU");
            }
            other => panic!("request lost to the failure: {other:?}"),
        }
    }
    assert!(health.dead_pus().contains(&victim), "health checker should declare the DPU dead");
    let stats = gw.stats();
    assert_eq!(stats.submitted, 16);
    assert_eq!(stats.completed, 16);
    assert!(
        stats.requeued > 0,
        "the victim's queue should have drained into a survivor: {stats:?}"
    );
    assert_eq!(stats.failed, 0, "{stats:?}");
}

/// The FPGA cold-start batch window is the widest in-flight exposure the
/// scheduler has: a miss holds the fabric for the whole window while
/// co-pending requests coalesce behind it. Killing the FPGA inside that
/// window strands not just the queue but the entire in-flight batch — all
/// of it must re-place onto the surviving fabric, none of it may vanish.
#[test]
fn in_flight_cold_start_batch_survives_fpga_death_mid_window() {
    // Two fabrics: one to die with a batch in flight, one to inherit it.
    let machine = Machine::builder().host_cpu().fpgas(2).build();
    let molecule = Molecule::launch(machine, MoleculeConfig::default());
    let mut funcs = Vec::new();
    for i in 0..6 {
        let name = format!("kern{i}");
        molecule.register_function(
            FunctionDef::builder(name.clone(), LangRuntime::OpenCl)
                .profiles(&[PuKind::Fpga])
                .fpga(
                    hetsim::fpga::KernelSpec {
                        name: name.clone(),
                        resources: hetsim::fpga::FpgaResources {
                            luts: 5_000,
                            regs: 8_000,
                            brams: 20,
                            dsps: 36,
                        },
                    },
                    molecule_core::function::ExecModel::Fixed(SimDuration::from_micros(100)),
                )
                .build(),
        );
        funcs.push(FuncId::new(name));
    }
    let api = ApiGateway::new(
        molecule,
        Scheduler::default(),
        GatewayConfig::default(),
        Box::new(Lru::new()),
    );
    // A wide batch window so the kill lands while the first miss still
    // holds the fabric coalescing the requests queued behind it.
    let gw = SchedGateway::new(
        api,
        SchedConfig {
            batch_window: SimDuration::from_millis(50),
            batch_max: 8,
            ..SchedConfig::default()
        },
    );
    let health = HealthChecker::new(gw.api().clone(), HealthPolicy::default());
    gw.attach_health(&health);

    let mut sim = Simulation::new();
    let g = gw.clone();
    let hc = health.clone();
    let out = sim.spawn("driver", move |ctx| {
        g.api().molecule().bootstrap(ctx).unwrap();
        g.api().prepare_all_templates(ctx).unwrap();
        g.start(ctx);

        // Every kernel is cold, so the first request on each fabric opens a
        // batch window and everything behind it coalesces into the batch.
        let rxs: Vec<_> =
            funcs.iter().map(|f| g.submit(ctx, f, 4096, SubmitOpts::default()).unwrap()).collect();

        // Land the kill inside the 50 ms window: the victim's worker is
        // asleep holding the fabric with its batch already claimed.
        ctx.sleep(SimDuration::from_millis(1));
        let machine = g.api().molecule().machine().clone();
        let victim = machine.pus_of_kind(PuKind::Fpga)[0];
        machine.fault_plane().kill_pu(ctx.now(), victim);
        hc.run(ctx, 8);

        let outcomes: Vec<JobOutcome> = rxs.into_iter().map(|rx| rx.recv(ctx).unwrap()).collect();
        g.shutdown();
        (victim, outcomes)
    });
    sim.run().unwrap();
    let (victim, outcomes) = out.take_result().unwrap();

    assert_eq!(outcomes.len(), 6, "every admitted request must resolve");
    for o in &outcomes {
        match o {
            JobOutcome::Completed { pu, .. } => {
                assert_ne!(*pu, victim, "a request completed on the dead fabric");
            }
            other => panic!("request lost to the mid-window failure: {other:?}"),
        }
    }
    let stats = gw.stats();
    assert_eq!(stats.submitted, 6);
    assert_eq!(stats.completed, 6, "{stats:?}");
    assert_eq!(stats.failed, 0, "{stats:?}");
    assert!(
        stats.requeued > 0,
        "the victim's batch and queue should have re-placed, not vanished: {stats:?}"
    );
}
