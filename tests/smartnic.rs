//! Integration: SmartNIC support (§6.8 — "we have preliminarily supported
//! GPU and smartNIC on Molecule"). SmartNICs are general-purpose PUs with
//! embedded ARM cores: they get a local OS, an XPU-Shim instance, a `runc`,
//! and the full cfork/nIPC story — exactly like a DPU, just slower.

use hetsim::engine::Simulation;
use hetsim::pu::{PuId, PuKind};
use hetsim::topology::Machine;
use molecule_core::dag::{run_chain, ChainSpec, ChainStage, CommMethod};
use molecule_core::function::FunctionDef;
use molecule_core::runtime::{Molecule, MoleculeConfig, StartupKind};
use vsandbox::spec::LangRuntime;

fn smartnic_machine() -> (Machine, PuId) {
    let machine = Machine::builder().host_cpu().smartnics(1).build();
    let nic = machine.pus_of_kind(PuKind::SmartNic)[0];
    (machine, nic)
}

#[test]
fn smartnic_runs_its_own_os_and_shim() {
    let (machine, nic) = smartnic_machine();
    assert!(machine.os(nic).is_some(), "SmartNICs run a local OS");
    let cluster = xpu_shim::cluster::ShimCluster::deploy(machine, Default::default());
    assert_eq!(cluster.shim_count(), 2, "CPU + SmartNIC shims");
    let shim = cluster.shim_on(nic).unwrap();
    assert!(!shim.is_virtual(), "general-purpose PU runs a real shim");
}

#[test]
fn functions_cfork_onto_the_smartnic() {
    let (machine, nic) = smartnic_machine();
    let molecule = Molecule::launch(machine, MoleculeConfig::default());
    molecule.register_function(
        FunctionDef::builder("edge-filter", LangRuntime::Python)
            .profiles(&[PuKind::Cpu, PuKind::SmartNic])
            .exec_ms(2.0)
            .build(),
    );
    let mut sim = Simulation::new();
    let m = molecule.clone();
    let out = sim.spawn("gateway", move |ctx| {
        m.bootstrap(ctx).unwrap();
        m.prepare_template(ctx, nic, LangRuntime::Python).unwrap();
        let started =
            m.start_instance(ctx, &"edge-filter".into(), nic, StartupKind::CforkLocal).unwrap();
        let exec = m.invoke(ctx, started.instance, 1024).unwrap().latency;
        (started.latency, exec)
    });
    sim.run().unwrap();
    let (startup, exec) = out.take_result().unwrap();
    // cfork scales with the SmartNIC's 3.5x compute factor: 6.4ms * 3.5.
    let ms = startup.as_millis_f64();
    assert!((20.0..=26.0).contains(&ms), "SmartNIC cfork {ms}ms");
    assert_eq!(exec.as_millis_f64(), 7.0, "2ms handler at 3.5x");
}

#[test]
fn nipc_chains_span_cpu_and_smartnic() {
    let (machine, nic) = smartnic_machine();
    let molecule = Molecule::launch(machine, MoleculeConfig::default());
    for name in ["ingress", "process"] {
        molecule.register_function(
            FunctionDef::builder(name, LangRuntime::NodeJs)
                .profiles(&[PuKind::Cpu, PuKind::SmartNic])
                .exec_ms(0.5)
                .build(),
        );
    }
    let mut sim = Simulation::new();
    let out = sim.spawn("driver", move |ctx| {
        let stages = vec![ChainStage::new("ingress", nic), ChainStage::new("process", PuId(0))];
        let ipc = run_chain(
            &molecule,
            ctx,
            &ChainSpec::new("nic-ipc", stages.clone(), CommMethod::DirectIpc),
        )
        .unwrap();
        let http =
            run_chain(&molecule, ctx, &ChainSpec::new("nic-http", stages, CommMethod::HttpGateway))
                .unwrap();
        (ipc.mean_hop(1), http.mean_hop(1))
    });
    sim.run().unwrap();
    let (ipc, http) = out.take_result().unwrap();
    assert!(ipc < http, "nIPC must beat the network hop: {ipc} vs {http}");
    assert!(http.ratio(ipc) > 5.0, "ratio {}", http.ratio(ipc));
}
