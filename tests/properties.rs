//! Property-based tests over the stack's core invariants (proptest).

use bytes::Bytes;
use hetsim::engine::Simulation;
use hetsim::fpga::{FpgaResources, ImageBuilder, ImageId, KernelSpec};
use hetsim::os::{LocalOs, MemoryLedger};
use hetsim::pu::{PuId, PuSpec};
use hetsim::time::{SimDuration, SimTime};
use molecule_core::keepalive::{GreedyDual, KeepAlivePolicy, Lru};
use proptest::prelude::*;
use vsandbox::spec::FuncId;
use xpu_shim::cap::{CapTable, ObjKind, Perm};
use xpu_shim::id::XpuPid;

proptest! {
    /// XpuPid encode/decode is a bijection.
    #[test]
    fn xpupid_roundtrip(pu in 0u16..=u16::MAX, local in 0u32..=u32::MAX) {
        let pid = XpuPid { pu: PuId(pu), local };
        prop_assert_eq!(XpuPid::decode(pid.encode()), pid);
    }

    /// Different (pu, local) pairs never collide in the encoding — the
    /// static-partitioning property that removes PID synchronization.
    #[test]
    fn xpupid_encoding_is_injective(a in any::<(u16, u32)>(), b in any::<(u16, u32)>()) {
        let pa = XpuPid { pu: PuId(a.0), local: a.1 };
        let pb = XpuPid { pu: PuId(b.0), local: b.1 };
        prop_assert_eq!(pa.encode() == pb.encode(), pa == pb);
    }

    /// FIFO transport preserves message bytes and order for arbitrary
    /// payload sequences.
    #[test]
    fn fifo_preserves_bytes_and_order(payloads in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 1..12)) {
        let calib = hetsim::calib::Calibration::paper_server();
        let os = LocalOs::boot(&PuSpec::bluefield1(PuId(1)), calib.dpu_bf1_os, 1024);
        let mut sim = Simulation::new();
        let expected = payloads.clone();
        let h = sim.spawn("t", move |ctx| {
            let reader = os.create_fifo(ctx, "prop").unwrap();
            let writer = os.open_fifo("prop").unwrap();
            for p in &payloads {
                writer.write(ctx, Bytes::from(p.clone()));
            }
            let mut got = Vec::new();
            for _ in 0..payloads.len() {
                got.push(reader.read(ctx).unwrap().to_vec());
            }
            got
        });
        sim.run().unwrap();
        prop_assert_eq!(h.take_result().unwrap(), expected);
    }

    /// Capability grants never escalate beyond what an owner handed out,
    /// and revocation always removes exactly the revoked bits.
    #[test]
    fn caps_never_escalate(ops in proptest::collection::vec((0u8..3, 0u8..3), 1..40)) {
        let mut t = CapTable::new();
        let owner = XpuPid { pu: PuId(0), local: 1 };
        let peer = XpuPid { pu: PuId(1), local: 1 };
        t.register_process(owner);
        t.register_process(peer);
        let obj = t.create_object(owner, ObjKind::Ipc).unwrap();
        let perms = [Perm::READ, Perm::WRITE, Perm::READ | Perm::WRITE];
        let mut model = Perm::NONE;
        for (op, pidx) in ops {
            let p = perms[pidx as usize];
            match op {
                0 => { t.grant(owner, peer, obj, p).unwrap(); model |= p; }
                1 => { t.revoke(owner, peer, obj, p).unwrap(); model = model.without(p); }
                _ => {
                    // The peer can never grant to itself (not an owner).
                    let attempt = t.grant(peer, peer, obj, Perm::OWNER);
                    prop_assert!(attempt.is_err());
                }
            }
            prop_assert_eq!(t.perm(peer, obj), model);
            prop_assert!(!t.perm(peer, obj).contains(Perm::OWNER));
        }
    }

    /// Packed FPGA images never exceed device capacity, and the builder
    /// accepts exactly the sets that fit.
    #[test]
    fn image_packing_respects_capacity(luts in proptest::collection::vec(1_000u64..400_000, 1..12)) {
        let kernels: Vec<KernelSpec> = luts
            .iter()
            .enumerate()
            .map(|(i, &l)| KernelSpec {
                name: format!("k{i}"),
                resources: FpgaResources { luts: l, regs: 0, brams: 0, dsps: 0 },
            })
            .collect();
        let capacity = FpgaResources::F1_TOTAL;
        let total: u64 = luts.iter().sum::<u64>() + FpgaResources::WRAPPER_BASE.luts;
        let built = ImageBuilder::new(ImageId(1)).kernels(kernels).build(&capacity);
        if total <= capacity.luts {
            let img = built.unwrap();
            prop_assert!(img.total_resources.fits_in(&capacity));
            prop_assert_eq!(img.total_resources.luts, total);
        } else {
            prop_assert!(built.is_err());
        }
    }

    /// PSS never exceeds RSS, and the sum of all processes' PSS equals the
    /// total live pages (memory is conserved under arbitrary sharing).
    #[test]
    fn pss_conserves_pages(blocks in proptest::collection::vec((1u64..500, 1u8..5), 1..10)) {
        let mut ledger = MemoryLedger::new();
        // procs[i] = list of blocks mapped by process i.
        let mut procs: Vec<Vec<hetsim::os::BlockId>> = vec![Vec::new(); 5];
        for (pages, nprocs) in blocks {
            let b = ledger.alloc(pages);
            procs[0].push(b);
            for p in procs.iter_mut().take(nprocs as usize).skip(1) {
                ledger.share(b);
                p.push(b);
            }
        }
        let rss = |mapped: &Vec<hetsim::os::BlockId>| -> u64 {
            mapped.iter().map(|&b| ledger.pages(b)).sum()
        };
        let pss = |mapped: &Vec<hetsim::os::BlockId>| -> f64 {
            mapped.iter().map(|&b| ledger.pages(b) as f64 / ledger.refs(b) as f64).sum()
        };
        let mut pss_sum = 0.0;
        for p in &procs {
            prop_assert!(pss(p) <= rss(p) as f64 + 1e-9);
            pss_sum += pss(p);
        }
        prop_assert!((pss_sum - ledger.total_pages() as f64).abs() < 1e-6);
    }

    /// Keep-alive policies never exceed their capacity and never return
    /// duplicates.
    #[test]
    fn keepalive_respects_capacity(
        invokes in proptest::collection::vec((0u8..20, 1u64..1000), 1..60),
        capacity in 1usize..10,
    ) {
        let mut lru = Lru::new();
        let mut gd = GreedyDual::new();
        for (f, at) in &invokes {
            let func = FuncId::new(format!("f{f}"));
            let now = SimTime::ZERO + SimDuration::from_millis(*at);
            lru.on_invoke(&func, now, SimDuration::from_millis(5), 1.0);
            gd.on_invoke(&func, now, SimDuration::from_millis(5), 1.0);
        }
        let now = SimTime::ZERO + SimDuration::from_secs(10);
        for keep in [lru.keep_set(now, capacity), gd.keep_set(now, capacity)] {
            prop_assert!(keep.len() <= capacity);
            let mut dedup = keep.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), keep.len(), "duplicates in keep set");
        }
    }

    /// The DES engine is deterministic: any mix of sleepers produces the
    /// same trace twice.
    #[test]
    fn engine_trace_is_deterministic(delays in proptest::collection::vec(0u64..1000, 1..8)) {
        let run = |delays: Vec<u64>| {
            let mut sim = Simulation::new();
            sim.enable_trace();
            for (i, d) in delays.iter().enumerate() {
                let d = *d;
                sim.spawn(&format!("p{i}"), move |ctx| {
                    ctx.sleep(SimDuration::from_nanos(d));
                    ctx.sleep(SimDuration::from_nanos(d / 2 + 1));
                });
            }
            sim.run().unwrap().trace
        };
        prop_assert_eq!(run(delays.clone()), run(delays));
    }

    /// Virtual-time arithmetic: transfer time is monotone in payload size
    /// for every link type.
    #[test]
    fn link_transfer_is_monotone(a in 0u64..10_000_000, b in 0u64..10_000_000) {
        use hetsim::interconnect::Link;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for link in [Link::pcie_rdma(), Link::pcie_dma(), Link::shared_mem(), Link::network()] {
            prop_assert!(link.transfer_time(lo) <= link.transfer_time(hi));
        }
    }
}

proptest! {
    /// Model check of the lock-free notification queue against a VecDeque,
    /// under arbitrary single-threaded push/pop interleavings (the
    /// concurrent behaviour is covered by the threaded test in `xpu-shim`).
    #[test]
    fn notify_queue_matches_a_deque_model(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        use std::collections::VecDeque;
        use xpu_shim::mpsc::NotifyQueue;
        let q = NotifyQueue::with_capacity(16);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        for push in ops {
            if push {
                let pid = XpuPid { pu: PuId(1), local: next };
                match q.push(pid) {
                    Ok(()) => {
                        model.push_back(next);
                        prop_assert!(model.len() <= 16);
                    }
                    Err(_) => prop_assert_eq!(model.len(), 16, "spurious full"),
                }
                next += 1;
            } else {
                let got = q.pop().map(|p| p.local);
                prop_assert_eq!(got, model.pop_front());
            }
            prop_assert_eq!(q.len(), model.len());
        }
    }

    /// Meter totals equal the sum of their parts for arbitrary charges.
    #[test]
    fn meter_conserves_charges(charges in proptest::collection::vec((0u8..5, 1u64..100_000, 1u64..1024), 1..50)) {
        use hetsim::pu::PuKind;
        use molecule_core::billing::{Meter, PriceTable};
        let kinds = [PuKind::Cpu, PuKind::Dpu, PuKind::Fpga, PuKind::Gpu, PuKind::SmartNic];
        let mut meter = Meter::new(PriceTable::default());
        let mut expected = 0.0;
        for (k, us, mib) in charges {
            expected += meter.charge(kinds[k as usize], SimDuration::from_micros(us), mib);
        }
        prop_assert!((meter.total() - expected).abs() < 1e-6);
        let by_kind: f64 = kinds.iter().map(|&k| meter.total_for(k)).sum();
        prop_assert!((meter.total() - by_kind).abs() < 1e-6);
    }
}
