//! End-to-end data-plane chaos: the adaptive nIPC transport streaming
//! mixed-size payloads (inline frames and zero-copy descriptors) from a
//! DPU to the host while the fault plane partitions the link, drops and
//! duplicates FIFO messages on both directions.
//!
//! The shim's contract under faults is deliberately weak — `Ok` from a
//! write means *sent*, not *arrived* — so the test layers the protocol the
//! executor stack uses in production: seq-stamped payloads, an ack FIFO in
//! the reverse direction, sender re-sends until acked, receiver dedups by
//! seq. Under that protocol every payload must come through byte-identical
//! and exactly once at the application layer, and once the stream is done
//! the segment arena must hold zero parked slots: a dropped or duplicated
//! descriptor must never leak shared memory.

use bytes::Bytes;
use hetsim::engine::Simulation;
use hetsim::pu::PuId;
use hetsim::time::{SimDuration, SimTime};
use hetsim::topology::Machine;
use molecule_chaos::plan::{FaultAction, FaultPlan};
use xpu_shim::{Perm, ShimCluster, ShimConfig};

/// Messages in the stream. Odd seqs ride the zero-copy descriptor path
/// (64 KiB, past the 16 KiB threshold), even seqs stay inline.
const SEQS: u8 = 12;
const BIG: usize = 64 * 1024;
const SMALL: usize = 96;

fn payload_for(seq: u8) -> Bytes {
    let len = if seq % 2 == 1 { BIG } else { SMALL };
    Bytes::from(vec![seq; len])
}

/// Partition the host<->DPU link mid-stream, keep loss + duplication on
/// both directions while it heals, then dry the loss up so the at-least-
/// once protocol is guaranteed to terminate. Duplication stays on for the
/// whole run — it only stresses the dedup, never blocks progress.
fn stream_chaos_plan(seed: u64) -> FaultPlan {
    let us = |us| SimTime::ZERO + SimDuration::from_micros(us);
    FaultPlan::new(seed)
        .with(us(0), FaultAction::FifoLoss(PuId(1), PuId(0), 0.3))
        .with(us(0), FaultAction::FifoDup(PuId(1), PuId(0), 0.3))
        .with(us(0), FaultAction::FifoLoss(PuId(0), PuId(1), 0.2))
        .with(us(0), FaultAction::FifoDup(PuId(0), PuId(1), 0.2))
        .with(us(300), FaultAction::Partition(PuId(0), PuId(1)))
        .with(us(700), FaultAction::HealPartition(PuId(0), PuId(1)))
        .with(us(1500), FaultAction::FifoLoss(PuId(1), PuId(0), 0.0))
        .with(us(1500), FaultAction::FifoLoss(PuId(0), PuId(1), 0.0))
}

#[test]
fn adaptive_transport_delivers_byte_identical_under_partition_loss_and_dup() {
    let machine = Machine::paper_cpu_dpu_server();
    let cluster = ShimCluster::deploy(machine.clone(), ShimConfig::default());
    let plan = stream_chaos_plan(0xDA7A);

    let mut sim = Simulation::new();
    molecule_chaos::inject::spawn_injector(&mut sim, &machine, &plan);

    // Out-of-band setup rendezvous (pids and UUIDs only — all payload
    // traffic goes over the faulty shim FIFOs).
    let (pid_tx, pid_rx) = sim.channel();
    let (data_tx, data_rx) = sim.channel();
    let (ack_tx, ack_rx) = sim.channel();

    let cl = cluster.clone();
    let writer = sim.spawn("dpu-writer", move |ctx| {
        let dpu = cl.shim_on(PuId(1)).unwrap();
        let me = dpu.attach_process();
        pid_tx.send(me).unwrap();
        let (data_uuid, reader_pid) = data_rx.recv(ctx).unwrap();
        let data = dpu.xfifo_connect(ctx, me, &data_uuid).unwrap();
        let acks = dpu.xfifo_init(ctx, me, "acks").unwrap();
        dpu.grant_cap(ctx, me, reader_pid, acks.obj(), Perm::WRITE).unwrap();
        ack_tx.send(acks.uuid().clone()).unwrap();

        let mut acked = [false; SEQS as usize];
        let mut resends = 0u64;
        for seq in 0..SEQS {
            let payload = payload_for(seq);
            let mut attempts = 0;
            while !acked[seq as usize] {
                attempts += 1;
                assert!(attempts < 500, "seq {seq} undeliverable after {attempts} attempts");
                if attempts > 1 {
                    resends += 1;
                }
                // A partition surfaces as XcallTimeout once the shim's own
                // retries are spent; at this layer that's just another
                // reason to go around again.
                let _ = data.write_with_retry(ctx, payload.clone());
                if let Ok(a) = acks.read_timeout(ctx, SimDuration::from_micros(50)) {
                    // Acks can be lost, duplicated and reordered relative
                    // to re-sends; any ack only ever confirms a sent seq.
                    acked[a[0] as usize] = true;
                }
            }
        }
        resends
    });

    let cl = cluster.clone();
    let reader = sim.spawn("host-reader", move |ctx| {
        let host = cl.shim_on(PuId(0)).unwrap();
        let me = host.attach_process();
        let data = host.xfifo_init(ctx, me, "data").unwrap();
        let writer_pid = pid_rx.recv(ctx).unwrap();
        host.grant_cap(ctx, me, writer_pid, data.obj(), Perm::WRITE).unwrap();
        data_tx.send((data.uuid().clone(), me)).unwrap();
        let ack_uuid = ack_rx.recv(ctx).unwrap();
        let acks = host.xfifo_connect(ctx, me, &ack_uuid).unwrap();

        let mut seen = [false; SEQS as usize];
        let mut app_dups = 0u64;
        // A timeout means quiet for a full re-send horizon: the writer has
        // stopped, which it only does once everything is acked.
        while let Ok(msg) = data.read_timeout(ctx, SimDuration::from_millis(5)) {
            let seq = msg[0];
            let want = payload_for(seq);
            assert_eq!(msg.len(), want.len(), "seq {seq}: truncated delivery");
            assert!(msg.iter().all(|&b| b == seq), "seq {seq}: corrupt payload bytes");
            if seen[seq as usize] {
                app_dups += 1;
            }
            seen[seq as usize] = true;
            // Ack every delivery, duplicates included — the writer may have
            // re-sent because our previous ack was dropped.
            let _ = acks.write_with_retry(ctx, Bytes::from(vec![seq]));
        }
        assert!(seen.iter().all(|&s| s), "lost payloads despite at-least-once re-send: {seen:?}");
        data.close(ctx).unwrap();
        app_dups
    });

    sim.run().unwrap();
    let resends = writer.take_result().unwrap();
    let _app_dups = reader.take_result().unwrap();

    // The chaos actually bit: messages were dropped and duplicated on the
    // wire, and the writer had to re-send to get the stream through.
    let stats = cluster.stats();
    assert!(stats.dropped_messages > 0, "loss never fired: {stats:?}");
    assert!(stats.duplicated_messages > 0, "duplication never fired: {stats:?}");
    assert!(resends > 0, "no re-send was ever needed — the plan tested nothing");
    // The adaptive transport really took the zero-copy path for the big
    // payloads (and not for the small ones, but that's the shim's call).
    assert!(stats.descriptor_handoffs > 0, "no zero-copy hand-off happened: {stats:?}");

    // Zero leaked arena slots: every placed descriptor was either resolved
    // by a read or freed with its FIFO — loss and duplication must not
    // strand shared-segment memory.
    let snap = cluster.snapshot();
    assert_eq!(snap.outstanding_segments, 0, "leaked zero-copy slots: {:?}", snap.parked_segments);
}
